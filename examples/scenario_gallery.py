#!/usr/bin/env python3
"""Scenario engine gallery: a diurnal load curve with a node failure.

Composes two stimulus families into one custom scenario -- phase-shifted
day/night sinusoids on two tenants, plus a node crash in the middle of
tenant A's peak -- and runs it under MeT, printing the annotated time
series.  Also lists the canned catalog the golden-trace suite locks down.

Run with:  PYTHONPATH=src python examples/scenario_gallery.py
"""

from repro.scenarios import (
    CANNED_SCENARIOS,
    DiurnalLoad,
    NodeCrash,
    ScenarioSpec,
    TenantSpec,
    run_scenario,
)
from repro.scenarios.catalog import SMALL_A, SMALL_C


def diurnal_with_failure() -> ScenarioSpec:
    """Day/night load on two tenants; a node dies during A's peak."""
    return ScenarioSpec(
        name="diurnal-with-failure",
        tenants=(
            TenantSpec(SMALL_A, target_ops=2600.0),
            TenantSpec(SMALL_C, target_ops=3200.0),
        ),
        events=(
            DiurnalLoad(tenant="A", period_minutes=8.0, amplitude=0.6),
            DiurnalLoad(tenant="C", period_minutes=8.0, amplitude=0.6, phase_minutes=4.0),
            NodeCrash(minute=6.0),
        ),
        duration_minutes=14.0,
        initial_nodes=3,
        max_nodes=6,
        description="Phase-shifted diurnal curves with a mid-peak node crash.",
    )


def main() -> None:
    spec = diurnal_with_failure()
    result = run_scenario(spec, controller="met")

    print(f"scenario: {spec.name} (seed={spec.seed})")
    print(f"  {spec.description}\n")
    annotations = {round(a.minute): a for a in result.run.annotations}
    print("minute   ops/s   nodes   event")
    for point in result.run.series:
        minute = round(point.minute)
        annotation = annotations.get(minute)
        note = f"{annotation.label} {annotation.detail}" if annotation else ""
        print(f"{minute:6d}  {point.throughput:7,.0f}  {point.nodes:5d}   {note}")

    print("\ncontroller decisions:")
    for decision in result.decisions:
        if decision["kind"] == "healthy":
            continue
        print(f"  minute {decision['minute']:5.1f}  {decision['kind']}  {decision['detail']}")

    print(f"\nfinal nodes: {result.final_nodes}, "
          f"machine-minutes: {result.run.machine_minutes:,.0f}")

    print("\ncanned catalog (golden-traced under MeT and tiramola):")
    for name, canned in sorted(CANNED_SCENARIOS.items()):
        print(f"  {name:13s} {canned.description}")


if __name__ == "__main__":
    main()
