#!/usr/bin/env python3
"""Scenario engine gallery: a diurnal load curve with a node failure.

Composes two stimulus families into one custom scenario -- phase-shifted
day/night sinusoids on two tenants, plus a node crash in the middle of
tenant A's peak -- and runs it under MeT, printing the annotated time
series with the per-tenant latency view.  Then runs the *whole* canned
catalog under all three controllers -- MeT, Tiramola, and the
calibration-driven planner -- and prints the scorecard: SLO
violation-minutes, run cost and throughput, side by side (the
quality-per-dollar comparison of the paper's Section 6.4, generalised).

Run with:  PYTHONPATH=src python examples/scenario_gallery.py
"""

from repro.scenarios import (
    CANNED_SCENARIOS,
    DiurnalLoad,
    NodeCrash,
    ScenarioSpec,
    TenantSpec,
    run_scenario,
)
from repro.scenarios.catalog import SMALL_A, SMALL_C
from repro.sla.scorecard import render_scorecard, scenario_scorecard


def diurnal_with_failure() -> ScenarioSpec:
    """Day/night load on two tenants; a node dies during A's peak."""
    return ScenarioSpec(
        name="diurnal-with-failure",
        tenants=(
            TenantSpec(SMALL_A, target_ops=2600.0),
            TenantSpec(SMALL_C, target_ops=3200.0),
        ),
        events=(
            DiurnalLoad(tenant="A", period_minutes=8.0, amplitude=0.6),
            DiurnalLoad(tenant="C", period_minutes=8.0, amplitude=0.6, phase_minutes=4.0),
            NodeCrash(minute=6.0),
        ),
        duration_minutes=14.0,
        initial_nodes=3,
        max_nodes=6,
        description="Phase-shifted diurnal curves with a mid-peak node crash.",
    )


def main() -> None:
    spec = diurnal_with_failure()
    result = run_scenario(spec, controller="met", keep_simulator=False)

    print(f"scenario: {spec.name} (seed={spec.seed})")
    print(f"  {spec.description}\n")
    annotations = {round(a.minute): a for a in result.run.annotations}
    print("minute   ops/s   nodes   event")
    for point in result.run.series:
        minute = round(point.minute)
        annotation = annotations.get(minute)
        note = f"{annotation.label} {annotation.detail}" if annotation else ""
        print(f"{minute:6d}  {point.throughput:7,.0f}  {point.nodes:5d}   {note}")

    print("\ncontroller decisions:")
    for decision in result.decisions:
        if decision["kind"] == "healthy":
            continue
        print(f"  minute {decision['minute']:5.1f}  {decision['kind']}  {decision['detail']}")

    print(f"\nfinal nodes: {result.final_nodes}, "
          f"machine-minutes: {result.run.machine_minutes:,.0f}, "
          f"cost: {result.cost.total:.3f}")

    print("\nper-tenant latency (ms per sampled minute):")
    for tenant, points in sorted(result.run.tenant_series.items()):
        bars = " ".join(f"{p.latency_ms:5.2f}" for p in points)
        print(f"  {tenant:12s} {bars}")

    print("\ncanned catalog (golden-traced under MeT and tiramola):")
    for name, canned in sorted(CANNED_SCENARIOS.items()):
        print(f"  {name:17s} {canned.description}")

    # The TPC-C entries report natively: the simulator measures key-value
    # ops/s, but a transactional tenant's promise is tpmC.
    print("\nmixed tenancy, per-tenant native rates (MeT run):")
    mixed = run_scenario(CANNED_SCENARIOS["mixed_tenancy"], controller="met",
                         keep_simulator=False)
    units = mixed.tenant_units()
    tenants = {t.name: t.workload for t in mixed.spec.tenants}
    for tenant_name, workload in sorted(tenants.items()):
        points = mixed.run.tenant_series[workload.binding_name]
        mean_ops = sum(p.throughput for p in points) / len(points)
        unit = units[workload.binding_name]
        print(f"  {tenant_name:6s} {workload.native_rate(mean_ops):8,.0f} {unit}")
    for report in mixed.slo_reports:
        verdict = "held" if report.satisfied else "BROKEN"
        print(f"  slo {report.slo.describe():34s} {verdict}")

    print("\nMeT vs Tiramola vs planner scorecard (full catalog):")
    rows = scenario_scorecard(controllers=("met", "tiramola", "planner"))
    print(render_scorecard(rows))
    for controller in ("met", "tiramola", "planner"):
        mine = [row for row in rows if row.controller == controller]
        print(
            f"  {controller:9s} totals: "
            f"{sum(r.violation_minutes for r in mine):6.1f} violation-minutes, "
            f"cost {sum(r.cost for r in mine):6.3f}, "
            f"{sum(r.machine_minutes for r in mine):7.1f} machine-minutes"
        )


if __name__ == "__main__":
    main()
