#!/usr/bin/env python3
"""Multi-tenant placement study (the Section 3 motivation, interactively).

Compares the three placement/configuration strategies of the paper on the
same multi-tenant YCSB scenario and prints a per-workload breakdown, the
equivalent of Figure 1's bars.  Also demonstrates the functional mini-HBase
substrate by running a small YCSB workload against real RegionServers.

Run with:  python examples/multi_tenant_ycsb.py
"""

from repro.elasticity import manual_heterogeneous, manual_homogeneous, random_homogeneous
from repro.experiments.harness import ExperimentHarness, apply_placement
from repro.hbase import MiniHBaseCluster
from repro.simulation import ClusterSimulator
from repro.workloads.ycsb import CORE_WORKLOADS, YCSBClient, build_paper_scenario
from repro.workloads.ycsb.workloads import YCSBWorkload


def simulate_strategy(strategy_name: str, seed: int = 3, minutes: float = 6.0) -> None:
    """Run one placement strategy on the analytical simulator."""
    simulator = ClusterSimulator()
    nodes = [simulator.add_node() for _ in range(5)]
    scenario = build_paper_scenario(simulator)
    expected = scenario.expected_partition_workloads()
    if strategy_name == "random-homogeneous":
        plan = random_homogeneous(expected, nodes, seed=seed)
    elif strategy_name == "manual-homogeneous":
        plan = manual_homogeneous(expected, nodes)
    else:
        plan = manual_heterogeneous(expected, nodes)
    apply_placement(simulator, plan)
    harness = ExperimentHarness(simulator, name=strategy_name)
    run = harness.run_for(minutes * 60.0)
    breakdown = "  ".join(
        f"{name.split('-')[1]}={value:7,.0f}"
        for name, value in sorted(run.per_workload_throughput.items())
    )
    print(f"{strategy_name:22s} total={sum(run.per_workload_throughput.values()):9,.0f}  {breakdown}")


def functional_hbase_demo() -> None:
    """Run a scaled-down YCSB workload against the functional mini-HBase."""
    cluster = MiniHBaseCluster(initial_servers=3)
    workload = YCSBWorkload(
        name="demo",
        read_proportion=0.5,
        update_proportion=0.5,
        record_count=500,
        partitions=4,
        threads=1,
    )
    cluster.create_table(
        workload.table_name,
        split_keys=[f"user{i * 125:012d}" for i in range(1, 4)],
    )
    client = YCSBClient(cluster.client(), workload, seed=42)
    client.load()
    result = client.run(2_000)
    print(
        f"functional HBase demo: {result.operations} ops "
        f"({result.reads} reads, {result.updates} updates), "
        f"read misses: {result.read_misses}"
    )
    print("  per-RegionServer request counters:")
    for server in cluster.regionservers():
        print(f"    {server.name}: {server.total_requests()} requests, "
              f"cache hit ratio {server.cache_stats.hit_ratio:.2f}, "
              f"locality {server.locality_index():.2f}")


def main() -> None:
    print("== analytical simulator: the three strategies of Section 3 ==")
    for strategy in ("random-homogeneous", "manual-homogeneous", "manual-heterogeneous"):
        simulate_strategy(strategy)
    print()
    print("== functional mini-HBase: real put/get/scan path ==")
    functional_hbase_demo()
    print()
    print("workloads used:", ", ".join(sorted(CORE_WORKLOADS)))


if __name__ == "__main__":
    main()
