#!/usr/bin/env python3
"""TPC-C on HBase: MeT reconfigures a write-intensive OLTP workload.

The Section 6.3 versatility experiment at a reduced duration, plus a
functional demo that executes real TPC-C transactions (New-Order, Payment,
Order-Status, Delivery, Stock-Level) against the mini-HBase substrate.

Run with:  python examples/tpcc_reconfiguration.py
"""

from repro.experiments.table2 import report, run_table2
from repro.hbase import MiniHBaseCluster, TPCC_HOMOGENEOUS
from repro.workloads.tpcc import TPCCConfig, TPCCDriver, TPCCLoader


def functional_tpcc_demo() -> None:
    """Load a tiny TPC-C database and run real transactions against it."""
    cluster = MiniHBaseCluster(initial_servers=3, config=TPCC_HOMOGENEOUS)
    config = TPCCConfig(warehouses=2, warehouses_per_node=1, clients=4, scale_factor=0.01)
    loader = TPCCLoader(cluster.client(), config, seed=1)
    loader.create_tables(cluster.master)
    rows = loader.load()
    driver = TPCCDriver(cluster.client(), config, seed=1)
    result = driver.run(300)
    print(f"functional TPC-C demo: loaded {rows} rows, executed {result.transactions} "
          f"transactions ({result.new_orders} new-order), tpmC={result.tpmc:,.0f}")
    print(f"  transaction mix: {result.per_type}")


def main() -> None:
    print("== functional mini-HBase TPC-C ==")
    functional_tpcc_demo()
    print()
    print("== Table 2 (reduced duration) ==")
    print(report(run_table2(minutes=15.0)))


if __name__ == "__main__":
    main()
