#!/usr/bin/env python3
"""Elastic scaling on an OpenStack-like IaaS: MeT vs a tiramola-style autoscaler.

A shortened version of the Section 6.4 experiment: an initially overloaded
6-VM cluster, one run managed by MeT (workload-aware reconfiguration plus
node additions/removals) and one by a tiramola-style autoscaler (system
metrics only, homogeneous nodes, HBase's random balancer).  Workloads are
switched off halfway through to show scale-down behaviour.

Run with:  python examples/elastic_scaling.py
"""

from repro.experiments.figure6 import SHUTDOWN_SCHEDULE, run_figure6


def main() -> None:
    result = run_figure6(minutes=45.0)
    print("minute   MeT ops/s  MeT nodes   tiramola ops/s  tiramola nodes")
    tiramola = {round(p.minute): p for p in result.tiramola.series}
    for point in result.met.series:
        minute = round(point.minute)
        other = tiramola.get(minute)
        if other is None or minute % 3:
            continue
        print(
            f"{minute:6d}  {point.throughput:10,.0f}  {point.nodes:9d}"
            f"   {other.throughput:14,.0f}  {other.nodes:14d}"
        )
    print()
    print(f"shutdown schedule (phase 2): {SHUTDOWN_SCHEDULE}")
    print(f"cumulative operations after phase 1: MeT/tiramola = "
          f"{result.phase1_operations_ratio:.2f}x (paper: ~1.31x)")
    print(f"machines used: MeT peak {result.met_peak_nodes}, final {result.met_final_nodes}; "
          f"tiramola peak {result.tiramola_peak_nodes}, final {result.tiramola_final_nodes}")


if __name__ == "__main__":
    main()
