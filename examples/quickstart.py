#!/usr/bin/env python3
"""Quickstart: run MeT against a simulated multi-tenant HBase cluster.

Builds the paper's six-tenant YCSB scenario on a 5-node simulated cluster
that starts with HBase's default random placement and homogeneous node
configuration, then lets MeT observe, classify and heterogeneously
reconfigure it.  Prints throughput before, during and after reconfiguration.

Run with:  python examples/quickstart.py
"""

from repro.core import MeT, MeTParameters, SimulatorBackend
from repro.elasticity import random_homogeneous
from repro.experiments.harness import apply_placement
from repro.simulation import ClusterSimulator
from repro.workloads.ycsb import build_paper_scenario


def main() -> None:
    # 1. A 5-RegionServer simulated cluster with the paper's node hardware.
    simulator = ClusterSimulator()
    nodes = [simulator.add_node() for _ in range(5)]

    # 2. The six YCSB workloads of the paper, four partitions each (one for
    #    the insert-heavy workload D), driven by closed-loop client threads.
    scenario = build_paper_scenario(simulator)

    # 3. Start from HBase's out-of-the-box behaviour: random placement and
    #    one homogeneous configuration for every node.
    plan = random_homogeneous(scenario.expected_partition_workloads(), nodes, seed=7)
    apply_placement(simulator, plan)

    # 4. Attach MeT.  The cluster size is fixed here (no IaaS), so MeT only
    #    reconfigures: classify partitions, group nodes, move regions and
    #    restart RegionServers with per-group profiles.
    backend = SimulatorBackend(simulator)
    met = MeT(backend, MeTParameters(min_nodes=5, max_nodes=5, allow_remove=False))

    print("minute  throughput(ops/s)  node profiles")
    for minute in range(1, 21):
        for _ in range(12):  # 5-second simulation ticks
            simulator.tick()
            met.step(simulator.clock.now)
        profiles = sorted(node.profile_name for node in simulator.nodes.values())
        print(f"{minute:6d}  {simulator.cluster_throughput():17,.0f}  {profiles}")

    print()
    print("MeT decisions:", met.status.decisions, "plans applied:", met.status.plans_applied)
    for event in met.events("plan"):
        print(f"  t={event.timestamp/60:5.1f} min  {event.detail}")
    print("per-workload throughput (ops/s):")
    for name in sorted(simulator.bindings):
        print(f"  {name:12s} {simulator.binding_throughput(name):10,.0f}")


if __name__ == "__main__":
    main()
