"""Micro-benchmarks of the Decision Maker algorithms at scale.

The paper argues manual heterogeneous configuration is impracticable at the
scale of hundreds or thousands of nodes and partitions; these benchmarks
show the automated pipeline (classification, grouping, LPT assignment and
output computation) stays fast well beyond the paper's cluster sizes.
"""

import random

from repro.core.assignment import assign_partitions
from repro.core.classification import ClassifiedPartition, classify_partitions
from repro.core.grouping import nodes_per_group
from repro.core.output import TargetSlot, compute_output
from repro.monitoring.collector import PartitionSample


def _partitions(count: int, seed: int = 0) -> dict[str, PartitionSample]:
    rng = random.Random(seed)
    partitions = {}
    for index in range(count):
        reads = rng.uniform(0, 10_000)
        writes = rng.uniform(0, 10_000)
        scans = rng.uniform(0, 1_000)
        partitions[f"part-{index}"] = PartitionSample(
            partition_id=f"part-{index}",
            node=f"node-{index % 50}",
            reads=reads,
            writes=writes,
            scans=scans,
            size_bytes=rng.uniform(1e8, 1e9),
        )
    return partitions


def test_classification_scales_to_thousands_of_partitions(benchmark):
    """Classify 5,000 partitions."""
    partitions = _partitions(5_000)
    groups = benchmark(classify_partitions, partitions)
    assert sum(len(members) for members in groups.values()) == 5_000


def test_lpt_assignment_scales(benchmark):
    """LPT-assign 2,000 partitions onto 100 nodes."""
    rng = random.Random(1)
    members = [
        ClassifiedPartition(
            partition_id=f"p-{i}",
            pattern=None,
            requests=rng.uniform(0, 10_000),
            size_bytes=1e8,
        )
        for i in range(2_000)
    ]
    nodes = [f"node-{i}" for i in range(100)]
    assignment = benchmark(assign_partitions, members, nodes)
    assert sum(len(parts) for parts in assignment.values()) == 2_000


def test_grouping_and_output_computation(benchmark):
    """Full Stage C + Stage D pipeline on a 500-partition, 50-node cluster."""
    partitions = _partitions(500, seed=2)

    def pipeline():
        groups = classify_partitions(partitions)
        allocation = nodes_per_group(groups, 50)
        slots = []
        for pattern, node_count in allocation.items():
            per_slot = assign_partitions(
                groups[pattern], [f"{pattern.value}-{i}" for i in range(node_count)]
            )
            slots.extend(
                TargetSlot(profile=pattern.value, partitions=frozenset(parts))
                for parts in per_slot.values()
            )
        current_state = {
            f"node-{i}": {p for p in partitions if hash(p) % 50 == i} for i in range(50)
        }
        current_profiles = {f"node-{i}": "default" for i in range(50)}
        return compute_output(current_state, current_profiles, slots)

    targets = benchmark(pipeline)
    assert targets
