"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
(but representative) duration so the whole suite runs in minutes.  Use the
``python -m repro.experiments.<figure>`` entry points for full-length runs.
"""

from pathlib import Path

import pytest


def pytest_collection_modifyitems(config, items):
    """Skip tier-2 benchmarks unless they are explicitly targeted.

    The tier-1 gate (``pytest -x -q``) must stay fast, so tests marked
    ``tier2`` only run when the invocation names their file directly or
    selects the marker with ``-m``.
    """
    if "tier2" in (config.option.markexpr or ""):
        return
    invocation_dir = Path(str(config.invocation_params.dir))
    explicit_files = set()
    for arg in config.invocation_params.args:
        text = str(arg).split("::", 1)[0]
        if not text or text.startswith("-"):
            continue
        path = Path(text)
        if not path.is_absolute():
            path = invocation_dir / path
        explicit_files.add(path.resolve())
    skip = pytest.mark.skip(
        reason="tier-2 benchmark; run `PYTHONPATH=src python -m pytest -q "
        "benchmarks/test_perf_kernel.py`"
    )
    for item in items:
        if "tier2" in item.keywords and Path(str(item.fspath)).resolve() not in explicit_files:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def figure6_result():
    """Run the elasticity experiment once and share it across benchmarks."""
    from repro.experiments.figure6 import run_figure6

    return run_figure6(minutes=45.0)
