"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
(but representative) duration so the whole suite runs in minutes.  Use the
``python -m repro.experiments.<figure>`` entry points for full-length runs.
"""

import pytest


@pytest.fixture(scope="session")
def figure6_result():
    """Run the elasticity experiment once and share it across benchmarks."""
    from repro.experiments.figure6 import run_figure6

    return run_figure6(minutes=45.0)
