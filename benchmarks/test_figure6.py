"""Benchmark regenerating Figure 6 (Section 6.4 elasticity experiment)."""

from repro.experiments.figure6 import report


def test_figure6_elasticity(benchmark, figure6_result):
    """MeT outperforms tiramola and releases nodes when demand drops."""
    result = figure6_result
    benchmark.pedantic(lambda: report(result), iterations=1, rounds=1)
    print()
    print(report(result))

    # Phase 1: MeT's cumulative operations exceed tiramola's (paper: +31%).
    assert result.phase1_operations_ratio >= 1.05

    # MeT reaches a higher steady throughput than tiramola towards the end of
    # phase 1 (tiramola's added nodes are held back by random placement and
    # lost locality).
    met_plateau = result.met.throughput_between(25.0, result.phase1_minutes)
    tiramola_plateau = result.tiramola.throughput_between(25.0, result.phase1_minutes)
    assert met_plateau > tiramola_plateau

    # Phase 2: MeT releases nodes as tenants are switched off; tiramola only
    # releases when every node is under-utilised, so it keeps more machines.
    if result.minutes > 45:
        assert result.met_final_nodes < result.tiramola_final_nodes
    # Neither system exceeds the tenant quota.
    assert result.met_peak_nodes <= 11
    assert result.tiramola_peak_nodes <= 11
