"""Benchmark regenerating Table 2 (Section 6.3 PyTPCC experiment)."""

from repro.experiments.table2 import report, run_table2


def test_table2_pytpcc(benchmark):
    """MeT improves TPC-C throughput without prior knowledge of the workload."""
    result = benchmark.pedantic(
        run_table2, kwargs={"minutes": 20.0}, iterations=1, rounds=1
    )
    print()
    print(report(result))

    # Paper ordering: Manual-Homogeneous < MeT with overhead < MeT without
    # reconfiguration overhead (25,380 < 31,020 < 33,720 tpmC).
    assert (
        result.manual_homogeneous_tpmc
        < result.met_with_overhead_tpmc
        < result.met_without_overhead_tpmc
    )
    # Heterogeneous improvement ~33% in the paper; require a clear gain.
    assert result.heterogeneous_improvement >= 1.10
    # Reconfiguration overhead is limited (~8% in the paper).
    assert result.reconfiguration_overhead <= 0.25
    # MeT classifies the write-intensive TPC-C partitions onto write profiles.
    assert "write" in set(result.met_profiles.values())
