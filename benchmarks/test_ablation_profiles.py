"""Ablation: how much each heterogeneous profile dimension contributes.

DESIGN.md calls out the three per-node configuration knobs MeT tunes (block
cache, memstore, block size).  This ablation runs the Figure 1 heterogeneous
placement with each knob neutralised in turn, confirming every dimension
contributes to the heterogeneous advantage.
"""

import pytest

from repro.core.profiles import NODE_PROFILES
from repro.elasticity.strategies import manual_heterogeneous
from repro.experiments.harness import ExperimentHarness, apply_placement
from repro.hbase.config import DEFAULT_HOMOGENEOUS
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.ycsb.scenario import build_paper_scenario


def _run_with_overrides(config_override=None, minutes: float = 5.0) -> float:
    simulator = ClusterSimulator()
    nodes = [simulator.add_node() for _ in range(5)]
    scenario = build_paper_scenario(simulator)
    plan = manual_heterogeneous(scenario.expected_partition_workloads(), nodes)
    if config_override is not None:
        plan.node_configs = {
            node: config_override(profile, plan.node_configs[node])
            for node, profile in plan.node_profiles.items()
        }
    apply_placement(simulator, plan)
    harness = ExperimentHarness(simulator, name="ablation")
    run = harness.run_for(minutes * 60.0)
    return run.throughput_between(minutes * 0.5, minutes)


@pytest.mark.parametrize(
    "ablation",
    ["full", "uniform_block_size", "uniform_memory_split", "homogeneous_config"],
)
def test_profile_ablation(benchmark, ablation):
    """Each configuration dimension contributes to the heterogeneous gain."""

    def override(profile, config):
        if ablation == "uniform_block_size":
            return config.with_overrides(block_size_bytes=DEFAULT_HOMOGENEOUS.block_size_bytes)
        if ablation == "uniform_memory_split":
            return config.with_overrides(
                block_cache_fraction=DEFAULT_HOMOGENEOUS.block_cache_fraction,
                memstore_fraction=DEFAULT_HOMOGENEOUS.memstore_fraction,
            )
        if ablation == "homogeneous_config":
            return DEFAULT_HOMOGENEOUS
        return config

    throughput = benchmark.pedantic(
        _run_with_overrides,
        kwargs={"config_override": None if ablation == "full" else override},
        iterations=1,
        rounds=1,
    )
    assert throughput > 0
    # The fully heterogeneous configuration should not be worse than the
    # ablated ones by more than noise; the strongest claim (full > fully
    # homogeneous config on the same placement) is asserted explicitly.
    if ablation == "homogeneous_config":
        full = _run_with_overrides(None)
        assert full >= throughput * 0.98
