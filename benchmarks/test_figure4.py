"""Benchmark regenerating Figure 4 (Section 6.2 convergence experiment)."""

from repro.experiments.figure4 import report, run_figure4


def test_figure4_convergence(benchmark):
    """MeT autonomously converges to Manual-Heterogeneous performance."""
    result = benchmark.pedantic(
        run_figure4, kwargs={"minutes": 18.0}, iterations=1, rounds=1
    )
    print()
    print(report(result))

    # MeT ends up within 15% of the manually configured heterogeneous cluster
    # and above the homogeneous one.
    assert result.met_matches_heterogeneous(tolerance=0.15)
    assert result.met_final_throughput > result.homogeneous_final_throughput

    # The reconfiguration window shows a dip but the cluster keeps serving
    # requests (incremental reconfiguration preserves availability).
    assert result.reconfiguration_floor > 0.0
    assert result.reconfiguration_floor < result.met_final_throughput

    # The reconfiguration pays off: cumulative average beats the homogeneous
    # strategy over the whole run (paper: within 15 minutes).
    met_ops = result.met.operations_until(result.minutes)
    hom_ops = result.manual_homogeneous.operations_until(result.minutes)
    assert met_ops > 0.9 * hom_ops
