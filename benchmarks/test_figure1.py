"""Benchmark regenerating Figure 1 (Section 3.4 motivation experiment)."""

from repro.experiments.figure1 import report, run_figure1


def test_figure1_strategies(benchmark):
    """Manual-Heterogeneous beats Manual-Homogeneous beats Random (mean)."""
    result = benchmark.pedantic(
        run_figure1, kwargs={"runs": 3, "minutes": 6.0}, iterations=1, rounds=1
    )
    print()
    print(report(result))

    random_mean = result.outcomes["random-homogeneous"].mean_total
    homogeneous = result.outcomes["manual-homogeneous"].mean_total
    heterogeneous = result.outcomes["manual-heterogeneous"].mean_total

    # Paper: heterogeneous improves homogeneous by ~35% and more than doubles
    # the random mean.  The simulator reproduces the ordering and a clear gap;
    # exact factors differ (see EXPERIMENTS.md).
    assert heterogeneous > homogeneous > random_mean * 0.95
    assert heterogeneous >= 1.10 * homogeneous
    assert heterogeneous >= 1.30 * random_mean

    # The random strategy's variance is large (placement left to chance).
    totals = result.outcomes["random-homogeneous"].totals
    assert max(totals) - min(totals) > 0.15 * random_mean

    # Workload E (scans) benefits from the dedicated scan node.
    scan_het = result.outcomes["manual-heterogeneous"].workload_mean("workload-E")
    scan_hom = result.outcomes["manual-homogeneous"].workload_mean("workload-E")
    assert scan_het > scan_hom
