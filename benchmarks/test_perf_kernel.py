"""Tier-2 kernel performance gate.

Asserts the fast kernel's ticks/sec advantage over the seed (reference)
kernel on the 50-node/500-region/8-tenant scenario, plus sanity checks of
the benchmark machinery at the smaller scales.

These tests time real work, so they are skipped by the tier-1 gate
(``pytest -x -q``) and run when explicitly targeted::

    PYTHONPATH=src python -m pytest -q benchmarks/test_perf_kernel.py
"""

import math

import pytest

from repro.simulation.bench import (
    SCALES,
    build_synthetic_cluster,
    measure_ticks_per_second,
    run_scale,
)

pytestmark = pytest.mark.tier2

#: Acceptance criterion of the kernel-perf PR; measured speedups are ~6-7x,
#: so 5x leaves headroom for noisy CI machines.
REQUIRED_SPEEDUP = 5.0
#: Acceptance criterion of the event-kernel PR: effective ticks/sec on a
#: steady-state-dominated scenario must beat the fast kernel ≥5x.  Measured
#: gains are two orders of magnitude (BENCH_kernel.json), so 5x is a
#: regression tripwire, not a stretch goal.
REQUIRED_EVENT_SPEEDUP = 5.0
#: Effective ticks/sec floor for the event kernel at the xlarge scale
#: (200 nodes / 2000 regions / 12 tenants).  Measured ~1280/s; the floor
#: leaves ~6x headroom for noisy CI machines while still catching a
#: fast-forwarding regression (the fast kernel manages only ~21/s).
XLARGE_EVENT_TICKS_PER_SEC_FLOOR = 200.0


def test_fast_kernel_5x_on_large_scenario():
    result = run_scale("large", reference_ticks=10, fast_ticks=60)
    assert result.nodes == 50 and result.regions == 500 and result.tenants == 8
    assert result.speedup >= REQUIRED_SPEEDUP, (
        f"fast kernel is only {result.speedup:.1f}x the reference "
        f"({result.fast_ticks_per_sec:.1f} vs {result.reference_ticks_per_sec:.1f} ticks/s)"
    )


def test_event_kernel_5x_over_fast_on_steady_large_scenario():
    result = run_scale("large", reference_ticks=0, fast_ticks=60, event_ticks=600)
    assert result.steady_fraction > 0.9, (
        f"steady scenario did not fast-forward: only "
        f"{result.steady_fraction:.0%} of ticks were solve-free"
    )
    assert result.event_speedup >= REQUIRED_EVENT_SPEEDUP, (
        f"event kernel is only {result.event_speedup:.1f}x the fast kernel "
        f"({result.event_ticks_per_sec:.1f} vs "
        f"{result.fast_steady_ticks_per_sec:.1f} effective ticks/s)"
    )


def test_xlarge_scale_is_routine_on_event_kernel():
    result = run_scale("xlarge", reference_ticks=0, fast_ticks=30, event_ticks=600)
    assert result.nodes == 200 and result.regions == 2000 and result.tenants == 12
    assert result.event_ticks_per_sec >= XLARGE_EVENT_TICKS_PER_SEC_FLOOR, (
        f"xlarge effective rate fell to {result.event_ticks_per_sec:.1f} ticks/s "
        f"(floor {XLARGE_EVENT_TICKS_PER_SEC_FLOOR:.0f})"
    )
    assert result.event_speedup >= REQUIRED_EVENT_SPEEDUP


@pytest.mark.parametrize("scale", sorted(SCALES))
def test_kernels_agree_on_synthetic_scenarios(scale):
    nodes, regions, tenants = SCALES[scale]
    fast = build_synthetic_cluster(nodes, regions, tenants, kernel="fast")
    reference = build_synthetic_cluster(nodes, regions, tenants, kernel="reference")
    for _ in range(15):
        fast.tick()
        reference.tick()
        for name in reference.bindings:
            assert math.isclose(
                fast.binding_throughput(name),
                reference.binding_throughput(name),
                rel_tol=1e-6,
                abs_tol=1e-6,
            )


def test_measure_ticks_per_second_advances_clock():
    sim = build_synthetic_cluster(4, 16, 2, kernel="fast")
    before = sim.clock.ticks_elapsed
    tps = measure_ticks_per_second(sim, ticks=5, warmup_ticks=1)
    assert sim.clock.ticks_elapsed == before + 6
    assert tps > 0
