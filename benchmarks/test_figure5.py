"""Benchmark regenerating Figure 5 (cumulative throughput, MeT vs tiramola)."""

from repro.experiments.figure5 import report, run_figure5


def test_figure5_cumulative_throughput(benchmark, figure6_result):
    """MeT completes more operations than tiramola during phase 1."""
    result = benchmark.pedantic(
        run_figure5,
        kwargs={"minutes": 33.0, "from_figure6": figure6_result},
        iterations=1,
        rounds=1,
    )
    print()
    print(report(result))

    # Paper: ~706,000 extra operations, a ~31% increase.  The simulator
    # reproduces a clear advantage for MeT.
    assert result.improvement >= 1.05
    assert result.extra_operations > 0
    # The advantage materialises despite the initial reconfiguration cost.
    assert result.met_total_operations > 0
