"""Compiling scenario specs into timed event schedules.

A :class:`ScenarioSpec` is pure data; :func:`compile_spec` turns it into an
:class:`EventSchedule` -- a time-ordered list of :class:`ScheduledAction`
thunks bound to a live :class:`~repro.scenarios.context.ScenarioContext`.
The experiment harness fires due actions before each tick.

Continuous stimuli (sinusoidal load, mix interpolation, data growth) are
discretised at the spec's ``control_interval_seconds`` into many silent
steps; discrete events (tenant churn, faults, phase boundaries) compile to
single *annotated* actions that end up in the run's annotation list and in
golden traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.scenarios.context import ScenarioContext
from repro.scenarios.spec import ScenarioSpec


@dataclass
class ScheduledAction:
    """One timed action of a compiled scenario.

    ``apply`` runs against the bound context and may return a detail string;
    ``annotate`` marks events worth recording in the run (discrete scenario
    events) as opposed to the silent control steps of continuous curves.
    """

    time_seconds: float
    label: str
    apply: Callable[[], str | None]
    annotate: bool = False
    detail: str = ""

    def fire(self) -> "ScheduledAction":
        """Execute the action, capturing its detail string."""
        self.detail = self.apply() or ""
        return self


@dataclass
class EventSchedule:
    """A time-ordered queue of scheduled actions."""

    actions: list[ScheduledAction] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Stable sort: actions at the same instant keep spec order.
        self.actions = sorted(self.actions, key=lambda a: a.time_seconds)
        self._cursor = 0

    def fire_due(self, now: float) -> list[ScheduledAction]:
        """Fire (and return) every action due at or before ``now``."""
        fired: list[ScheduledAction] = []
        actions = self.actions
        while self._cursor < len(actions):
            action = actions[self._cursor]
            if action.time_seconds > now + 1e-9:
                break
            self._cursor += 1
            fired.append(action.fire())
        return fired

    def next_time(self) -> float | None:
        """Scheduled time of the next unfired action (``None`` when drained).

        The experiment harness uses this to bound how far the event kernel
        may fast-forward: no tick whose pre-tick fire check would have
        fired an action may be skipped.
        """
        if self._cursor < len(self.actions):
            return self.actions[self._cursor].time_seconds
        return None

    @property
    def pending(self) -> int:
        """Number of actions not fired yet."""
        return len(self.actions) - self._cursor


def control_steps(
    spec: ScenarioSpec, start_minute: float, end_minute: float
) -> list[float]:
    """Control-step times (seconds) covering ``[start, end]`` minutes.

    Includes both endpoints so a curve lands exactly on its final value --
    compile-time evaluation of continuous events samples these instants.
    """
    start = start_minute * 60.0
    end = min(end_minute, spec.duration_minutes) * 60.0
    if end < start:
        return []
    steps = []
    t = start
    while t < end - 1e-9:
        steps.append(t)
        t += spec.control_interval_seconds
    steps.append(end)
    return steps


def compile_spec(spec: ScenarioSpec, context: ScenarioContext) -> EventSchedule:
    """Compile every event of ``spec`` against ``context`` into a schedule."""
    actions: list[ScheduledAction] = []
    for event in spec.events:
        actions.extend(event.compile(spec, context))
    return EventSchedule(actions)
