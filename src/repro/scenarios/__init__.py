"""Declarative time-varying workload scenarios with fault injection.

The paper evaluates MeT against a static six-tenant mix and one ramp; this
package generalises the evaluation surface: a :class:`ScenarioSpec` composes
timed events -- diurnal and flash-crowd load curves, tenant churn, workload
mix shifts, IaaS-level node faults, data-growth bursts -- which compile into
an event schedule the experiment harness drives against the simulator and
either controller.  Runs are bit-reproducible from the spec's seed, which is
what makes the committed golden traces (``tests/golden/``) a regression
gate for the whole controller stack.
"""

from repro.scenarios.catalog import CANNED_SCENARIOS, canned_scenario
from repro.scenarios.context import ScenarioContext
from repro.scenarios.events import (
    DataGrowthBurst,
    DiurnalLoad,
    FlashCrowd,
    MixShift,
    NodeCrash,
    NodeSlowdown,
    TenantArrival,
    TenantDeparture,
)
from repro.scenarios.runner import (
    CONTROLLERS,
    ScenarioRunResult,
    build_scenario,
    run_scenario,
)
from repro.scenarios.schedule import EventSchedule, ScheduledAction, compile_spec
from repro.scenarios.spec import ScenarioSpec, TenantSpec, binding_name
from repro.scenarios.trace import (
    diff_traces,
    result_trace,
    scenario_trace,
    trace_to_json,
)

__all__ = [
    "CANNED_SCENARIOS",
    "CONTROLLERS",
    "DataGrowthBurst",
    "DiurnalLoad",
    "EventSchedule",
    "FlashCrowd",
    "MixShift",
    "NodeCrash",
    "NodeSlowdown",
    "ScenarioContext",
    "ScenarioRunResult",
    "ScenarioSpec",
    "ScheduledAction",
    "TenantArrival",
    "TenantDeparture",
    "TenantSpec",
    "binding_name",
    "build_scenario",
    "canned_scenario",
    "compile_spec",
    "diff_traces",
    "result_trace",
    "run_scenario",
    "scenario_trace",
    "trace_to_json",
]
