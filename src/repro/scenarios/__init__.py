"""Declarative time-varying workload scenarios with fault injection.

The paper evaluates MeT against a static six-tenant mix and one ramp; this
package generalises the evaluation surface: a :class:`ScenarioSpec` composes
timed events -- diurnal and flash-crowd load curves, tenant churn, workload
mix shifts, IaaS-level node faults, data-growth bursts -- which compile into
an event schedule the experiment harness drives against the simulator and
either controller.  Runs are bit-reproducible from the spec's seed, which is
what makes the committed golden traces (``tests/golden/``) a regression
gate for the whole controller stack.
"""

from repro.scenarios.assertions import (
    ADD_NODE,
    RECONFIGURE,
    REMOVE_NODE,
    AssertionResult,
    CostCeiling,
    LatencyPercentileWithin,
    LatencyWithin,
    NoOscillation,
    ReconfiguresBefore,
    RecoversWithin,
    ScenarioAssertion,
    SLOViolationsBelow,
    StaysWithin,
    controller_actions,
    evaluate_assertions,
)
from repro.scenarios.catalog import CANNED_SCENARIOS, canned_scenario
from repro.scenarios.context import ScenarioContext
from repro.scenarios.events import (
    DataGrowthBurst,
    DiurnalLoad,
    FlashCrowd,
    MixShift,
    NodeCrash,
    NodeRecovery,
    NodeSlowdown,
    TenantArrival,
    TenantDeparture,
)
from repro.scenarios.runner import (
    CONTROLLERS,
    ScenarioRunResult,
    build_scenario,
    run_scenario,
)
from repro.scenarios.schedule import EventSchedule, ScheduledAction, compile_spec
from repro.scenarios.spec import ScenarioSpec, TenantSpec, binding_name
from repro.scenarios.trace import (
    TraceFormatError,
    diff_traces,
    load_trace,
    result_trace,
    scenario_trace,
    trace_to_json,
)

__all__ = [
    "ADD_NODE",
    "RECONFIGURE",
    "REMOVE_NODE",
    "AssertionResult",
    "CANNED_SCENARIOS",
    "CONTROLLERS",
    "CostCeiling",
    "DataGrowthBurst",
    "DiurnalLoad",
    "EventSchedule",
    "FlashCrowd",
    "LatencyPercentileWithin",
    "LatencyWithin",
    "MixShift",
    "NoOscillation",
    "NodeCrash",
    "NodeRecovery",
    "NodeSlowdown",
    "ReconfiguresBefore",
    "RecoversWithin",
    "SLOViolationsBelow",
    "ScenarioAssertion",
    "ScenarioContext",
    "ScenarioRunResult",
    "ScenarioSpec",
    "ScheduledAction",
    "StaysWithin",
    "TenantArrival",
    "TenantDeparture",
    "TenantSpec",
    "TraceFormatError",
    "binding_name",
    "build_scenario",
    "canned_scenario",
    "compile_spec",
    "controller_actions",
    "diff_traces",
    "evaluate_assertions",
    "load_trace",
    "result_trace",
    "run_scenario",
    "scenario_trace",
    "trace_to_json",
]
