"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes one time-varying multi-tenant experiment:
the cluster (node count, hardware, tick), the tenants (any
:class:`~repro.workloads.tenant.TenantWorkload` -- YCSB key-value tenants,
TPC-C transactional tenants -- with baseline throughput targets) and a list
of timed *events* -- load curves, flash crowds, tenant churn, workload-mix
shifts, node faults, data-growth bursts (see :mod:`repro.scenarios.events`).
Specs are pure data: compiling one against a live simulator
(:func:`repro.scenarios.schedule.compile_spec`) produces the event schedule
the experiment harness drives.

Everything random in a scenario run -- fault victim selection, arriving
tenant placement, the HBase balancer daemon -- draws from the simulator's
single seeded RNG, so a spec plus its ``seed`` replays bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.simulation.hardware import HardwareSpec
from repro.workloads.tenant import TenantWorkload, as_tenant
from repro.workloads.ycsb.scenario import binding_name

__all__ = ["ScenarioSpec", "TenantSpec", "binding_name"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant present from the start of the scenario.

    ``workload`` is any :class:`~repro.workloads.tenant.TenantWorkload`; a
    bare :class:`~repro.workloads.ycsb.workloads.YCSBWorkload` is wrapped in
    its adapter automatically.  ``target_ops`` is the tenant's *baseline*
    throughput cap in simulator ops/s; load-shaping events (diurnal curves,
    flash crowds) modulate it multiplicatively.  ``None`` leaves the tenant
    uncapped, in which case load events modulate the workload's nominal
    throughput estimate instead.
    """

    workload: TenantWorkload
    target_ops: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "workload", as_tenant(self.workload))

    @property
    def name(self) -> str:
        """Tenant name (the workload's name)."""
        return self.workload.name

    def configured_workload(self) -> TenantWorkload:
        """The tenant workload with the baseline target applied."""
        return self.workload.with_target(self.target_ops)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario."""

    name: str
    tenants: tuple[TenantSpec, ...]
    events: tuple = ()
    #: Declared controller expectations (see :mod:`repro.scenarios.assertions`),
    #: evaluated against the run and recorded in its trace.
    assertions: tuple = ()
    #: Declared per-tenant SLOs (:class:`repro.sla.slo.SLODefinition`),
    #: evaluated under *every* controller and serialised into traces; the
    #: ``SLOViolationsBelow`` assertion references them by tenant.
    slos: tuple = ()
    duration_minutes: float = 10.0
    seed: int = 0
    initial_nodes: int = 3
    max_nodes: int = 8
    tick_seconds: float = 5.0
    #: Granularity at which continuous events (load curves, mix shifts,
    #: growth bursts) are discretised into schedule steps.
    control_interval_seconds: float = 15.0
    hardware: HardwareSpec | None = None
    #: Controller cadence for runs of this scenario (reduced-scale defaults:
    #: a decision every minute instead of the paper's every three).
    monitor_period_seconds: float = 15.0
    decision_samples: int = 4
    cooldown_seconds: float = 90.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError(f"scenario {self.name!r} needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario {self.name!r} has duplicate tenants: {names}")
        if self.duration_minutes <= 0:
            raise ValueError("duration must be positive")
        if self.initial_nodes <= 0:
            raise ValueError("initial node count must be positive")
        if self.control_interval_seconds <= 0:
            raise ValueError("control interval must be positive")
        if self.tick_seconds <= 0:
            raise ValueError("tick must be positive")

    @property
    def duration_seconds(self) -> float:
        """Scenario length in simulated seconds."""
        return self.duration_minutes * 60.0

    def tenant_names(self) -> list[str]:
        """Names of the initially present tenants."""
        return [tenant.name for tenant in self.tenants]

    def with_events(self, *events) -> "ScenarioSpec":
        """A copy of this spec with ``events`` appended."""
        return replace(self, events=tuple(self.events) + tuple(events))

    def with_assertions(self, *assertions) -> "ScenarioSpec":
        """A copy of this spec with ``assertions`` appended."""
        return replace(self, assertions=tuple(self.assertions) + tuple(assertions))

    def with_slos(self, *slos) -> "ScenarioSpec":
        """A copy of this spec with ``slos`` appended."""
        return replace(self, slos=tuple(self.slos) + tuple(slos))
