"""Running a scenario spec against the simulator and a controller.

``run_scenario`` builds the cluster, tenants and initial placement, compiles
the spec's events into a schedule, wires up the requested controller (MeT,
tiramola, or none) and drives the experiment harness to the end of the
scenario.  The returned result carries everything the golden-trace
serialiser needs: the time series, the fired-event annotations, and the
controller's decision log in a controller-agnostic shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import MeT
from repro.core.parameters import MeTParameters
from repro.scenarios.assertions import AssertionResult, evaluate_assertions
from repro.elasticity.daemon import HBaseBalancerDaemon
from repro.elasticity.strategies import manual_homogeneous
from repro.elasticity.tiramola import Tiramola, TiramolaPolicy
from repro.experiments.harness import (
    ExperimentHarness,
    StrategyRun,
    apply_placement,
    make_backend,
)
from repro.iaas.provider import OpenStackProvider
from repro.sla.cost import DEFAULT_PRICING, CostEnvelope, machine_minute_ledger
from repro.sla.slo import SLOReport, evaluate_slos
from repro.scenarios.context import ScenarioContext
from repro.scenarios.schedule import compile_spec
from repro.scenarios.spec import ScenarioSpec
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.hardware import HardwareSpec

#: Controllers a scenario can run under.
CONTROLLERS = ("none", "met", "tiramola", "planner")

#: Kernel scenario runs default to.  The event kernel soaked across the
#: whole catalog byte-identical to ``"fast"`` (tests/test_kernel_soak.py)
#: and fast-forwards quiescent stretches, so it is the default for every
#: scenario path (runner, traces, scorecards, campaigns); pass
#: ``kernel="fast"`` explicitly to opt out.
DEFAULT_KERNEL = "event"

#: Default scenario hardware: the weak elasticity-experiment VMs of
#: Section 6.4, so reduced-scale scenarios still saturate a few nodes.
SCENARIO_HARDWARE = HardwareSpec(
    cpu_millis_per_second=2000.0,
    disk_iops=140.0,
    disk_mb_per_second=90.0,
    network_mb_per_second=110.0,
    memory_bytes=3 * 1024 * 1024 * 1024,
    heap_bytes=int(2.2 * 1024 * 1024 * 1024),
)


@dataclass
class ScenarioRunResult:
    """Everything observed while running one scenario under one controller."""

    spec: ScenarioSpec
    controller: str
    kernel: str
    run: StrategyRun
    decisions: list[dict] = field(default_factory=list)
    #: Verdicts of the spec's declared assertions (those applicable to the
    #: run's controller), in spec order.
    assertions: list[AssertionResult] = field(default_factory=list)
    #: Verdicts of the spec's declared SLOs (see :mod:`repro.sla.slo`),
    #: evaluated under every controller, in spec order.
    slo_reports: list[SLOReport] = field(default_factory=list)
    #: Per-flavor machine-minute ledger (see :mod:`repro.sla.cost`).
    machine_minute_ledger: dict[str, float] = field(default_factory=dict)
    #: The run's cost envelope under the default pricing model.
    cost: CostEnvelope | None = None
    simulator: ClusterSimulator | None = None
    context: ScenarioContext | None = None
    machine_hours: float = 0.0

    @property
    def final_nodes(self) -> int:
        """Online nodes at the end of the run."""
        return self.run.final_nodes

    @property
    def assertions_passed(self) -> bool:
        """Whether every evaluated assertion held (vacuously true if none)."""
        return all(result.passed for result in self.assertions)

    def tenant_units(self) -> dict[str, str]:
        """Native throughput unit of every spec-declared tenant.

        Keyed by binding name (the key of :attr:`StrategyRun.tenant_series`);
        covers the initial tenants plus mid-run arrivals, derived from the
        spec so the mapping exists even when the simulator was discarded.
        """
        from repro.workloads.tenant import as_tenant

        units = {
            tenant.workload.binding_name: tenant.workload.unit_label
            for tenant in self.spec.tenants
        }
        for event in self.spec.events:
            arriving = getattr(event, "workload", None)
            if arriving is not None:
                tenant = as_tenant(arriving)
                units[tenant.binding_name] = tenant.unit_label
        return units


def materialise_tenants(simulator: ClusterSimulator, tenants) -> list:
    """Create every tenant's partitions and client binding in ``simulator``.

    ``tenants`` are configured :class:`~repro.workloads.tenant.TenantWorkload`
    objects (any mix of YCSB and TPC-C).  Partitions are created unassigned;
    the returned expected per-partition request mixes feed the initial
    manual placement, exactly as a profiling run would.
    """
    expected = []
    for tenant in tenants:
        for spec in tenant.region_specs():
            spec.create_in(simulator, tenant.binding_name)
        simulator.attach_workload(tenant.binding())
        expected.extend(tenant.partition_workloads())
    return expected


def build_scenario(
    spec: ScenarioSpec, kernel: str = DEFAULT_KERNEL
) -> tuple[ClusterSimulator, OpenStackProvider, ScenarioContext, list[str]]:
    """Materialise the spec's cluster and initial tenants (no controller yet)."""
    simulator = ClusterSimulator(
        hardware=spec.hardware or SCENARIO_HARDWARE,
        tick_seconds=spec.tick_seconds,
        kernel=kernel,
        seed=spec.seed,
    )
    provider = OpenStackProvider(simulator.clock, boot_seconds=simulator.boot_seconds)
    nodes = [simulator.add_node() for _ in range(spec.initial_nodes)]
    configured = [tenant.configured_workload() for tenant in spec.tenants]
    expected = materialise_tenants(simulator, configured)
    plan = manual_homogeneous(expected, nodes)
    apply_placement(simulator, plan)
    context = ScenarioContext(simulator, provider=provider)
    for tenant in configured:
        context.register_tenant(tenant)
    return simulator, provider, context, nodes


def _make_controller(
    name: str,
    spec: ScenarioSpec,
    backend,
    simulator: ClusterSimulator,
) -> tuple[object | None, list]:
    """Build the controller (and any sidecar daemons) for a run."""
    if name == "none":
        return None, []
    if name == "met":
        parameters = MeTParameters(
            min_nodes=1,
            max_nodes=spec.max_nodes,
            monitor_period_seconds=spec.monitor_period_seconds,
            decision_samples=spec.decision_samples,
            cooldown_seconds=spec.cooldown_seconds,
            allow_remove=True,
        )
        return MeT(backend, parameters), []
    if name == "tiramola":
        policy = TiramolaPolicy(
            min_nodes=1,
            max_nodes=spec.max_nodes,
            monitor_period_seconds=spec.monitor_period_seconds,
            decision_samples=spec.decision_samples,
            cooldown_seconds=spec.cooldown_seconds,
        )
        # Tiramola leaves placement to HBase's balancer; the daemon shares
        # the run's single RNG so the whole run replays from one seed.
        daemon = HBaseBalancerDaemon(backend, seed=simulator.rng)
        return Tiramola(backend, policy), [daemon]
    if name == "planner":
        # Imported lazily: repro.planner reaches back into the scenario
        # catalog for calibration, so a module-level import would be
        # circular.  The planner sizes capacity but leaves placement to the
        # stock balancer daemon, like Tiramola.
        from repro.planner.controller import PlannerController, planner_policy_for_spec

        controller = PlannerController(backend, policy=planner_policy_for_spec(spec))
        daemon = HBaseBalancerDaemon(backend, seed=simulator.rng)
        return controller, [daemon]
    raise ValueError(f"unknown controller {name!r}; expected one of {CONTROLLERS}")


def _normalise_decisions(name: str, controller) -> list[dict]:
    """Controller event log in a controller-agnostic, JSON-able shape."""
    if controller is None:
        return []
    if name == "met":
        return [
            {
                "minute": event.timestamp / 60.0,
                "kind": event.kind,
                "detail": event.detail,
            }
            for event in controller.status.events
        ]
    return [
        {
            "minute": event.timestamp / 60.0,
            "kind": event.action.value,
            "detail": " ".join(
                part for part in (event.node or "", event.detail) if part
            ),
        }
        for event in controller.log.events
    ]


def run_scenario(
    spec: ScenarioSpec,
    controller: str = "none",
    kernel: str = DEFAULT_KERNEL,
    sample_every_seconds: float = 60.0,
    keep_simulator: bool = True,
    record_tenant_series: bool = True,
) -> ScenarioRunResult:
    """Run ``spec`` under ``controller`` and return the recorded result.

    ``keep_simulator=False`` is the batch-caller mode: the simulator and
    scenario context are not attached to the result *and* their internal
    reference cycles are severed before returning, so a sweep looping over
    thousands of runs holds at most the one simulator it is currently
    running (see :meth:`ClusterSimulator.dispose`).
    """
    simulator, provider, context, _ = build_scenario(spec, kernel=kernel)
    backend = make_backend(simulator, provider=provider)
    context.faults.vm_ids = backend.vm_ids
    instance, daemons = _make_controller(controller, spec, backend, simulator)
    harness = ExperimentHarness(
        simulator,
        name=f"{spec.name}:{controller}",
        sample_every_seconds=sample_every_seconds,
        record_tenant_series=record_tenant_series,
    )
    if instance is not None:
        harness.add_controller(instance)
    for daemon in daemons:
        harness.add_controller(daemon)
    schedule = compile_spec(spec, context)
    run = harness.run_for(spec.duration_seconds, schedule=schedule)
    ledger = machine_minute_ledger(
        run.machine_minutes, provider.machine_minutes_by_flavor()
    )
    result = ScenarioRunResult(
        spec=spec,
        controller=controller,
        kernel=kernel,
        run=run,
        decisions=_normalise_decisions(controller, instance),
        slo_reports=evaluate_slos(
            spec.slos, run, sample_minutes=sample_every_seconds / 60.0
        ),
        machine_minute_ledger=ledger,
        cost=DEFAULT_PRICING.cost_of(ledger),
        simulator=simulator if keep_simulator else None,
        context=context if keep_simulator else None,
        machine_hours=provider.machine_hours(),
    )
    result.assertions = evaluate_assertions(result)
    if not keep_simulator:
        # Eagerly break the back-references that would otherwise pin the
        # simulator until a cyclic gc pass: the simulator's own cycles
        # (regions' _owner, the solver strategy) and MeT's actuator
        # completion callback, which closes a controller -> actuator ->
        # controller loop holding the backend (and through it the
        # simulator) alive.
        simulator.dispose()
        actuator = getattr(instance, "actuator", None)
        if actuator is not None:
            actuator.on_plan_complete = None
    return result
