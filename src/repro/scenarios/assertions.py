"""Declarative scenario assertions: expected controller behaviour in specs.

A scenario spec can *declare* how a well-behaved controller must react to
its stimuli -- "reconfigure before you provision", "do not thrash nodes",
"recover throughput within N minutes of the crash", "stay inside this
cluster-size envelope" -- instead of burying those expectations in ad-hoc
test code.  Each assertion is pure data attached to
:class:`~repro.scenarios.spec.ScenarioSpec`; after a run, the scenario
runner evaluates every assertion that applies to the run's controller
against the recorded :class:`~repro.experiments.harness.StrategyRun` (time
series + event annotations) and the normalised controller decision log, and
the verdicts are serialised into the run's trace.  Golden traces therefore
lock the *declared* behaviour down alongside the raw numbers: an assertion
silently flipping to ``failed`` shows up as a golden diff.

Vocabulary:

* :class:`ReconfiguresBefore` -- the controller reconfigures what it has
  before resorting to a scaling action (the paper's core MeT-vs-baseline
  divergence, Section 6.4);
* :class:`NoOscillation` -- the add/remove sequence does not thrash: at most
  ``max_flips`` direction changes;
* :class:`RecoversWithin` -- after the last annotation matching a label
  (a crash, the end of a flash crowd), throughput returns to a fraction of
  its pre-event baseline within a deadline;
* :class:`StaysWithin` -- the observed cluster size stays inside
  ``[min_nodes, max_nodes]`` for the whole run;
* :class:`LatencyWithin` -- one tenant's recorded latency series stays
  under a ceiling (the per-tenant quality view of :mod:`repro.sla`);
* :class:`LatencyPercentileWithin` -- one tenant's recorded p95/p99 tail
  (exact window-distribution quantiles) stays under a ceiling;
* :class:`SLOViolationsBelow` -- the spec-declared SLO of a tenant accrues
  at most ``max_violation_minutes`` of violation time;
* :class:`CostCeiling` -- the run's cost envelope under a named pricing
  model stays under a budget.

Every assertion takes a ``controllers`` filter (``None`` = all): an
expectation like "reconfigure first" is meaningful for MeT but vacuous for
a baseline that *cannot* reconfigure, so catalog specs scope it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.sla.cost import DEFAULT_PRICING, pricing_model
from repro.sla.slo import post_warmup_points, tenant_points

__all__ = [
    "ADD_NODE",
    "REMOVE_NODE",
    "RECONFIGURE",
    "AssertionResult",
    "ScenarioAssertion",
    "ReconfiguresBefore",
    "NoOscillation",
    "RecoversWithin",
    "StaysWithin",
    "LatencyWithin",
    "LatencyPercentileWithin",
    "SLOViolationsBelow",
    "CostCeiling",
    "controller_actions",
    "evaluate_assertions",
]

#: Normalised controller action kinds assertions reason about.
ADD_NODE = "add_node"
REMOVE_NODE = "remove_node"
RECONFIGURE = "reconfigure"


@dataclass(frozen=True)
class AssertionResult:
    """Verdict of one assertion against one finished run (trace-able)."""

    assertion: str
    passed: bool
    detail: str = ""


def controller_actions(decisions: list[dict]) -> list[tuple[float, str]]:
    """Normalised ``(minute, kind)`` actions from a run's decision log.

    Tiramola's log is already add/remove events.  A MeT plan bundles several
    mechanisms; it contributes one ``reconfigure`` action when it restarts or
    moves anything, plus add/remove actions for its provisioning components,
    all at the plan's minute -- with ``reconfigure`` first, matching the
    actuator's execution order (Section 5: reconfigure, then provision).
    """
    actions: list[tuple[float, str]] = []
    for decision in decisions:
        kind = decision["kind"]
        minute = decision["minute"]
        if kind == "plan":
            parts = dict(
                part.split("=", 1)
                for part in decision.get("detail", "").split()
                if "=" in part
            )
            if int(parts.get("restarts", 0)) or int(parts.get("moves", 0)):
                actions.append((minute, RECONFIGURE))
            if int(parts.get("adds", 0)):
                actions.append((minute, ADD_NODE))
            if int(parts.get("removes", 0)):
                actions.append((minute, REMOVE_NODE))
        elif kind in (ADD_NODE, REMOVE_NODE):
            actions.append((minute, kind))
    return actions


class ScenarioAssertion:
    """Base class: an expectation evaluated against a finished run.

    Subclasses are frozen dataclasses (specs stay pure data) implementing
    :meth:`evaluate`.  ``controllers`` scopes the expectation; ``None``
    applies under every controller (including ``none``).
    """

    controllers: tuple[str, ...] | None = None

    def applies_to(self, controller: str) -> bool:
        """Whether this assertion is evaluated for ``controller`` runs."""
        return self.controllers is None or controller in self.controllers

    def describe(self) -> str:
        """Canonical name recorded in traces, e.g. ``NoOscillation(max_flips=1)``."""
        args = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)  # type: ignore[arg-type]
            if f.name != "controllers" and getattr(self, f.name) != f.default
        )
        return f"{type(self).__name__}({args})"

    def evaluate(self, result) -> AssertionResult:
        """Verdict against a :class:`~repro.scenarios.runner.ScenarioRunResult`."""
        raise NotImplementedError

    def _verdict(self, passed: bool, detail: str) -> AssertionResult:
        return AssertionResult(assertion=self.describe(), passed=passed, detail=detail)


@dataclass(frozen=True)
class ReconfiguresBefore(ScenarioAssertion):
    """The controller reconfigures before its first ``action``.

    Fails when no reconfiguration happened at all, or when the first
    ``action`` (default: adding a node) precedes the first reconfiguration.
    A run where ``action`` never fires passes as long as something was
    reconfigured -- reconfiguration *sufficing* is the strongest outcome.
    """

    action: str = ADD_NODE
    controllers: tuple[str, ...] | None = None

    def evaluate(self, result) -> AssertionResult:
        actions = controller_actions(result.decisions)
        reconfigures = [m for m, kind in actions if kind == RECONFIGURE]
        resorts = [m for m, kind in actions if kind == self.action]
        if not reconfigures:
            return self._verdict(False, "never reconfigured")
        if resorts and min(resorts) <= min(reconfigures):
            return self._verdict(
                False,
                f"first {self.action} at {min(resorts):.1f}m precedes first "
                f"reconfigure at {min(reconfigures):.1f}m",
            )
        when = f"first reconfigure at {min(reconfigures):.1f}m"
        if resorts:
            return self._verdict(True, f"{when}, first {self.action} at {min(resorts):.1f}m")
        return self._verdict(True, f"{when}, no {self.action} needed")


@dataclass(frozen=True)
class NoOscillation(ScenarioAssertion):
    """The add/remove sequence flips direction at most ``max_flips`` times.

    A flip is an add followed (not necessarily adjacently) by a remove or
    vice versa.  ``max_flips=0`` demands a monotone scaling history; a
    diurnal scenario legitimately allows one flip per half-cycle.
    """

    max_flips: int = 0
    controllers: tuple[str, ...] | None = None

    def evaluate(self, result) -> AssertionResult:
        scaling = [
            kind for _, kind in controller_actions(result.decisions)
            if kind in (ADD_NODE, REMOVE_NODE)
        ]
        flips = sum(1 for a, b in zip(scaling, scaling[1:]) if a != b)
        return self._verdict(
            flips <= self.max_flips,
            f"{flips} direction flips over {len(scaling)} scaling actions "
            f"(allowed {self.max_flips})",
        )


@dataclass(frozen=True)
class RecoversWithin(ScenarioAssertion):
    """Throughput recovers within ``minutes`` of the last ``after_label`` event.

    The baseline is the mean throughput over the ``baseline_minutes`` of
    series samples preceding the event; recovery means some sample inside
    the deadline window reaches ``fraction`` of that baseline.  ``after_label``
    matches annotation labels by prefix, so ``"node-crash"`` matches every
    crash and ``"flash-crowd-end"`` matches ``"flash-crowd-end:C"``.
    """

    minutes: float = 5.0
    after_label: str = "node-crash"
    fraction: float = 0.9
    baseline_minutes: float = 2.0
    controllers: tuple[str, ...] | None = None

    def evaluate(self, result) -> AssertionResult:
        events = [
            a.minute for a in result.run.annotations
            if a.label.startswith(self.after_label)
        ]
        if not events:
            return self._verdict(False, f"no {self.after_label!r} annotation in the run")
        event = max(events)
        before = [
            p.throughput for p in result.run.series
            if event - self.baseline_minutes <= p.minute < event
        ]
        if not before:
            return self._verdict(False, f"no samples in the {self.baseline_minutes}m baseline window")
        baseline = sum(before) / len(before)
        needed = self.fraction * baseline
        window = [
            p for p in result.run.series if event < p.minute <= event + self.minutes
        ]
        recovered = next((p for p in window if p.throughput >= needed), None)
        if recovered is not None:
            return self._verdict(
                True,
                f"recovered to {recovered.throughput:.0f} ops/s at "
                f"{recovered.minute:.1f}m (needed {needed:.0f})",
            )
        best = max((p.throughput for p in window), default=0.0)
        return self._verdict(
            False,
            f"best {best:.0f} ops/s within {self.minutes}m of the event at "
            f"{event:.1f}m (needed {needed:.0f})",
        )


@dataclass(frozen=True)
class StaysWithin(ScenarioAssertion):
    """Every observed cluster size stays inside ``[min_nodes, max_nodes]``."""

    min_nodes: int | None = None
    max_nodes: int | None = None
    controllers: tuple[str, ...] | None = None

    def evaluate(self, result) -> AssertionResult:
        low, high = result.run.node_bounds()
        if self.min_nodes is not None and low < self.min_nodes:
            return self._verdict(False, f"shrank to {low} nodes (floor {self.min_nodes})")
        if self.max_nodes is not None and high > self.max_nodes:
            return self._verdict(False, f"grew to {high} nodes (ceiling {self.max_nodes})")
        return self._verdict(True, f"observed {low}..{high} nodes")


@dataclass(frozen=True)
class LatencyWithin(ScenarioAssertion):
    """Every recorded latency sample of ``tenant`` stays under ``ceiling_ms``.

    Judges the per-tenant series the harness records (window means of the
    simulator's tick-level latencies).  ``warmup_minutes`` exempts the
    closed loop's cold start -- samples whose window overlaps the warmup
    are skipped, like :class:`~repro.sla.slo.SLODefinition`.  Fails when
    the tenant recorded no judgeable samples at all -- a silent series is
    a wiring bug, not good latency.
    """

    tenant: str = ""
    ceiling_ms: float = 50.0
    warmup_minutes: float = 1.0
    controllers: tuple[str, ...] | None = None

    def evaluate(self, result) -> AssertionResult:
        points = post_warmup_points(
            tenant_points(result.run, self.tenant), self.warmup_minutes
        )
        if not points:
            return self._verdict(
                False, f"no latency samples recorded for tenant {self.tenant!r}"
            )
        worst = max(points, key=lambda p: p.latency_ms)
        return self._verdict(
            worst.latency_ms <= self.ceiling_ms,
            f"peak {worst.latency_ms:.2f}ms at {worst.minute:.1f}m over "
            f"{len(points)} samples (ceiling {self.ceiling_ms:g}ms)",
        )


@dataclass(frozen=True)
class LatencyPercentileWithin(ScenarioAssertion):
    """Every recorded p95/p99 sample of ``tenant`` stays under ``ceiling_ms``.

    The tail-latency counterpart of :class:`LatencyWithin`: judges the
    per-sample quantiles the harness computes from the exact merged
    window distributions (:class:`~repro.simulation.latency.LatencySummary`),
    so a tenant whose *mean* stays flat while its tail spikes still fails.
    ``percentile`` must be 95 or 99 -- the two the harness records.  Fails
    when no sample carries distribution data -- a run built with
    ``record_latency_distributions=False`` cannot vacuously pass a tail
    promise.
    """

    tenant: str = ""
    percentile: int = 95
    ceiling_ms: float = 50.0
    warmup_minutes: float = 1.0
    controllers: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.percentile not in (95, 99):
            raise ValueError(
                f"percentile must be 95 or 99, got {self.percentile}"
            )

    def evaluate(self, result) -> AssertionResult:
        attr = f"p{self.percentile}_ms"
        points = [
            p
            for p in post_warmup_points(
                tenant_points(result.run, self.tenant), self.warmup_minutes
            )
            if getattr(p, attr, None) is not None
        ]
        if not points:
            return self._verdict(
                False,
                f"no p{self.percentile} samples recorded for tenant "
                f"{self.tenant!r} (latency distributions disabled?)",
            )
        worst = max(points, key=lambda p: getattr(p, attr))
        observed = getattr(worst, attr)
        return self._verdict(
            observed <= self.ceiling_ms,
            f"peak p{self.percentile} {observed:.2f}ms at {worst.minute:.1f}m "
            f"over {len(points)} samples (ceiling {self.ceiling_ms:g}ms)",
        )


@dataclass(frozen=True)
class SLOViolationsBelow(ScenarioAssertion):
    """The spec-declared SLO of ``tenant`` stays under a violation budget.

    References the scenario's own ``slos`` declaration (the runner evaluates
    those into :attr:`~repro.scenarios.runner.ScenarioRunResult.slo_reports`)
    instead of embedding a second copy of the bounds; fails loudly when the
    spec declares no SLO for the tenant.
    """

    tenant: str = ""
    max_violation_minutes: float = 0.0
    controllers: tuple[str, ...] | None = None

    def evaluate(self, result) -> AssertionResult:
        reports = [r for r in result.slo_reports if r.slo.tenant == self.tenant]
        if not reports:
            return self._verdict(
                False, f"scenario declares no SLO for tenant {self.tenant!r}"
            )
        minutes = sum(report.violation_minutes for report in reports)
        judged = sum(report.samples for report in reports)
        if judged == 0:
            # Zero judged samples is a wiring problem (tenant series not
            # recorded, or the SLO's tenant never ran), not compliance --
            # passing here would silently disable the check.
            return self._verdict(
                False,
                f"SLO for tenant {self.tenant!r} judged no samples "
                "(tenant series missing or tenant never ran)",
            )
        return self._verdict(
            minutes <= self.max_violation_minutes,
            f"{minutes:.1f} violation-minutes over {judged} judged samples "
            f"(budget {self.max_violation_minutes:g})",
        )


@dataclass(frozen=True)
class CostCeiling(ScenarioAssertion):
    """The run's cost envelope stays under ``max_cost``.

    Prices the run's per-flavor machine-minute ledger with the named
    pricing model (see :mod:`repro.sla.cost`), so the ceiling is a money
    budget, not a raw machine-minute count -- heterogeneous flavors bill
    at their own rates.
    """

    max_cost: float = 0.0
    pricing: str = DEFAULT_PRICING.name
    controllers: tuple[str, ...] | None = None

    def evaluate(self, result) -> AssertionResult:
        envelope = pricing_model(self.pricing).cost_of(result.machine_minute_ledger)
        return self._verdict(
            envelope.total <= self.max_cost,
            f"cost {envelope.total:.3f} for {envelope.machine_minutes:.1f} "
            f"machine-minutes under {self.pricing} (ceiling {self.max_cost:g})",
        )


def evaluate_assertions(result) -> list[AssertionResult]:
    """Evaluate every spec assertion applicable to the run's controller."""
    return [
        assertion.evaluate(result)
        for assertion in result.spec.assertions
        if assertion.applies_to(result.controller)
    ]
