"""The declarative scenario event vocabulary.

Six families of timed stimuli, mirroring the conditions a workload-aware
controller must survive in production:

* :class:`DiurnalLoad` -- a sinusoidal day/night curve on one tenant.
* :class:`FlashCrowd` -- ramp/hold/decay load spike on one tenant.
* :class:`TenantArrival` / :class:`TenantDeparture` -- tenant churn.
* :class:`MixShift` -- a tenant's operation mix morphing over a window
  (e.g. a read-mostly service turning write-heavy).
* :class:`NodeCrash` / :class:`NodeRecovery` / :class:`NodeSlowdown` --
  fault injection through the IaaS layer (crash; repair-and-rejoin of a
  crashed machine; straggler with optional recovery and per-resource
  degradation factors, e.g. a network-only slowdown).
* :class:`DataGrowthBurst` -- a tenant's dataset ballooning over a window.

Every event compiles (``compile(spec, context)``) into
:class:`~repro.scenarios.schedule.ScheduledAction` lists: continuous curves
become silent control steps evaluated analytically at compile time, discrete
happenings become annotated actions that show up in traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.scenarios.context import ScenarioContext
from repro.scenarios.schedule import ScheduledAction, control_steps
from repro.scenarios.spec import ScenarioSpec
from repro.workloads.tenant import TenantWorkload, as_tenant


def _event_key(event, index_hint: str) -> str:
    """Multiplier key for one load-shaping event instance.

    Includes the instance identity so two otherwise-identical events (same
    tenant, same start) contribute *separate* multipliers that compose,
    instead of overwriting each other.  Keys are run-internal (never
    serialised), so the id does not affect reproducibility.
    """
    return f"{type(event).__name__}:{index_hint}:{id(event)}"


@dataclass(frozen=True)
class DiurnalLoad:
    """Sinusoidal load curve: multiplier ``1 + amplitude*sin(...)``.

    ``period_minutes`` is the full day/night cycle; ``phase_minutes`` shifts
    tenants against each other so their peaks do not align.
    """

    tenant: str
    period_minutes: float = 8.0
    amplitude: float = 0.5
    phase_minutes: float = 0.0
    start_minute: float = 0.0
    end_minute: float | None = None

    def multiplier(self, minute: float) -> float:
        """Load multiplier at ``minute``."""
        angle = 2.0 * math.pi * (minute - self.phase_minutes) / self.period_minutes
        return max(0.0, 1.0 + self.amplitude * math.sin(angle))

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        if not 0.0 <= self.amplitude <= 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1]")
        if self.period_minutes <= 0:
            raise ValueError("diurnal period must be positive")
        end = self.end_minute if self.end_minute is not None else spec.duration_minutes
        key = _event_key(self, f"{self.tenant}@{self.start_minute}")
        actions = [
            ScheduledAction(
                time_seconds=self.start_minute * 60.0,
                label=f"diurnal:{self.tenant}",
                apply=lambda: f"period={self.period_minutes}m amplitude={self.amplitude}",
                annotate=True,
            )
        ]
        for t in control_steps(spec, self.start_minute, end):
            m = self.multiplier(t / 60.0)
            actions.append(
                ScheduledAction(
                    time_seconds=t,
                    label=f"load:{self.tenant}",
                    apply=lambda m=m: context.set_load_multiplier(self.tenant, key, m),
                )
            )
        if end < spec.duration_minutes:
            # A curve that ends mid-run returns the tenant to its baseline
            # instead of freezing it at the curve's final value.
            actions.append(
                ScheduledAction(
                    time_seconds=end * 60.0,
                    label=f"diurnal-end:{self.tenant}",
                    apply=lambda: context.clear_load_multiplier(self.tenant, key),
                    annotate=True,
                )
            )
        return actions


@dataclass(frozen=True)
class FlashCrowd:
    """A load spike: linear ramp to ``magnitude``, hold, linear decay."""

    tenant: str
    start_minute: float
    ramp_minutes: float = 1.0
    hold_minutes: float = 2.0
    decay_minutes: float = 1.0
    magnitude: float = 3.0

    @property
    def end_minute(self) -> float:
        """Minute the crowd has fully dispersed."""
        return self.start_minute + self.ramp_minutes + self.hold_minutes + self.decay_minutes

    def multiplier(self, minute: float) -> float:
        """Load multiplier at ``minute``."""
        t = minute - self.start_minute
        if t < 0 or minute > self.end_minute:
            return 1.0
        if t < self.ramp_minutes:
            return 1.0 + (self.magnitude - 1.0) * (t / self.ramp_minutes)
        if t < self.ramp_minutes + self.hold_minutes:
            return self.magnitude
        if self.decay_minutes <= 0:
            # Instant dispersal: the crowd is gone the moment the hold ends.
            return 1.0
        into_decay = t - self.ramp_minutes - self.hold_minutes
        return self.magnitude - (self.magnitude - 1.0) * (into_decay / self.decay_minutes)

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        if self.magnitude <= 0:
            raise ValueError("flash crowd magnitude must be positive")
        if self.ramp_minutes < 0 or self.hold_minutes < 0 or self.decay_minutes < 0:
            raise ValueError("flash crowd phases must be non-negative")
        if self.start_minute >= spec.duration_minutes:
            # Entirely after the run: no actions, no dangling end annotation.
            return []
        key = _event_key(self, f"{self.tenant}@{self.start_minute}")
        actions = [
            ScheduledAction(
                time_seconds=self.start_minute * 60.0,
                label=f"flash-crowd-start:{self.tenant}",
                apply=lambda: f"x{self.magnitude} for {self.hold_minutes}m",
                annotate=True,
            ),
        ]
        for t in control_steps(spec, self.start_minute, self.end_minute):
            m = self.multiplier(t / 60.0)
            actions.append(
                ScheduledAction(
                    time_seconds=t,
                    label=f"load:{self.tenant}",
                    apply=lambda m=m: context.set_load_multiplier(self.tenant, key, m),
                )
            )
        # Appended after the steps: ties at the end instant resolve with the
        # clear firing last (the schedule's sort is stable), so the tenant
        # ends on its baseline, not on a re-added multiplier.
        actions.append(
            ScheduledAction(
                time_seconds=min(self.end_minute, spec.duration_minutes) * 60.0,
                label=f"flash-crowd-end:{self.tenant}",
                apply=lambda: context.clear_load_multiplier(self.tenant, key),
                annotate=True,
            )
        )
        return actions


@dataclass(frozen=True)
class TenantArrival:
    """A new tenant arrives mid-run with its own workload and partitions.

    ``workload`` is any :class:`~repro.workloads.tenant.TenantWorkload`
    (a bare YCSB workload is adapted automatically), so TPC-C tenants can
    arrive mid-run like key-value ones.
    """

    minute: float
    workload: TenantWorkload
    target_ops: float | None = None

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        tenant = as_tenant(self.workload)
        return [
            ScheduledAction(
                time_seconds=self.minute * 60.0,
                label=f"tenant-arrival:{tenant.name}",
                apply=lambda: context.add_tenant(tenant, self.target_ops),
                annotate=True,
            )
        ]


@dataclass(frozen=True)
class TenantDeparture:
    """A tenant leaves; its client population detaches (data stays)."""

    minute: float
    tenant: str

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        return [
            ScheduledAction(
                time_seconds=self.minute * 60.0,
                label=f"tenant-departure:{self.tenant}",
                apply=lambda: context.remove_tenant(self.tenant),
                annotate=True,
            )
        ]


@dataclass(frozen=True)
class MixShift:
    """A tenant's operation mix interpolates linearly to ``to_mix``.

    Models workload drift -- e.g. YCSB-A (50/50 read/update) morphing into
    YCSB-B-style all-update as a service's cache warms up elsewhere.  The
    starting point is the tenant's declared mix; each control step applies
    the renormalised interpolation.
    """

    tenant: str
    start_minute: float
    end_minute: float
    to_mix: tuple[tuple[str, float], ...]

    def mix_at(self, minute: float, from_mix: dict[str, float]) -> dict[str, float]:
        """Interpolated (renormalised) mix at ``minute``."""
        span = self.end_minute - self.start_minute
        progress = 0.0 if span <= 0 else (minute - self.start_minute) / span
        progress = min(1.0, max(0.0, progress))
        target = dict(self.to_mix)
        blended: dict[str, float] = {}
        # sorted(): the union's raw iteration order is PYTHONHASHSEED-
        # dependent and would decide blended-dict insertion order, which
        # flows into update_workload(op_mix=...).  (lint rule D3)
        for op in sorted(set(from_mix) | set(target)):
            share = (1.0 - progress) * from_mix.get(op, 0.0) + progress * target.get(op, 0.0)
            if share > 1e-12:
                blended[op] = share
        total = sum(blended.values())
        return {op: share / total for op, share in blended.items()}

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        if self.end_minute <= self.start_minute:
            raise ValueError("mix shift needs end_minute > start_minute")
        if self.start_minute >= spec.duration_minutes:
            return []
        source = next(
            (t for t in spec.tenants if t.name == self.tenant), None
        )
        if source is None:
            raise ValueError(f"mix shift targets unknown tenant {self.tenant!r}")
        if not source.workload.supports_mix_shift:
            # A TPC-C tenant's operation mix is *derived* from its
            # transaction mix; interpolating it directly would silently
            # decouple the simulated load from the benchmark's semantics.
            raise ValueError(
                f"mix shift targets tenant {self.tenant!r} whose operation mix "
                f"is derived from {type(source.workload).__name__} semantics "
                "and cannot be shifted; target a YCSB tenant instead"
            )
        from_mix = dict(source.workload.op_mix)
        actions = [
            ScheduledAction(
                time_seconds=self.start_minute * 60.0,
                label=f"mix-shift-start:{self.tenant}",
                apply=lambda: " ".join(
                    f"{op}={share:.2f}" for op, share in sorted(self.to_mix)
                ),
                annotate=True,
            ),
            ScheduledAction(
                time_seconds=min(self.end_minute, spec.duration_minutes) * 60.0,
                label=f"mix-shift-end:{self.tenant}",
                # A shift truncated by the scenario end settles on the
                # interpolated mix at the truncation point, not the target.
                apply=lambda: context.set_mix(
                    self.tenant,
                    self.mix_at(min(self.end_minute, spec.duration_minutes), from_mix),
                ),
                annotate=True,
            ),
        ]
        for t in control_steps(spec, self.start_minute, self.end_minute):
            mix = self.mix_at(t / 60.0, from_mix)
            actions.append(
                ScheduledAction(
                    time_seconds=t,
                    label=f"mix:{self.tenant}",
                    apply=lambda mix=mix: context.set_mix(self.tenant, mix),
                )
            )
        return actions


@dataclass(frozen=True)
class NodeCrash:
    """A node dies abruptly (hypervisor failure) at ``minute``.

    With ``node=None`` the victim is drawn with the run's seeded RNG, so
    "a random node crashes" is still bit-reproducible.
    """

    minute: float
    node: str | None = None

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        return [
            ScheduledAction(
                time_seconds=self.minute * 60.0,
                label="node-crash",
                apply=lambda: context.crash_node(self.node),
                annotate=True,
            )
        ]


@dataclass(frozen=True)
class NodeRecovery:
    """A previously crashed node is repaired and rejoins the cluster.

    With ``node=None`` the most recently crashed unrecovered node rejoins.
    The machine boots for the usual IaaS boot delay before serving again,
    which is what makes *cascading* failures interesting: a second
    :class:`NodeCrash` can land while the first victim is still rebooting.
    """

    minute: float
    node: str | None = None

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        return [
            ScheduledAction(
                time_seconds=self.minute * 60.0,
                label="node-rejoin",
                apply=lambda: context.recover_crashed_node(self.node),
                annotate=True,
            )
        ]


@dataclass(frozen=True)
class NodeSlowdown:
    """A node degrades to ``factor`` of its hardware budgets (straggler).

    The per-resource factors override ``factor`` for one budget each, so a
    fault can hit a single resource -- ``network_factor=0.15`` with the
    others untouched is a congested link (slow-network partition), not a
    slow machine.  With a ``duration_minutes`` the node recovers afterwards;
    the recovery action targets whichever victim the slowdown picked at fire
    time.
    """

    minute: float
    node: str | None = None
    factor: float = 0.5
    cpu_factor: float | None = None
    disk_factor: float | None = None
    network_factor: float | None = None
    duration_minutes: float | None = None

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        victim_cell: list[str] = []

        def slow() -> str:
            detail = context.slow_node(
                self.node,
                self.factor,
                cpu=self.cpu_factor,
                disk=self.disk_factor,
                network=self.network_factor,
            )
            victim_cell.append(detail.split(" ", 1)[0])
            return detail

        def recover() -> str:
            if not victim_cell:
                return "no victim"
            return context.recover_node(victim_cell[0])

        actions = [
            ScheduledAction(
                time_seconds=self.minute * 60.0,
                label="node-slowdown",
                apply=slow,
                annotate=True,
            )
        ]
        if self.duration_minutes is not None:
            actions.append(
                ScheduledAction(
                    time_seconds=(self.minute + self.duration_minutes) * 60.0,
                    label="node-recovery",
                    apply=recover,
                    annotate=True,
                )
            )
        return actions


@dataclass(frozen=True)
class DataGrowthBurst:
    """A tenant's dataset grows by ``growth_factor`` over a window.

    Growth is geometric and proportional to elapsed time: each control gap
    applies ``growth_factor ** (gap / duration)``, so a full window
    integrates to exactly ``growth_factor`` regardless of the control
    interval, and a burst truncated by the scenario end applies only the
    elapsed share of the growth.
    """

    tenant: str
    start_minute: float
    duration_minutes: float
    growth_factor: float = 2.0

    def compile(self, spec: ScenarioSpec, context: ScenarioContext) -> list[ScheduledAction]:
        if self.growth_factor <= 0:
            raise ValueError("growth factor must be positive")
        if self.duration_minutes <= 0:
            raise ValueError("growth burst needs a positive duration")
        if self.start_minute >= spec.duration_minutes:
            return []
        steps = control_steps(
            spec, self.start_minute, self.start_minute + self.duration_minutes
        )
        duration_seconds = self.duration_minutes * 60.0
        actions = [
            ScheduledAction(
                time_seconds=self.start_minute * 60.0,
                label=f"data-growth-start:{self.tenant}",
                apply=lambda: f"x{self.growth_factor} over {self.duration_minutes}m",
                annotate=True,
            ),
            ScheduledAction(
                time_seconds=steps[-1] if steps else self.start_minute * 60.0,
                label=f"data-growth-end:{self.tenant}",
                apply=lambda: "burst complete",
                annotate=True,
            ),
        ]
        for previous, t in zip(steps, steps[1:]):
            factor = self.growth_factor ** ((t - previous) / duration_seconds)
            actions.append(
                ScheduledAction(
                    time_seconds=t,
                    label=f"grow:{self.tenant}",
                    apply=lambda factor=factor: context.grow_tenant_data(
                        self.tenant, factor
                    ),
                )
            )
        return actions
