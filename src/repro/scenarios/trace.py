"""Golden-trace serialisation and comparison.

A *trace* is the canonical JSON-able record of one scenario run: metadata,
the sampled time series (throughput / cumulative ops / node count), the
scenario-event annotations, the controller's decision log and the end-state
summary.  Traces serve two purposes:

* **regression goldens** -- committed under ``tests/golden/`` and diffed on
  every test run, locking down the end-to-end behaviour of the whole
  controller stack (simulator, monitor, decision maker, actuator, IaaS);
* **kernel equivalence** -- the fast and reference kernels must produce
  traces that agree within 1e-6 relative tolerance on every scenario.

Serialisation is canonical (sorted keys, fixed float rounding), so two
identical-seed runs produce byte-identical files.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.scenarios.runner import DEFAULT_KERNEL, ScenarioRunResult, run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.simulation.latency import BINS_PER_DECADE, MIN_MS, WEIGHT_SCALE

#: Trace schema version; bump when the shape changes and regenerate goldens.
#: Format 2 added the ``assertions`` verdict list (scenario assertions DSL).
#: Format 3 added the SLA sections: per-tenant latency/throughput series
#: (``tenant_series``), SLO verdicts (``slo``) and the cost envelope
#: (``cost``).
#: Format 4 added native throughput units (multi-workload tenants): each
#: ``slo`` entry carries the ``unit`` its floor is declared in, and
#: ``tenant_units`` maps every tenant binding to its native unit label
#: (``ops/s`` for YCSB, ``tpmC`` for TPC-C).
#: Format 5 made the latency pipeline percentile-native: ``tenant_series``
#: rows grew per-window p95/p99 columns (``null`` when distributions are
#: disabled), and ``latency_distributions`` serialises each tenant's
#: whole-run merged :class:`~repro.simulation.latency.LatencySummary`
#: (sparse ``[bin, count]`` pairs plus headline quantiles).
TRACE_FORMAT = 5

#: Controllers every canned scenario is goldened under.
GOLDEN_CONTROLLERS = ("met", "tiramola")

#: Scenarios additionally goldened under the planner controller.  The
#: planner is calibration-driven, so its catalog coverage is pinned where
#: its declared SLO/cost assertions live (scale-up on predicted breach in
#: ``flash_crowd``, consolidation of paid-for-but-unused headroom in the
#: steady scenarios) rather than across all 14 entries -- the full matrix
#: would spend the golden suite's wall-clock budget re-proving runs where
#: the planner holds the initial cluster and the trace is near-identical
#: to tiramola's.
PLANNER_GOLDEN_SCENARIOS = ("data_growth", "flash_crowd", "tpcc_steady")


def golden_combos() -> list[tuple[str, str]]:
    """Every (scenario, controller) pair with a committed golden."""
    # Imported lazily: the catalog imports the assertion DSL, which reaches
    # back into scenario machinery this module sits beside.
    from repro.scenarios.catalog import CANNED_SCENARIOS

    combos = [
        (scenario, controller)
        for scenario in sorted(CANNED_SCENARIOS)
        for controller in GOLDEN_CONTROLLERS
    ]
    combos += [(scenario, "planner") for scenario in PLANNER_GOLDEN_SCENARIOS]
    return sorted(combos)


def golden_name(scenario: str, controller: str) -> str:
    """File name of the committed golden for one scenario/controller pair."""
    return f"{scenario}__{controller}.json"

#: Decimal places kept for floats in a trace.  Coarse enough that canonical
#: JSON is stable and readable, fine enough (micro-op/s on kilo-op/s series)
#: that a 1e-6 relative kernel divergence is still visible.
FLOAT_DECIMALS = 6
#: Decimal places kept for the per-tenant series.  Deliberately coarser than
#: the cluster series: tenant series are the bulkiest trace section (one row
#: per tenant per sample), milli-op/s / micro-second precision says nothing
#: about service quality, and the golden suite's kernel-agreement check
#: compares them with its own looser tolerance.
TENANT_SERIES_DECIMALS = 3


class TraceFormatError(ValueError):
    """A trace file's schema version does not match this build's."""


def _round(value: float) -> float:
    """Canonical float rounding for traces (also kills -0.0)."""
    rounded = round(value, FLOAT_DECIMALS)
    return 0.0 if rounded == 0 else rounded


def _round_coarse(value: float) -> float:
    """Capped-precision rounding for the per-tenant series."""
    rounded = round(value, TENANT_SERIES_DECIMALS)
    return 0.0 if rounded == 0 else rounded


def result_trace(result: ScenarioRunResult) -> dict:
    """The canonical trace dict of a finished scenario run."""
    run = result.run
    return {
        "format": TRACE_FORMAT,
        "scenario": result.spec.name,
        "seed": result.spec.seed,
        "controller": result.controller,
        "kernel": result.kernel,
        "duration_minutes": _round(result.spec.duration_minutes),
        "series": [
            {
                "minute": _round(point.minute),
                "throughput": _round(point.throughput),
                "cumulative_ops": _round(point.cumulative_ops),
                "nodes": point.nodes,
            }
            for point in run.series
        ],
        "annotations": [
            {
                "minute": _round(annotation.minute),
                "label": annotation.label,
                "detail": annotation.detail,
            }
            for annotation in run.annotations
        ],
        "decisions": [
            {
                "minute": _round(decision["minute"]),
                "kind": decision["kind"],
                "detail": decision["detail"],
            }
            for decision in result.decisions
        ],
        "assertions": [
            {
                "assertion": verdict.assertion,
                "passed": verdict.passed,
                "detail": verdict.detail,
            }
            for verdict in result.assertions
        ],
        # Per-tenant quality series as compact
        # [minute, ops/s, latency-ms, p95-ms, p99-ms] rows (capped precision;
        # see TENANT_SERIES_DECIMALS).  The percentile columns are null when
        # the run recorded no latency distributions.
        "tenant_series": {
            name: [
                [
                    _round(point.minute),
                    _round_coarse(point.throughput),
                    _round_coarse(point.latency_ms),
                    None if point.p95_ms is None else _round_coarse(point.p95_ms),
                    None if point.p99_ms is None else _round_coarse(point.p99_ms),
                ]
                for point in points
            ]
            for name, points in sorted(run.tenant_series.items())
        },
        # Whole-run merged latency distribution per tenant: the summary's
        # sparse integer histogram (exact, mergeable) plus headline
        # quantiles.  Counts are integers, so this section is byte-exact
        # across kernels; empty when distributions were disabled.
        "latency_distributions": {
            name: {
                "bins_per_decade": BINS_PER_DECADE,
                "min_ms": MIN_MS,
                "weight_scale": WEIGHT_SCALE,
                "counts": summary.to_pairs(),
                "p50": _round_coarse(summary.quantile(0.50)),
                "p95": _round_coarse(summary.quantile(0.95)),
                "p99": _round_coarse(summary.quantile(0.99)),
            }
            for name, summary in sorted(run.tenant_distributions.items())
        },
        "slo": [
            {
                "slo": report.slo.describe(),
                "tenant": report.slo.tenant,
                "unit": report.slo.unit,
                "samples": report.samples,
                "violations": len(report.violations),
                "violation_minutes": _round(report.violation_minutes),
                "satisfied": report.satisfied,
            }
            for report in result.slo_reports
        ],
        # Native throughput unit of every tenant the spec declares (initial
        # tenants and mid-run arrivals), keyed by binding name.
        "tenant_units": dict(sorted(result.tenant_units().items())),
        "cost": {
            "pricing": result.cost.pricing if result.cost else "",
            "total": _round(result.cost.total) if result.cost else 0.0,
            "machine_minutes": {
                flavor: _round(minutes)
                for flavor, minutes in sorted(result.machine_minute_ledger.items())
            },
        },
        "per_tenant_throughput": {
            name: _round(value)
            for name, value in sorted(run.per_workload_throughput.items())
        },
        "total_operations": _round(run.total_operations),
        "final_nodes": run.final_nodes,
        "machine_minutes": _round(run.machine_minutes),
    }


def scenario_trace(
    spec: ScenarioSpec, controller: str = "met", kernel: str = DEFAULT_KERNEL
) -> dict:
    """Run ``spec`` and return its trace."""
    result = run_scenario(spec, controller=controller, kernel=kernel, keep_simulator=False)
    return result_trace(result)


def trace_to_json(trace: dict) -> str:
    """Canonical serialisation: byte-identical for identical runs."""
    return json.dumps(trace, indent=1, sort_keys=True) + "\n"


def load_trace(path) -> dict:
    """Load a committed trace, refusing schema versions this build can't read.

    Raises :class:`TraceFormatError` with a regenerate hint when the file
    carries a different ``format`` -- a format-2 golden under a format-3
    build is *stale*, not subtly drifted, and the failure mode should say
    so instead of producing hundreds of spurious value diffs.
    """
    path = Path(path)
    data = json.loads(path.read_text())
    observed = data.get("format")
    if observed != TRACE_FORMAT:
        raise TraceFormatError(
            f"{path.name} is trace format {observed!r}, this build reads "
            f"format {TRACE_FORMAT}; regenerate goldens with "
            "`PYTHONPATH=src python scripts/regen_goldens.py` and commit the diff"
        )
    return data


def diff_traces(
    golden: dict,
    observed: dict,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-9,
) -> list[str]:
    """Differences between two traces, as human-readable paths.

    Floats compare with tolerances (so goldens survive harmless last-digit
    drift and the kernel-equivalence check can use 1e-6); everything else
    must match exactly.  Returns an empty list when the traces agree.
    """
    differences: list[str] = []
    _diff("", golden, observed, rel_tol, abs_tol, differences)
    return differences


def _diff(path: str, golden, observed, rel_tol: float, abs_tol: float, out: list[str]) -> None:
    if isinstance(golden, dict) and isinstance(observed, dict):
        for key in sorted(set(golden) | set(observed)):
            where = f"{path}.{key}" if path else str(key)
            if key not in golden:
                out.append(f"{where}: unexpected key (not in golden)")
            elif key not in observed:
                out.append(f"{where}: missing key")
            else:
                _diff(where, golden[key], observed[key], rel_tol, abs_tol, out)
        return
    if isinstance(golden, list) and isinstance(observed, list):
        if len(golden) != len(observed):
            out.append(f"{path}: length {len(observed)} != golden {len(golden)}")
            return
        for index, (g, o) in enumerate(zip(golden, observed)):
            _diff(f"{path}[{index}]", g, o, rel_tol, abs_tol, out)
        return
    if isinstance(golden, bool) or isinstance(observed, bool):
        # bool is an int subclass; compare exactly, before the number branch.
        if golden is not observed:
            out.append(f"{path}: {observed!r} != golden {golden!r}")
        return
    if isinstance(golden, (int, float)) and isinstance(observed, (int, float)):
        if not math.isclose(golden, observed, rel_tol=rel_tol, abs_tol=abs_tol):
            out.append(f"{path}: {observed!r} != golden {golden!r}")
        return
    if golden != observed:
        out.append(f"{path}: {observed!r} != golden {golden!r}")
