"""The canned scenario catalog.

Reduced-scale but qualitatively faithful scenarios, one per stimulus family,
used by the golden-trace regression suite and the example gallery.  Each
runs a 3-node cluster of the weak Section 6.4 VMs for ~10 simulated minutes
with two or three small tenants, so a full catalog sweep under both
controllers stays inside the tier-1 time budget.

The catalog is deliberately data-only: tweaking a scenario means editing a
spec here and regenerating the goldens with ``scripts/regen_goldens.py``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.scenarios.assertions import (
    CostCeiling,
    LatencyPercentileWithin,
    LatencyWithin,
    NoOscillation,
    ReconfiguresBefore,
    RecoversWithin,
    SLOViolationsBelow,
    StaysWithin,
)
from repro.sla.slo import SLODefinition
from repro.scenarios.events import (
    DataGrowthBurst,
    DiurnalLoad,
    FlashCrowd,
    MixShift,
    NodeCrash,
    NodeRecovery,
    NodeSlowdown,
    TenantArrival,
    TenantDeparture,
)
from repro.scenarios.spec import ScenarioSpec, TenantSpec
from repro.sla.units import TPMC
from repro.workloads.tpcc.schema import TPCCConfig
from repro.workloads.tpcc.tenant import TPCCTenant
from repro.workloads.ycsb.workloads import CORE_WORKLOADS

#: Reduced-scale copies of the paper workloads: fewer client threads and a
#: smaller key space, so three weak VMs are the right starting size.
SMALL_A = replace(CORE_WORKLOADS["A"], threads=25, record_count=200_000, partitions=2)
SMALL_B = replace(CORE_WORKLOADS["B"], threads=25, record_count=200_000, partitions=2)
SMALL_C = replace(CORE_WORKLOADS["C"], threads=25, record_count=200_000, partitions=2)
SMALL_D = replace(
    CORE_WORKLOADS["D"], threads=5, record_count=50_000, partitions=1,
    target_ops_per_second=None,
)
SMALL_E = replace(CORE_WORKLOADS["E"], threads=10, record_count=200_000, partitions=2)

#: Reduced-scale TPC-C tenant: 8 warehouses over 4 warehouse-aligned
#: partitions (~25 MB each at scale factor 0.05) and 20 clients, sized so a
#: capped TPC-C tenant draws about as much as one SMALL_* YCSB tenant.
SMALL_TPCC = TPCCTenant(
    name="tpcc",
    config=TPCCConfig(warehouses=8, warehouses_per_node=2, clients=20, scale_factor=0.05),
)


def _base(name: str, tenants, events, minutes: float = 10.0, **overrides) -> ScenarioSpec:
    overrides.setdefault("initial_nodes", 3)
    overrides.setdefault("max_nodes", 6)
    return ScenarioSpec(
        name=name,
        tenants=tuple(tenants),
        events=tuple(events),
        duration_minutes=minutes,
        **overrides,
    )


def diurnal_scenario() -> ScenarioSpec:
    """Two tenants on phase-shifted day/night curves (peaks never align)."""
    return _base(
        "diurnal",
        [TenantSpec(SMALL_A, target_ops=2600.0), TenantSpec(SMALL_C, target_ops=3200.0)],
        [
            DiurnalLoad(tenant="A", period_minutes=8.0, amplitude=0.6),
            DiurnalLoad(tenant="C", period_minutes=8.0, amplitude=0.6, phase_minutes=4.0),
        ],
        minutes=12.0,
        # Anti-phase peaks mean total demand is nearly flat: a controller
        # that tracks per-tenant demand should serve it from the starting
        # cluster without renting extra machines beyond a modest envelope.
        assertions=(CostCeiling(max_cost=0.04),),
        description="Sinusoidal load with tenant peaks 180 degrees apart.",
    )


def flash_crowd_scenario() -> ScenarioSpec:
    """A read-mostly tenant gets slashdotted three minutes in."""
    return _base(
        "flash_crowd",
        [TenantSpec(SMALL_A, target_ops=2400.0), TenantSpec(SMALL_C, target_ops=2800.0)],
        [
            FlashCrowd(
                tenant="C", start_minute=3.0, ramp_minutes=1.0,
                hold_minutes=3.0, decay_minutes=1.0, magnitude=3.0,
            ),
        ],
        minutes=10.0,
        # The paper's Section 6.4 divergence, declared: the workload-aware
        # controller reconfigures what it has before provisioning, while the
        # baseline can only add homogeneous nodes.  The floor is one below
        # the initial size: MeT's incremental restarts take one node offline
        # at a time, and the observed series legitimately dips through that.
        # The SLO judges the *bystander*: tenant A did nothing wrong, so the
        # crowd on C must not push A's latency past its ceiling -- and the
        # percentile ceilings bound A's *tail*, which a window mean would
        # happily hide a spike inside (observed peak p95 ~2.1ms under both
        # controllers; the 12% bin granularity needs headroom).
        slos=(
            SLODefinition(
                tenant="A", latency_ceiling_ms=3.0,
                p95_ceiling_ms=3.0, p99_ceiling_ms=3.5,
            ),
        ),
        assertions=(
            ReconfiguresBefore(action="add_node", controllers=("met",)),
            StaysWithin(min_nodes=2, max_nodes=6),
            SLOViolationsBelow(tenant="A", max_violation_minutes=0.0),
            LatencyPercentileWithin(tenant="A", percentile=95, ceiling_ms=3.0),
            LatencyPercentileWithin(tenant="A", percentile=99, ceiling_ms=3.5),
            # The planner rides the crowd with temporary capacity and gives
            # it back, so it must come in under Tiramola's observed spend
            # (~0.030) while holding the same zero-violation SLO above.
            CostCeiling(max_cost=0.0305, controllers=("planner",)),
        ),
        description="3x read spike on tenant C: ramp 1m, hold 3m, decay 1m.",
    )


def tenant_churn_scenario() -> ScenarioSpec:
    """A scan-heavy tenant arrives mid-run and leaves again."""
    return _base(
        "tenant_churn",
        [TenantSpec(SMALL_A, target_ops=2400.0), TenantSpec(SMALL_C, target_ops=2800.0)],
        [
            TenantArrival(minute=2.5, workload=SMALL_E, target_ops=260.0),
            TenantDeparture(minute=7.5, tenant="E"),
        ],
        minutes=10.0,
        # The arriving scan tenant is the latency-sensitive one: its scans
        # pay for every placement mistake, so its SLO (judged only while it
        # is present) bounds how rough the landing may be, and the churn
        # must not bait either controller into renting extra machines.
        slos=(SLODefinition(tenant="E", latency_ceiling_ms=10.0),),
        assertions=(
            SLOViolationsBelow(tenant="E", max_violation_minutes=0.0),
            CostCeiling(max_cost=0.035),
        ),
        description="Scan tenant E arrives at minute 2.5 and departs at 7.5.",
    )


def mix_shift_scenario() -> ScenarioSpec:
    """Tenant A morphs from 50/50 read-update into all-update (YCSB-B style)."""
    return _base(
        "mix_shift",
        [TenantSpec(SMALL_A, target_ops=4000.0), TenantSpec(SMALL_C, target_ops=3000.0)],
        [
            MixShift(
                tenant="A", start_minute=2.0, end_minute=6.0,
                to_mix=(("update", 1.0),),
            ),
        ],
        minutes=10.0,
        description="A's op mix interpolates to 100% update over minutes 2-6.",
    )


def node_fault_scenario() -> ScenarioSpec:
    """One node crashes; later another degrades to half speed and recovers."""
    return _base(
        "node_fault",
        [TenantSpec(SMALL_A, target_ops=2200.0), TenantSpec(SMALL_C, target_ops=2600.0)],
        [
            NodeCrash(minute=2.5),
            NodeSlowdown(minute=6.0, factor=0.5, duration_minutes=2.5),
        ],
        minutes=11.0,
        # Faults degrade throughput, but tenant-visible latency must stay
        # bounded: survivors absorbing a crashed node's regions get hotter,
        # not pathologically slow.
        slos=(
            SLODefinition(tenant="A", latency_ceiling_ms=3.0),
            SLODefinition(tenant="C", latency_ceiling_ms=2.5),
        ),
        assertions=(
            SLOViolationsBelow(tenant="A", max_violation_minutes=0.0),
            SLOViolationsBelow(tenant="C", max_violation_minutes=0.0),
        ),
        description="Random node crash at 2.5m; straggler from 6m to 8.5m.",
    )


def data_growth_scenario() -> ScenarioSpec:
    """An insert-mostly tenant's dataset quadruples over four minutes."""
    return _base(
        "data_growth",
        [TenantSpec(SMALL_D, target_ops=900.0), TenantSpec(SMALL_C, target_ops=2800.0)],
        [
            DataGrowthBurst(
                tenant="D", start_minute=2.0, duration_minutes=4.0, growth_factor=4.0,
            ),
        ],
        minutes=10.0,
        # Dataset growth raises per-op cost but not the request rate; the
        # planner sees served load that still fits on two nodes and must
        # bank the savings without thrashing the cluster size.
        assertions=(
            CostCeiling(max_cost=0.022, controllers=("planner",)),
            StaysWithin(min_nodes=2, max_nodes=3, controllers=("planner",)),
        ),
        description="Tenant D's partitions grow 4x between minutes 2 and 6.",
    )


def cascading_failure_scenario() -> ScenarioSpec:
    """A crash, a repair, and a second crash while the repair is booting.

    The hardest fault sequence a controller faces short of total loss: the
    first victim is being repaired (rejoining, still booting) when a second
    machine dies, so the cluster dips to half its size with full load
    attached.  The declared expectation is resilience, not heroics: the run
    must end back inside the size envelope with throughput recovered.
    """
    return _base(
        "cascading_failure",
        [TenantSpec(SMALL_A, target_ops=2400.0), TenantSpec(SMALL_C, target_ops=2800.0)],
        [
            NodeCrash(minute=2.0),
            NodeRecovery(minute=4.0),
            NodeCrash(minute=5.0),
        ],
        minutes=12.0,
        initial_nodes=4,
        assertions=(
            RecoversWithin(minutes=5.0, after_label="node-crash", fraction=0.8),
            StaysWithin(min_nodes=2, max_nodes=6),
            # Surviving two crashes must not cost more than renting a
            # modest replacement budget.
            CostCeiling(max_cost=0.045),
        ),
        description="Crash at 2m, repair rejoins at 4m, second crash at 5m.",
    )


def correlated_flash_scenario() -> ScenarioSpec:
    """Three tenants' flash crowds land at the same instant (worst case).

    The diurnal scenario keeps peaks 180 degrees apart; here every peak is
    aligned, so there is no idle tenant to steal headroom from and the
    controller sees one cluster-wide step in demand.
    """
    return _base(
        "correlated_flash",
        [
            TenantSpec(SMALL_A, target_ops=2000.0),
            TenantSpec(SMALL_B, target_ops=1800.0),
            TenantSpec(SMALL_C, target_ops=2200.0),
        ],
        [
            FlashCrowd(tenant="A", start_minute=3.0, ramp_minutes=1.0,
                       hold_minutes=3.0, decay_minutes=1.0, magnitude=2.5),
            FlashCrowd(tenant="B", start_minute=3.0, ramp_minutes=1.0,
                       hold_minutes=3.0, decay_minutes=1.0, magnitude=2.5),
            FlashCrowd(tenant="C", start_minute=3.0, ramp_minutes=1.0,
                       hold_minutes=3.0, decay_minutes=1.0, magnitude=2.5),
        ],
        minutes=11.0,
        # B has the worst read/write mix under pressure, so its latency SLO
        # is the binding constraint when all three crowds land at once.
        slos=(SLODefinition(tenant="B", latency_ceiling_ms=4.0),),
        assertions=(
            NoOscillation(max_flips=1),
            StaysWithin(min_nodes=2, max_nodes=6),
            SLOViolationsBelow(tenant="B", max_violation_minutes=0.0),
            CostCeiling(max_cost=0.05),
        ),
        description="Aligned 2.5x spikes on all three tenants at minute 3.",
    )


def slow_network_scenario() -> ScenarioSpec:
    """A node's network link congests to 5% while CPU and disk stay healthy.

    A scan-heavy tenant makes the network the scarce resource, so the
    degradation starves cluster throughput by ~25% without moving the
    CPU/IO metrics a system-level autoscaler watches -- the partial-fault
    blind spot (neither controller reacts; the golden pins that).
    """
    return _base(
        "slow_network",
        [TenantSpec(SMALL_E, target_ops=700.0), TenantSpec(SMALL_C, target_ops=2600.0)],
        [
            NodeSlowdown(
                minute=2.5, factor=1.0, network_factor=0.05, duration_minutes=4.0,
            ),
        ],
        minutes=10.0,
        # The recovery claim anchors its baseline to the *fault onset*, so
        # the pre-fault healthy throughput is the bar: within five minutes
        # of the slowdown starting, the cluster must be fully back (the
        # fault itself lifts at 6.5m, just inside the deadline).  Anchoring
        # to the recovery event instead would measure against the degraded
        # throughput and pass vacuously.  The SLOs put numbers on the
        # partial-fault blind spot: the scan tenant's latency may rise but
        # stays bounded, and C keeps a hard throughput floor even while the
        # congested link starves the cluster.
        slos=(SLODefinition(tenant="C", throughput_floor=1500.0),),
        assertions=(
            StaysWithin(min_nodes=3, max_nodes=6),
            RecoversWithin(minutes=5.0, after_label="node-slowdown", fraction=0.9),
            LatencyWithin(tenant="E", ceiling_ms=12.0),
            SLOViolationsBelow(tenant="C", max_violation_minutes=0.0),
        ),
        description="Network-only degradation to 5% on one node, 2.5m-6.5m.",
    )


def multi_fault_storm_scenario() -> ScenarioSpec:
    """A correlated storm: one machine dies, two survivors degrade at once.

    The ROADMAP's multi-fault case: a rack-level event takes out one node
    outright and leaves the survivors impaired in *different* resources --
    one with a failing disk, one behind a congested link -- exactly when
    they must absorb the dead node's regions.  System-level autoscalers see
    three different symptoms with one root cause.  Victims are pinned (not
    RNG-drawn) so the storm always hits distinct machines.  The declared
    expectations are bounded degradation, not heroics: tenant latency may
    breach its ceiling only for the storm's budgeted minutes, and riding it
    out must not blow the cost envelope.
    """
    return _base(
        "multi_fault_storm",
        [
            TenantSpec(SMALL_A, target_ops=2400.0),
            TenantSpec(SMALL_C, target_ops=2600.0),
            TenantSpec(SMALL_E, target_ops=650.0),
        ],
        [
            NodeCrash(minute=2.0, node="rs-2"),
            NodeSlowdown(minute=2.5, node="rs-3", factor=1.0, cpu_factor=0.3,
                         duration_minutes=3.0),
            NodeSlowdown(minute=3.0, node="rs-4", factor=1.0, network_factor=0.12,
                         duration_minutes=2.5),
            NodeRecovery(minute=5.0),
        ],
        minutes=12.0,
        initial_nodes=4,
        # Ceilings sized so the storm *shows* in the verdicts: A breaches
        # its ceiling at the storm peak (inside its violation budget), the
        # scan tenant rides the congested link through its own budget, and
        # the bystander C must stay clean throughout.
        slos=(
            SLODefinition(tenant="A", latency_ceiling_ms=2.5),
            SLODefinition(tenant="C", latency_ceiling_ms=3.0),
            SLODefinition(tenant="E", latency_ceiling_ms=9.0),
        ),
        assertions=(
            # The ceiling is 7, not the spec's max_nodes=6: the repaired
            # machine rejoins outside the controller's quota, so a baseline
            # that scaled to its limit legitimately peaks one above it.
            StaysWithin(min_nodes=2, max_nodes=7),
            RecoversWithin(minutes=5.0, after_label="node-slowdown", fraction=0.9),
            SLOViolationsBelow(tenant="A", max_violation_minutes=2.0),
            SLOViolationsBelow(tenant="C", max_violation_minutes=0.0),
            SLOViolationsBelow(tenant="E", max_violation_minutes=3.0),
            CostCeiling(max_cost=0.06),
        ),
        description="Crash at 2m; CPU and network faults on two survivors.",
    )


def tpcc_steady_scenario() -> ScenarioSpec:
    """A lone TPC-C tenant at steady load, promised a tpmC floor.

    The first non-YCSB catalog entry: the tenant's operation mix is derived
    from the standard transaction mix (write-intensive, ~8% read-only
    transactions) and its throughput promise is declared natively in tpmC.
    Steady load on warehouse-aligned partitions should be served by the
    starting cluster; the SLO floor sits below the capped rate so the
    verdict judges sustained service, not solver noise.
    """
    return _base(
        "tpcc_steady",
        [TenantSpec(SMALL_TPCC, target_ops=2400.0)],
        [],
        minutes=10.0,
        # 2400 key-value ops/s is ~3200 tpmC through the transaction mix;
        # the floor leaves ~10% headroom for placement churn.
        slos=(
            SLODefinition(tenant="tpcc", throughput_floor=2880.0, unit=TPMC),
            SLODefinition(tenant="tpcc", latency_ceiling_ms=4.0),
        ),
        assertions=(
            SLOViolationsBelow(tenant="tpcc", max_violation_minutes=0.0),
            CostCeiling(max_cost=0.035),
            # Steady load leaves a 3-node cluster with paid-for-but-unused
            # headroom; the planner must consolidate to 2 nodes (cheaper
            # than both incumbents, ~0.019) without dropping the tpmC floor.
            CostCeiling(max_cost=0.022, controllers=("planner",)),
            StaysWithin(min_nodes=2, max_nodes=3, controllers=("planner",)),
        ),
        description="Steady TPC-C tenant (8 warehouses) with a native tpmC floor.",
    )


def tpcc_order_rush_scenario() -> ScenarioSpec:
    """A flash crowd on a TPC-C tenant (an order rush, e.g. a sales event).

    The write-intensive transaction mix makes this spike qualitatively
    different from the read-mostly ``flash_crowd`` scenario: the surge is
    ~64% updates, so absorbing it is about write capacity, not cache
    headroom.  The tpmC floor is judged through the rush as well -- an
    order rush is exactly when the promise matters.
    """
    return _base(
        "tpcc_order_rush",
        [TenantSpec(SMALL_TPCC, target_ops=2200.0), TenantSpec(SMALL_C, target_ops=2600.0)],
        [
            FlashCrowd(
                tenant="tpcc", start_minute=3.0, ramp_minutes=1.0,
                hold_minutes=3.0, decay_minutes=1.0, magnitude=2.5,
            ),
        ],
        minutes=10.0,
        # The floor is set against the *baseline* rate (2200 ops/s is
        # ~2935 tpmC through the transaction mix): the rush must never push
        # the tenant below its steady promise, and the bystander C keeps
        # its latency ceiling.  The rush makes both controllers act -- MeT
        # reconfigures and rents one machine, the baseline rents two -- so
        # the cost ceiling is the quality-per-dollar half of the verdict.
        slos=(
            SLODefinition(tenant="tpcc", throughput_floor=2600.0, unit=TPMC),
            # The bystander's ceilings are mean *and* tail: the order rush
            # must not smear C's p99 even when its window mean stays flat
            # (observed peak p95 ~0.94ms under both controllers).
            SLODefinition(
                tenant="C", latency_ceiling_ms=2.0,
                p95_ceiling_ms=1.5, p99_ceiling_ms=2.0,
            ),
        ),
        assertions=(
            StaysWithin(min_nodes=3, max_nodes=6),
            SLOViolationsBelow(tenant="tpcc", max_violation_minutes=0.0),
            SLOViolationsBelow(tenant="C", max_violation_minutes=0.0),
            LatencyPercentileWithin(tenant="C", percentile=99, ceiling_ms=2.0),
            CostCeiling(max_cost=0.035),
        ),
        description="2.5x order rush on the TPC-C tenant: ramp 1m, hold 3m, decay 1m.",
    )


def mixed_tenancy_scenario() -> ScenarioSpec:
    """YCSB and TPC-C tenants co-resident: the heterogeneous-workload case.

    The paper's data-placement argument is about exactly this mix -- a
    read-only cache tenant, a read/write session store and a write-intensive
    transactional tenant competing for the same machines have *different*
    ideal node configurations, so a workload-aware controller should place
    and configure them apart while a homogeneous baseline cannot.  Each
    tenant keeps its own promise in its own unit (latency ceilings for the
    key-value tenants, a native tpmC floor for TPC-C).
    """
    return _base(
        "mixed_tenancy",
        [
            TenantSpec(SMALL_A, target_ops=2400.0),
            TenantSpec(SMALL_C, target_ops=2800.0),
            TenantSpec(SMALL_TPCC, target_ops=2000.0),
        ],
        [
            # A diurnal swing on the cache tenant keeps demand time-varying
            # without aligning every tenant's peak.
            DiurnalLoad(tenant="C", period_minutes=8.0, amplitude=0.5),
        ],
        minutes=11.0,
        # Each tenant's promise in its own unit: the session store is
        # latency-sensitive (its SLO rides through MeT's reconfiguration
        # drains), the transactional tenant holds a native tpmC floor
        # (2000 ops/s is ~2668 tpmC) even while its partitions move.
        slos=(
            # The session store's promise is mean and tail: MeT's
            # reconfiguration drains must not spike A's p99 past what the
            # mean ceiling already tolerates (observed peak p95 ~2.4ms).
            SLODefinition(
                tenant="A", latency_ceiling_ms=2.5,
                p95_ceiling_ms=3.0, p99_ceiling_ms=3.5,
            ),
            SLODefinition(tenant="tpcc", throughput_floor=2100.0, unit=TPMC),
        ),
        assertions=(
            SLOViolationsBelow(tenant="A", max_violation_minutes=0.0),
            SLOViolationsBelow(tenant="tpcc", max_violation_minutes=0.0),
            LatencyPercentileWithin(tenant="A", percentile=95, ceiling_ms=3.0),
            LatencyPercentileWithin(tenant="A", percentile=99, ceiling_ms=3.5),
            StaysWithin(min_nodes=2, max_nodes=6),
            CostCeiling(max_cost=0.035),
        ),
        description="Session store + cache + TPC-C co-resident, diurnal cache load.",
    )


def long_horizon_scenario() -> ScenarioSpec:
    """Two simulated hours of aligned day/night cycles (oscillation bait).

    Three full diurnal cycles with *aligned* tenant peaks tempt a threshold
    controller into adding at every crest and removing at every trough; the
    declared expectation bounds that thrash to the cycle count and keeps the
    cluster inside its envelope.  Coarser ticks and control steps keep two
    hours of simulated time inside the golden-suite budget.
    """
    return _base(
        "long_horizon",
        [TenantSpec(SMALL_A, target_ops=2200.0), TenantSpec(SMALL_C, target_ops=2600.0)],
        [
            DiurnalLoad(tenant="A", period_minutes=40.0, amplitude=0.7),
            DiurnalLoad(tenant="C", period_minutes=40.0, amplitude=0.7),
        ],
        minutes=120.0,
        tick_seconds=15.0,
        control_interval_seconds=60.0,
        monitor_period_seconds=30.0,
        cooldown_seconds=240.0,
        assertions=(
            NoOscillation(max_flips=6),
            StaysWithin(min_nodes=1, max_nodes=6),
            # Two simulated hours of elasticity: the whole point of scaling
            # to the troughs is that the bill stays near the 3-node floor.
            CostCeiling(max_cost=0.35),
        ),
        description="Three aligned 40m day/night cycles over two hours.",
    )


#: Every canned scenario, keyed by name.  The golden-trace suite runs each
#: under both controllers; each stimulus family appears at least once.
CANNED_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        diurnal_scenario(),
        flash_crowd_scenario(),
        tenant_churn_scenario(),
        mix_shift_scenario(),
        node_fault_scenario(),
        data_growth_scenario(),
        cascading_failure_scenario(),
        correlated_flash_scenario(),
        slow_network_scenario(),
        multi_fault_storm_scenario(),
        tpcc_steady_scenario(),
        tpcc_order_rush_scenario(),
        mixed_tenancy_scenario(),
        long_horizon_scenario(),
    )
}


def canned_scenario(name: str) -> ScenarioSpec:
    """Look up a canned scenario by name."""
    try:
        return CANNED_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(CANNED_SCENARIOS)}"
        ) from None
