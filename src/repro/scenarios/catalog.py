"""The canned scenario catalog.

Reduced-scale but qualitatively faithful scenarios, one per stimulus family,
used by the golden-trace regression suite and the example gallery.  Each
runs a 3-node cluster of the weak Section 6.4 VMs for ~10 simulated minutes
with two or three small tenants, so a full catalog sweep under both
controllers stays inside the tier-1 time budget.

The catalog is deliberately data-only: tweaking a scenario means editing a
spec here and regenerating the goldens with ``scripts/regen_goldens.py``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.scenarios.events import (
    DataGrowthBurst,
    DiurnalLoad,
    FlashCrowd,
    MixShift,
    NodeCrash,
    NodeSlowdown,
    TenantArrival,
    TenantDeparture,
)
from repro.scenarios.spec import ScenarioSpec, TenantSpec
from repro.workloads.ycsb.workloads import CORE_WORKLOADS

#: Reduced-scale copies of the paper workloads: fewer client threads and a
#: smaller key space, so three weak VMs are the right starting size.
SMALL_A = replace(CORE_WORKLOADS["A"], threads=25, record_count=200_000, partitions=2)
SMALL_B = replace(CORE_WORKLOADS["B"], threads=25, record_count=200_000, partitions=2)
SMALL_C = replace(CORE_WORKLOADS["C"], threads=25, record_count=200_000, partitions=2)
SMALL_D = replace(
    CORE_WORKLOADS["D"], threads=5, record_count=50_000, partitions=1,
    target_ops_per_second=None,
)
SMALL_E = replace(CORE_WORKLOADS["E"], threads=10, record_count=200_000, partitions=2)


def _base(name: str, tenants, events, minutes: float = 10.0, **overrides) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        tenants=tuple(tenants),
        events=tuple(events),
        duration_minutes=minutes,
        initial_nodes=3,
        max_nodes=6,
        **overrides,
    )


def diurnal_scenario() -> ScenarioSpec:
    """Two tenants on phase-shifted day/night curves (peaks never align)."""
    return _base(
        "diurnal",
        [TenantSpec(SMALL_A, target_ops=2600.0), TenantSpec(SMALL_C, target_ops=3200.0)],
        [
            DiurnalLoad(tenant="A", period_minutes=8.0, amplitude=0.6),
            DiurnalLoad(tenant="C", period_minutes=8.0, amplitude=0.6, phase_minutes=4.0),
        ],
        minutes=12.0,
        description="Sinusoidal load with tenant peaks 180 degrees apart.",
    )


def flash_crowd_scenario() -> ScenarioSpec:
    """A read-mostly tenant gets slashdotted three minutes in."""
    return _base(
        "flash_crowd",
        [TenantSpec(SMALL_A, target_ops=2400.0), TenantSpec(SMALL_C, target_ops=2800.0)],
        [
            FlashCrowd(
                tenant="C", start_minute=3.0, ramp_minutes=1.0,
                hold_minutes=3.0, decay_minutes=1.0, magnitude=3.0,
            ),
        ],
        minutes=10.0,
        description="3x read spike on tenant C: ramp 1m, hold 3m, decay 1m.",
    )


def tenant_churn_scenario() -> ScenarioSpec:
    """A scan-heavy tenant arrives mid-run and leaves again."""
    return _base(
        "tenant_churn",
        [TenantSpec(SMALL_A, target_ops=2400.0), TenantSpec(SMALL_C, target_ops=2800.0)],
        [
            TenantArrival(minute=2.5, workload=SMALL_E, target_ops=260.0),
            TenantDeparture(minute=7.5, tenant="E"),
        ],
        minutes=10.0,
        description="Scan tenant E arrives at minute 2.5 and departs at 7.5.",
    )


def mix_shift_scenario() -> ScenarioSpec:
    """Tenant A morphs from 50/50 read-update into all-update (YCSB-B style)."""
    return _base(
        "mix_shift",
        [TenantSpec(SMALL_A, target_ops=4000.0), TenantSpec(SMALL_C, target_ops=3000.0)],
        [
            MixShift(
                tenant="A", start_minute=2.0, end_minute=6.0,
                to_mix=(("update", 1.0),),
            ),
        ],
        minutes=10.0,
        description="A's op mix interpolates to 100% update over minutes 2-6.",
    )


def node_fault_scenario() -> ScenarioSpec:
    """One node crashes; later another degrades to half speed and recovers."""
    return _base(
        "node_fault",
        [TenantSpec(SMALL_A, target_ops=2200.0), TenantSpec(SMALL_C, target_ops=2600.0)],
        [
            NodeCrash(minute=2.5),
            NodeSlowdown(minute=6.0, factor=0.5, duration_minutes=2.5),
        ],
        minutes=11.0,
        description="Random node crash at 2.5m; straggler from 6m to 8.5m.",
    )


def data_growth_scenario() -> ScenarioSpec:
    """An insert-mostly tenant's dataset quadruples over four minutes."""
    return _base(
        "data_growth",
        [TenantSpec(SMALL_D, target_ops=900.0), TenantSpec(SMALL_C, target_ops=2800.0)],
        [
            DataGrowthBurst(
                tenant="D", start_minute=2.0, duration_minutes=4.0, growth_factor=4.0,
            ),
        ],
        minutes=10.0,
        description="Tenant D's partitions grow 4x between minutes 2 and 6.",
    )


#: Every canned scenario, keyed by name.  The golden-trace suite runs each
#: under both controllers; each stimulus family appears at least once.
CANNED_SCENARIOS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        diurnal_scenario(),
        flash_crowd_scenario(),
        tenant_churn_scenario(),
        mix_shift_scenario(),
        node_fault_scenario(),
        data_growth_scenario(),
    )
}


def canned_scenario(name: str) -> ScenarioSpec:
    """Look up a canned scenario by name."""
    try:
        return CANNED_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(CANNED_SCENARIOS)}"
        ) from None
