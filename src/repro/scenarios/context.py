"""Runtime context compiled scenario actions execute against.

The context owns the pieces a scenario event needs to touch: the simulator,
the IaaS provider (for fault accounting), the fault injector, the per-tenant
baseline throughput targets and the composite load multipliers.  Several
load-shaping events can target the same tenant at once (a flash crowd on top
of a diurnal curve); each contributes one keyed multiplier and the tenant's
live target is ``baseline * product(multipliers)``.

Tenants are :class:`~repro.workloads.tenant.TenantWorkload` implementations
(YCSB, TPC-C, ...); the context resolves tenant names to simulator binding
names through its registry, so events stay workload-agnostic strings.
"""

from __future__ import annotations

from repro.hbase.balancer import RandomBalancer
from repro.iaas.faults import FaultInjector
from repro.iaas.provider import OpenStackProvider
from repro.scenarios.spec import binding_name
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.tenant import TenantWorkload, as_tenant


class ScenarioContext:
    """Mutable run state shared by every compiled scenario action."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        provider: OpenStackProvider | None = None,
        vm_ids: dict[str, str] | None = None,
    ) -> None:
        self.simulator = simulator
        self.provider = provider
        self.rng = simulator.rng
        self.faults = FaultInjector(
            simulator, provider=provider, vm_ids=vm_ids, seed=self.rng
        )
        #: Tenant name -> registered tenant workload (drives binding-name
        #: resolution and native-unit reporting).
        self._tenants: dict[str, TenantWorkload] = {}
        #: Tenant -> baseline target (None = uncapped; modulated as nominal).
        self._baselines: dict[str, float | None] = {}
        #: Tenant -> nominal throughput estimate, the modulation base when
        #: the tenant has no explicit cap.
        self._nominals: dict[str, float] = {}
        #: Tenant -> {event key -> multiplier}.
        self._multipliers: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # tenants
    # ------------------------------------------------------------------ #
    def _binding(self, tenant: str) -> str:
        """Binding name of a tenant, via the registry when it is known.

        Falls back to the YCSB naming convention for tenants the context
        never registered (robustness for hand-driven contexts in tests).
        """
        registered = self._tenants.get(tenant)
        if registered is not None:
            return registered.binding_name
        return binding_name(tenant)

    def register_tenant(self, workload: TenantWorkload) -> None:
        """Record modulation baselines for a tenant already in the simulator."""
        tenant = as_tenant(workload)
        self._tenants[tenant.name] = tenant
        self._baselines[tenant.name] = tenant.target_ops_per_second
        self._nominals[tenant.name] = tenant.nominal_ops_per_second

    def add_tenant(self, workload: TenantWorkload, target_ops: float | None) -> str:
        """A tenant arrives: create its partitions, place them, attach clients.

        Placement uses HBase's random balancer (what a freshly created table
        gets) seeded from the run's RNG; the new partitions start local to
        their nodes, as freshly loaded data would.
        """
        simulator = self.simulator
        configured = as_tenant(workload).with_target(target_ops)
        specs = configured.region_specs()
        online = sorted(node.name for node in simulator.online_nodes())
        placement = RandomBalancer(seed=self.rng).assign(
            [spec.region_id for spec in specs], online
        )
        for spec in specs:
            spec.create_in(
                simulator, configured.binding_name, node=placement[spec.region_id]
            )
        simulator.attach_workload(configured.binding())
        self.register_tenant(configured)
        return f"partitions={len(specs)} nodes={len(online)}"

    def remove_tenant(self, tenant: str) -> str:
        """A tenant departs: detach its clients (its data stays, as in HBase).

        The registry entry stays too: the departed tenant's regions keep
        their binding-name label, so later events that touch its data (a
        growth burst on an orphaned dataset) must still resolve the same
        binding name rather than fall back to the YCSB convention.
        """
        name = self._binding(tenant)
        self.simulator.detach_workload(name)
        self._baselines.pop(tenant, None)
        self._nominals.pop(tenant, None)
        self._multipliers.pop(tenant, None)
        return f"detached {name}"

    # ------------------------------------------------------------------ #
    # load shaping
    # ------------------------------------------------------------------ #
    def set_load_multiplier(self, tenant: str, key: str, multiplier: float) -> str:
        """Set one event's load multiplier and apply the composite target."""
        if tenant not in self._baselines:
            # Tenant departed mid-curve: the remaining steps are no-ops.
            return "tenant gone"
        self._multipliers.setdefault(tenant, {})[key] = multiplier
        return self._apply_target(tenant)

    def clear_load_multiplier(self, tenant: str, key: str) -> str:
        """Remove one event's multiplier (end of a flash crowd, ...)."""
        if tenant not in self._baselines:
            return "tenant gone"
        self._multipliers.get(tenant, {}).pop(key, None)
        return self._apply_target(tenant)

    def _apply_target(self, tenant: str) -> str:
        baseline = self._baselines[tenant]
        multipliers = self._multipliers.get(tenant, {})
        if baseline is None and not multipliers:
            # Every curve cleared: an uncapped tenant returns to uncapped
            # instead of staying pinned at its nominal estimate.
            self.simulator.update_workload(
                self._binding(tenant), target_ops_per_second=None
            )
            return "target=uncapped"
        base = baseline if baseline is not None else self._nominals[tenant]
        product = 1.0
        for value in multipliers.values():
            product *= value
        target = base * product
        self.simulator.update_workload(
            self._binding(tenant), target_ops_per_second=target
        )
        return f"target={target:.1f}"

    def set_mix(self, tenant: str, op_mix: dict[str, float]) -> str:
        """Replace a tenant's operation mix (one mix-shift interpolation step)."""
        if self._binding(tenant) not in self.simulator.bindings:
            return "tenant gone"
        self.simulator.update_workload(self._binding(tenant), op_mix=op_mix)
        mix = " ".join(f"{op}={share:.2f}" for op, share in sorted(op_mix.items()))
        return mix

    def grow_tenant_data(self, tenant: str, factor: float) -> str:
        """Multiply the size of every partition of a tenant (growth burst)."""
        name = self._binding(tenant)
        grown = 0
        for region in self.simulator.regions.values():
            if region.workload == name:
                region.size_bytes *= factor
                grown += 1
        return f"x{factor:.4f} over {grown} partitions"

    # ------------------------------------------------------------------ #
    # faults
    # ------------------------------------------------------------------ #
    def crash_node(self, node: str | None = None) -> str:
        """Crash a node through the fault injector."""
        victim = self.faults.crash_node(node)
        return victim

    def recover_crashed_node(self, node: str | None = None) -> str:
        """Repair a crashed node so it rejoins the cluster.

        Tolerant of the target not being crashed -- anonymous or named (a
        scheduled rejoin may fire after the victim was already repaired, or
        an earlier random crash may have picked a different machine): the
        action becomes a no-op instead of aborting the run.
        """
        crashed = self.faults.crashed_nodes
        if node is None:
            if not crashed:
                return "no crashed node"
        elif node not in crashed:
            return f"{node} not crashed"
        return self.faults.recover_crashed_node(node)

    def slow_node(
        self,
        node: str | None,
        factor: float,
        cpu: float | None = None,
        disk: float | None = None,
        network: float | None = None,
    ) -> str:
        """Degrade a node through the fault injector (per-resource aware)."""
        victim = self.faults.slow_node(node, factor, cpu=cpu, disk=disk, network=network)
        parts = [f"factor={factor}"]
        for label, value in (("cpu", cpu), ("disk", disk), ("network", network)):
            if value is not None:
                parts.append(f"{label}={value}")
        return f"{victim} " + " ".join(parts)

    def recover_node(self, node: str) -> str:
        """Restore a degraded node."""
        self.faults.recover_node(node)
        return node
