"""Periodic metric collection and the snapshot delivered to the Decision Maker.

Every ``period_seconds`` (30 s in the paper) the collector samples the
cluster through a :class:`MetricsSource`; every ``decision_samples`` samples
(6 in the paper, i.e. every 3 minutes) the smoothed observations are bundled
into a :class:`ClusterSnapshot` for the Decision Maker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.monitoring.smoothing import ExponentialSmoother


class MetricsSource(Protocol):
    """Observation interface any cluster backend must provide."""

    def node_names(self) -> list[str]:
        """Names of all nodes, including ones still booting."""

    def online_node_names(self) -> list[str]:
        """Names of nodes currently serving requests."""

    def node_system_metrics(self, name: str) -> dict[str, float]:
        """System metrics for a node: ``cpu``, ``io_wait``, ``memory`` in [0, 1]."""

    def node_locality(self, name: str) -> float:
        """Locality index of a node in [0, 1]."""

    def node_profile(self, name: str) -> str:
        """Name of the configuration profile currently applied to a node."""

    def partition_stats(self) -> dict[str, dict[str, float]]:
        """Per-partition statistics.

        Maps partition id to a dict with cumulative ``reads``, ``writes`` and
        ``scans`` counters, the partition ``size_bytes`` and the hosting
        ``node`` name (or None).
        """


@dataclass
class NodeSample:
    """Smoothed system metrics of one node."""

    name: str
    cpu: float
    io_wait: float
    memory: float
    locality: float
    profile: str
    online: bool = True

    @property
    def load(self) -> float:
        """Scalar load used by threshold checks (max of CPU and I/O wait)."""
        return max(self.cpu, self.io_wait)


@dataclass
class PartitionSample:
    """Request counts of one partition over the monitoring window."""

    partition_id: str
    node: str | None
    reads: float
    writes: float
    scans: float
    size_bytes: float

    @property
    def total_requests(self) -> float:
        """Total requests in the window."""
        return self.reads + self.writes + self.scans


@dataclass
class ClusterSnapshot:
    """Everything the Decision Maker needs for one decision round."""

    timestamp: float
    nodes: dict[str, NodeSample] = field(default_factory=dict)
    partitions: dict[str, PartitionSample] = field(default_factory=dict)

    @property
    def node_count(self) -> int:
        """Number of online nodes in the snapshot."""
        return sum(1 for node in self.nodes.values() if node.online)

    def partitions_on(self, node_name: str) -> list[PartitionSample]:
        """Partitions hosted by ``node_name``."""
        return [p for p in self.partitions.values() if p.node == node_name]


class MetricsCollector:
    """Samples a :class:`MetricsSource` and produces smoothed snapshots."""

    def __init__(
        self,
        source: MetricsSource,
        period_seconds: float = 30.0,
        decision_samples: int = 6,
        smoothing_alpha: float = 0.5,
    ) -> None:
        if period_seconds <= 0:
            raise ValueError("period must be positive")
        if decision_samples <= 0:
            raise ValueError("decision_samples must be positive")
        self.source = source
        self.period_seconds = period_seconds
        self.decision_samples = decision_samples
        self.smoothing_alpha = smoothing_alpha
        self._smoothers: dict[tuple[str, str], ExponentialSmoother] = {}
        self._samples_since_decision = 0
        self._partition_baseline: dict[str, dict[str, float]] = {}
        self._last_sample_time: float | None = None

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def due(self, now: float) -> bool:
        """Whether a new sample should be taken at time ``now``."""
        if self._last_sample_time is None:
            return True
        return now - self._last_sample_time >= self.period_seconds - 1e-9

    def next_due(self, now: float) -> float:
        """Earliest time at which :meth:`due` becomes true.

        ``due(t)`` is false for every ``t`` strictly below the returned
        time, so the harness may skip sampling checks up to (but not
        including) it.
        """
        if self._last_sample_time is None:
            return now
        return self._last_sample_time + self.period_seconds - 1e-9

    def sample(self, now: float) -> None:
        """Take one sample of every node's system metrics."""
        self._last_sample_time = now
        self._samples_since_decision += 1
        online = set(self.source.online_node_names())
        for name in self.source.node_names():
            if name not in online:
                continue
            metrics = self.source.node_system_metrics(name)
            for metric, value in metrics.items():
                self._smoother(name, metric).observe(value)

    def _smoother(self, node: str, metric: str) -> ExponentialSmoother:
        key = (node, metric)
        if key not in self._smoothers:
            self._smoothers[key] = ExponentialSmoother(
                alpha=self.smoothing_alpha, window=self.decision_samples
            )
        return self._smoothers[key]

    # ------------------------------------------------------------------ #
    # decision snapshots
    # ------------------------------------------------------------------ #
    def decision_due(self) -> bool:
        """Whether enough samples accumulated for a Decision Maker round."""
        return self._samples_since_decision >= self.decision_samples

    def snapshot(self, now: float) -> ClusterSnapshot:
        """Build a snapshot from the smoothed observations."""
        online = set(self.source.online_node_names())
        nodes: dict[str, NodeSample] = {}
        for name in self.source.node_names():
            is_online = name in online
            nodes[name] = NodeSample(
                name=name,
                cpu=self._smoother(name, "cpu").value(),
                io_wait=self._smoother(name, "io_wait").value(),
                memory=self._smoother(name, "memory").value(),
                locality=self.source.node_locality(name),
                profile=self.source.node_profile(name),
                online=is_online,
            )
        partitions: dict[str, PartitionSample] = {}
        current = self.source.partition_stats()
        for partition_id, stats in current.items():
            baseline = self._partition_baseline.get(partition_id, {})
            partitions[partition_id] = PartitionSample(
                partition_id=partition_id,
                node=stats.get("node"),
                reads=max(0.0, stats.get("reads", 0.0) - baseline.get("reads", 0.0)),
                writes=max(0.0, stats.get("writes", 0.0) - baseline.get("writes", 0.0)),
                scans=max(0.0, stats.get("scans", 0.0) - baseline.get("scans", 0.0)),
                size_bytes=stats.get("size_bytes", 0.0),
            )
        self._samples_since_decision = 0
        return ClusterSnapshot(timestamp=now, nodes=nodes, partitions=partitions)

    # ------------------------------------------------------------------ #
    # post-action bookkeeping
    # ------------------------------------------------------------------ #
    def reset_after_action(self) -> None:
        """Discard observations taken before the last actuator action.

        The paper stores only the observations recorded after each actuator
        action so decisions are not polluted by the pre-action regime
        (Section 4.1); partition counters are also re-baselined.
        """
        for smoother in self._smoothers.values():
            smoother.reset()
        self._samples_since_decision = 0
        self._partition_baseline = {
            partition_id: dict(stats)
            for partition_id, stats in self.source.partition_stats().items()
        }
