"""Ganglia-like collector for system-level metrics.

The Monitor gathers CPU usage, memory usage and I/O wait of the various
nodes through Ganglia (Section 5).  :class:`GangliaCollector` is a thin,
periodic poller over a :class:`~repro.monitoring.collector.MetricsSource`
that keeps bounded history per node and metric.
"""

from __future__ import annotations

from collections import deque

from repro.monitoring.collector import MetricsSource

#: Metric names exported by the collector.
SYSTEM_METRICS = ("cpu", "io_wait", "memory")


class GangliaCollector:
    """Polls system metrics with a bounded history per node."""

    def __init__(
        self,
        source: MetricsSource,
        period_seconds: float = 30.0,
        history_size: int = 120,
    ) -> None:
        if history_size <= 0:
            raise ValueError("history size must be positive")
        self.source = source
        self.period_seconds = period_seconds
        self.history_size = history_size
        self._history: dict[tuple[str, str], deque[tuple[float, float]]] = {}
        self._last_poll: float | None = None

    def due(self, now: float) -> bool:
        """Whether the poll period elapsed."""
        if self._last_poll is None:
            return True
        return now - self._last_poll >= self.period_seconds - 1e-9

    def poll(self, now: float) -> dict[str, dict[str, float]]:
        """Collect one sample per online node; returns the raw values."""
        self._last_poll = now
        sample: dict[str, dict[str, float]] = {}
        for name in self.source.online_node_names():
            metrics = self.source.node_system_metrics(name)
            sample[name] = {metric: metrics.get(metric, 0.0) for metric in SYSTEM_METRICS}
            for metric, value in sample[name].items():
                self._series(name, metric).append((now, value))
        return sample

    def _series(self, node: str, metric: str) -> deque[tuple[float, float]]:
        key = (node, metric)
        if key not in self._history:
            self._history[key] = deque(maxlen=self.history_size)
        return self._history[key]

    def history(self, node: str, metric: str) -> list[tuple[float, float]]:
        """Recorded (timestamp, value) samples for one node metric."""
        return list(self._history.get((node, metric), []))

    def latest(self, node: str, metric: str, default: float = 0.0) -> float:
        """Most recent value of a node metric."""
        series = self._history.get((node, metric))
        if not series:
            return default
        return series[-1][1]
