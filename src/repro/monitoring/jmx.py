"""JMX-like collector for HBase-specific metrics.

The paper collects, per RegionServer and per Region, the total number of
read, write and scan requests (the scan counter was added to HBase by the
authors), the number of requests per second and the locality index of the
co-located DataNode (Section 5).  :class:`JMXCollector` exposes those
figures from a :class:`~repro.monitoring.collector.MetricsSource`.
"""

from __future__ import annotations

from repro.monitoring.collector import MetricsSource


class JMXCollector:
    """Pulls per-node and per-Region database metrics."""

    def __init__(self, source: MetricsSource) -> None:
        self.source = source
        self._last_totals: dict[str, float] = {}
        self._last_poll_time: float | None = None
        self._requests_per_second: dict[str, float] = {}

    def poll(self, now: float) -> dict[str, dict[str, float]]:
        """Collect per-partition counters and update request-rate estimates."""
        stats = self.source.partition_stats()
        per_node_totals: dict[str, float] = {}
        for partition_stats in stats.values():
            node = partition_stats.get("node")
            if node is None:
                continue
            total = (
                partition_stats.get("reads", 0.0)
                + partition_stats.get("writes", 0.0)
                + partition_stats.get("scans", 0.0)
            )
            per_node_totals[node] = per_node_totals.get(node, 0.0) + total
        if self._last_poll_time is not None and now > self._last_poll_time:
            dt = now - self._last_poll_time
            for node, total in per_node_totals.items():
                delta = total - self._last_totals.get(node, 0.0)
                self._requests_per_second[node] = max(0.0, delta / dt)
        self._last_totals = per_node_totals
        self._last_poll_time = now
        return stats

    def requests_per_second(self, node: str) -> float:
        """Most recent request-rate estimate for a node."""
        return self._requests_per_second.get(node, 0.0)

    def locality_index(self, node: str) -> float:
        """Locality index of a node's co-located DataNode."""
        return self.source.node_locality(node)

    def region_request_breakdown(self) -> dict[str, dict[str, float]]:
        """Per-partition read/write/scan counters."""
        return {
            partition_id: {
                "reads": stats.get("reads", 0.0),
                "writes": stats.get("writes", 0.0),
                "scans": stats.get("scans", 0.0),
            }
            for partition_id, stats in self.source.partition_stats().items()
        }
