"""Monitoring substrate: Ganglia-like system metrics, JMX-like HBase metrics.

The paper's Monitor gathers CPU usage, memory usage and I/O wait through
Ganglia and HBase-specific metrics (read/write/scan request counts per node
and per Region, plus the locality index) through JMX, then applies
exponential smoothing before handing observations to the Decision Maker
(Sections 4.1 and 5).  This package provides those collectors against any
cluster backend.
"""

from repro.monitoring.collector import ClusterSnapshot, MetricsCollector, NodeSample, PartitionSample
from repro.monitoring.ganglia import GangliaCollector
from repro.monitoring.jmx import JMXCollector
from repro.monitoring.smoothing import ExponentialSmoother

__all__ = [
    "ClusterSnapshot",
    "MetricsCollector",
    "NodeSample",
    "PartitionSample",
    "GangliaCollector",
    "JMXCollector",
    "ExponentialSmoother",
]
