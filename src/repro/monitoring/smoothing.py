"""Exponential smoothing of metric observations.

To avoid reacting to temporary load spikes, MeT smooths the observations in
each monitoring window so that the last observation weighs the most and
importance decreases exponentially towards the first one (Section 4.1,
citing Brown's exponential smoothing).  The monitor also discards
observations taken before the last actuator action.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExponentialSmoother:
    """Exponentially weighted smoothing over a bounded observation window.

    Attributes:
        alpha: smoothing factor in (0, 1]; higher values weigh recent
            observations more.
        window: maximum number of observations retained.
    """

    alpha: float = 0.5
    window: int = 6
    _observations: list[float] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {self.alpha!r}")
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window!r}")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._observations.append(float(value))
        if len(self._observations) > self.window:
            self._observations = self._observations[-self.window :]

    def reset(self) -> None:
        """Discard all observations (called after each actuator action)."""
        self._observations.clear()

    @property
    def count(self) -> int:
        """Number of retained observations."""
        return len(self._observations)

    @property
    def is_warm(self) -> bool:
        """Whether the window is full (enough samples to decide on)."""
        return len(self._observations) >= self.window

    def value(self, default: float = 0.0) -> float:
        """Smoothed value; the most recent observation weighs the most."""
        if not self._observations:
            return default
        smoothed = self._observations[0]
        for observation in self._observations[1:]:
            smoothed = self.alpha * observation + (1.0 - self.alpha) * smoothed
        return smoothed

    def raw(self) -> list[float]:
        """The retained observations, oldest first."""
        return list(self._observations)


def smooth_series(values: list[float], alpha: float = 0.5) -> float:
    """Smooth a list of observations (oldest first) in one call."""
    smoother = ExponentialSmoother(alpha=alpha, window=max(len(values), 1))
    for value in values:
        smoother.observe(value)
    return smoother.value()
