"""The NameNode: file namespace, block placement and locality accounting."""

from __future__ import annotations

import itertools
import random

from repro.hdfs.block import DEFAULT_BLOCK_SIZE, Block, BlockFile
from repro.hdfs.datanode import DataNode, DataNodeFullError


class HDFSError(RuntimeError):
    """Raised for namespace errors (missing files, no datanodes, ...)."""


class NameNode:
    """Tracks files, blocks and replica locations.

    Placement policy mirrors HDFS: the first replica goes to the *preferred*
    (writing) DataNode when one is given, the remaining replicas go to
    distinct randomly chosen DataNodes.
    """

    def __init__(
        self,
        replication: int = 2,
        block_size: int = DEFAULT_BLOCK_SIZE,
        seed: int | None = None,
    ) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication!r}")
        self.replication = replication
        self.block_size = block_size
        self.datanodes: dict[str, DataNode] = {}
        self.files: dict[str, BlockFile] = {}
        self._rng = random.Random(seed)
        self._block_counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # datanode management
    # ------------------------------------------------------------------ #
    def register_datanode(self, name: str, capacity_bytes: int | None = None) -> DataNode:
        """Register a DataNode (idempotent)."""
        if name not in self.datanodes:
            kwargs = {} if capacity_bytes is None else {"capacity_bytes": capacity_bytes}
            self.datanodes[name] = DataNode(name=name, **kwargs)
        return self.datanodes[name]

    def decommission_datanode(self, name: str) -> None:
        """Remove a DataNode and re-replicate the blocks it held."""
        node = self.datanodes.pop(name, None)
        if node is None:
            return
        for file in self.files.values():
            for block in file.blocks:
                if name in block.replicas:
                    block.replicas.remove(name)
                    self._add_replicas(block, needed=1, exclude=set(block.replicas))

    # ------------------------------------------------------------------ #
    # file operations
    # ------------------------------------------------------------------ #
    def create_file(
        self, path: str, size_bytes: int, preferred_datanode: str | None = None
    ) -> BlockFile:
        """Create a file of ``size_bytes``, placing replicas per policy."""
        if path in self.files:
            raise HDFSError(f"file already exists: {path!r}")
        if not self.datanodes:
            raise HDFSError("no datanodes registered")
        file = BlockFile(path=path)
        remaining = max(size_bytes, 1)
        while remaining > 0:
            block_bytes = min(remaining, self.block_size)
            block = Block(block_id=f"blk_{next(self._block_counter)}", size_bytes=block_bytes)
            exclude: set[str] = set()
            if preferred_datanode is not None and preferred_datanode in self.datanodes:
                self._store_replica(block, preferred_datanode)
                exclude.add(preferred_datanode)
            self._add_replicas(
                block, needed=self.replication - len(block.replicas), exclude=exclude
            )
            file.blocks.append(block)
            remaining -= block_bytes
        self.files[path] = file
        return file

    def delete_file(self, path: str) -> None:
        """Delete a file and free its replicas."""
        file = self.files.pop(path, None)
        if file is None:
            return
        for block in file.blocks:
            for replica in block.replicas:
                datanode = self.datanodes.get(replica)
                if datanode is not None:
                    datanode.evict(block.block_id, block.size_bytes)

    def get_file(self, path: str) -> BlockFile:
        """Return the file metadata for ``path``."""
        try:
            return self.files[path]
        except KeyError:
            raise HDFSError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""
        return path in self.files

    # ------------------------------------------------------------------ #
    # locality
    # ------------------------------------------------------------------ #
    def locality_index(self, paths: list[str], datanode: str) -> float:
        """Fraction of the bytes of ``paths`` stored locally on ``datanode``."""
        total = 0
        local = 0
        for path in paths:
            file = self.files.get(path)
            if file is None:
                continue
            total += file.size_bytes
            local += file.local_bytes(datanode)
        if total == 0:
            return 1.0
        return local / total

    def is_local(self, path: str, datanode: str) -> bool:
        """Whether every block of ``path`` has a replica on ``datanode``."""
        file = self.get_file(path)
        return all(block.is_replica(datanode) for block in file.blocks)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _store_replica(self, block: Block, datanode_name: str) -> bool:
        datanode = self.datanodes[datanode_name]
        try:
            datanode.store(block.block_id, block.size_bytes)
        except DataNodeFullError:
            return False
        block.replicas.append(datanode_name)
        return True

    def _add_replicas(self, block: Block, needed: int, exclude: set[str]) -> None:
        candidates = [name for name in self.datanodes if name not in exclude]
        self._rng.shuffle(candidates)
        for name in candidates:
            if needed <= 0:
                break
            if self._store_replica(block, name):
                needed -= 1
