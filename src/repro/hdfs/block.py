"""Blocks and files as tracked by the NameNode."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default HDFS block size (64 MB historically, configurable).
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


@dataclass
class Block:
    """One replicated block of a file."""

    block_id: str
    size_bytes: int
    replicas: list[str] = field(default_factory=list)

    def is_replica(self, datanode: str) -> bool:
        """Whether ``datanode`` stores a replica of this block."""
        return datanode in self.replicas


@dataclass
class BlockFile:
    """A file split into blocks."""

    path: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """Total file size."""
        return sum(block.size_bytes for block in self.blocks)

    def local_bytes(self, datanode: str) -> int:
        """Bytes of this file that have a replica on ``datanode``."""
        return sum(
            block.size_bytes for block in self.blocks if block.is_replica(datanode)
        )
