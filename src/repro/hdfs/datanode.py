"""DataNodes: storage capacity and block inventory."""

from __future__ import annotations

from dataclasses import dataclass, field


class DataNodeFullError(RuntimeError):
    """Raised when a DataNode cannot store another replica."""


@dataclass
class DataNode:
    """One HDFS DataNode, usually co-located with a RegionServer."""

    name: str
    capacity_bytes: int = 500 * 1024 * 1024 * 1024
    used_bytes: int = 0
    block_ids: set[str] = field(default_factory=set)

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.capacity_bytes - self.used_bytes

    def store(self, block_id: str, size_bytes: int) -> None:
        """Store a replica of ``block_id``."""
        if block_id in self.block_ids:
            return
        if size_bytes > self.free_bytes:
            raise DataNodeFullError(
                f"datanode {self.name} cannot store {size_bytes} bytes "
                f"(free: {self.free_bytes})"
            )
        self.block_ids.add(block_id)
        self.used_bytes += size_bytes

    def evict(self, block_id: str, size_bytes: int) -> None:
        """Drop a replica of ``block_id`` if present."""
        if block_id in self.block_ids:
            self.block_ids.remove(block_id)
            self.used_bytes = max(0, self.used_bytes - size_bytes)
