"""HDFS-like block storage substrate.

HBase stores each Region as appendable files in HDFS (Section 2.1).  This
package provides the pieces the functional mini-HBase needs: a NameNode that
tracks files, blocks and replica placement, DataNodes with finite capacity,
and the locality accounting that MeT's monitor reads (the locality index of a
RegionServer is the fraction of its data stored on the co-located DataNode).
"""

from repro.hdfs.block import Block, BlockFile
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode

__all__ = ["Block", "BlockFile", "DataNode", "NameNode"]
