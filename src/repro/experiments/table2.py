"""Table 2 -- the Section 6.3 PyTPCC (versatility) experiment.

A 6-RegionServer cluster is loaded with a 30-warehouse TPC-C database
(~15 GB) and driven by 300 clients for 45 minutes under three settings:

* (i)   Manual-Homogeneous: the best hand-tuned homogeneous configuration
        (50% block cache, 15% memstore, 32 KB blocks);
* (ii)  MeT, started 4 minutes into the run on top of setting (i);
* (iii) the configuration MeT converged to, applied from the start (the
        upper bound without reconfiguration overhead).

Paper results (average tpmC): 25 380 / 31 020 / 33 720 -- the heterogeneous
setting improves the homogeneous one by ~33%, and the reconfiguration
overhead costs ~8%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import MeT
from repro.core.parameters import MeTParameters
from repro.core.profiles import NODE_PROFILES
from repro.experiments.harness import ExperimentHarness, make_backend
from repro.experiments.reporting import format_table
from repro.hbase.config import TPCC_HOMOGENEOUS
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.tpcc.driver import build_tpcc_scenario, tpmc_from_ops_rate
from repro.workloads.tpcc.schema import TPCCConfig


@dataclass
class Table2Result:
    """Average throughput (tpmC) of the three settings."""

    manual_homogeneous_tpmc: float
    met_with_overhead_tpmc: float
    met_without_overhead_tpmc: float
    minutes: float
    met_profiles: dict[str, str]

    @property
    def heterogeneous_improvement(self) -> float:
        """Setting (iii) over setting (i) (paper: ~1.33x)."""
        if self.manual_homogeneous_tpmc <= 0:
            return float("inf")
        return self.met_without_overhead_tpmc / self.manual_homogeneous_tpmc

    @property
    def reconfiguration_overhead(self) -> float:
        """Relative cost of reconfiguring during the run (paper: ~8%)."""
        if self.met_without_overhead_tpmc <= 0:
            return 0.0
        return 1.0 - self.met_with_overhead_tpmc / self.met_without_overhead_tpmc


def _new_cluster(nodes: int, tpcc_config: TPCCConfig) -> tuple[ClusterSimulator, list[str]]:
    simulator = ClusterSimulator(default_config=TPCC_HOMOGENEOUS)
    node_names = [simulator.add_node() for _ in range(nodes)]
    build_tpcc_scenario(simulator, tpcc_config)
    for partition_id, node in zip(tpcc_config.partition_ids(), node_names):
        region = simulator.regions[partition_id]
        region.node = node
        region.block_homes = {node}
    return simulator, node_names


def _average_tpmc(simulator: ClusterSimulator, harness: ExperimentHarness, minutes: float) -> float:
    ops_per_second = simulator.total_ops / (minutes * 60.0)
    return tpmc_from_ops_rate(ops_per_second)


def run_table2(
    minutes: float = 45.0,
    nodes: int = 6,
    met_start_minute: float = 4.0,
    warehouses: int = 30,
) -> Table2Result:
    """Run the three PyTPCC settings and report average tpmC."""
    tpcc_config = TPCCConfig(warehouses=warehouses, warehouses_per_node=warehouses // nodes)

    # (i) Manual-Homogeneous baseline.
    simulator, _ = _new_cluster(nodes, tpcc_config)
    harness = ExperimentHarness(simulator, name="manual-homogeneous")
    harness.run_for(minutes * 60.0)
    homogeneous_tpmc = _average_tpmc(simulator, harness, minutes)

    # (ii) MeT started during the run.
    simulator, _ = _new_cluster(nodes, tpcc_config)
    backend = make_backend(simulator)
    parameters = MeTParameters(max_nodes=nodes, min_nodes=nodes, allow_remove=False)
    met = MeT(backend, parameters, enabled=False)
    harness = ExperimentHarness(simulator, name="met")
    harness.add_controller(met)
    harness.run_for(met_start_minute * 60.0)
    met.start()
    harness.run_for((minutes - met_start_minute) * 60.0)
    met_tpmc = _average_tpmc(simulator, harness, minutes)
    met_profiles = {
        name: node.profile_name for name, node in sorted(simulator.nodes.items())
    }
    met_assignment = simulator.assignment()

    # (iii) MeT's suggested configuration applied from the start.
    simulator, _ = _new_cluster(nodes, tpcc_config)
    for name, profile in met_profiles.items():
        if name in simulator.nodes and profile in NODE_PROFILES:
            simulator.nodes[name].config = NODE_PROFILES[profile].config
            simulator.nodes[name].profile_name = profile
    for partition_id, node in met_assignment.items():
        if node in simulator.nodes and partition_id in simulator.regions:
            simulator.regions[partition_id].node = node
            simulator.regions[partition_id].block_homes = {node}
    # The node.config writes above bypass reconfigure_node (no restart is
    # wanted here: this arm models the configuration applied from t=0), so
    # the cached fixed-point solution must be dropped by hand.  The region
    # writes are hooked, but config is not.  (lint rule D4)
    simulator.invalidate_solution()
    harness = ExperimentHarness(simulator, name="met-no-overhead")
    harness.run_for(minutes * 60.0)
    upper_tpmc = _average_tpmc(simulator, harness, minutes)

    return Table2Result(
        manual_homogeneous_tpmc=homogeneous_tpmc,
        met_with_overhead_tpmc=met_tpmc,
        met_without_overhead_tpmc=upper_tpmc,
        minutes=minutes,
        met_profiles=met_profiles,
    )


def report(result: Table2Result) -> str:
    """Format the Table 2 rows."""
    headers = ["Setting", "Throughput (tpmC)", "Paper (tpmC)"]
    rows = [
        ["i) Manual-Homogeneous", f"{result.manual_homogeneous_tpmc:,.0f}", "25,380"],
        ["ii) MeT with reconfiguration overhead", f"{result.met_with_overhead_tpmc:,.0f}", "31,020"],
        ["iii) MeT w/o reconfiguration overhead", f"{result.met_without_overhead_tpmc:,.0f}", "33,720"],
    ]
    summary = [
        "",
        f"heterogeneous improvement over homogeneous: {result.heterogeneous_improvement:.2f}x (paper: ~1.33x)",
        f"reconfiguration overhead: {result.reconfiguration_overhead:.1%} (paper: ~8%)",
        f"MeT node profiles: {result.met_profiles}",
    ]
    return format_table(headers, rows) + "\n" + "\n".join(summary)


def main() -> None:
    """Regenerate Table 2 and print it."""
    print(report(run_table2()))


if __name__ == "__main__":
    main()
