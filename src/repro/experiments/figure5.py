"""Figure 5 -- cumulative throughput of MeT vs tiramola (phase 1 of §6.4).

The first phase of the elasticity experiment: all YCSB tenants are active
and overload the initial 6-node cluster.  The paper reports the cumulative
number of operations completed over the first ~33 minutes: MeT completes
roughly 706 000 more operations than tiramola, a ~31% increase, despite
paying the initial reconfiguration cost between minutes 4 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.harness import StrategyRun
from repro.experiments.reporting import format_table


@dataclass
class Figure5Result:
    """Cumulative-operations series of both systems over phase 1."""

    met: StrategyRun
    tiramola: StrategyRun
    minutes: float

    @property
    def met_total_operations(self) -> float:
        """Operations MeT completed by the end of the phase."""
        return self.met.operations_until(self.minutes)

    @property
    def tiramola_total_operations(self) -> float:
        """Operations tiramola completed by the end of the phase."""
        return self.tiramola.operations_until(self.minutes)

    @property
    def improvement(self) -> float:
        """MeT over tiramola cumulative operations (paper: ~1.31x)."""
        if self.tiramola_total_operations <= 0:
            return float("inf")
        return self.met_total_operations / self.tiramola_total_operations

    @property
    def extra_operations(self) -> float:
        """Additional operations completed by MeT (paper: ~706 000)."""
        return self.met_total_operations - self.tiramola_total_operations


def run_figure5(
    minutes: float = 33.0,
    initial_nodes: int = 6,
    max_nodes: int = 11,
    seed: int = 0,
    from_figure6: Figure6Result | None = None,
) -> Figure5Result:
    """Run (or reuse) the elasticity experiment's first phase."""
    if from_figure6 is None:
        from_figure6 = run_figure6(
            minutes=minutes,
            initial_nodes=initial_nodes,
            max_nodes=max_nodes,
            seed=seed,
            with_phase2=False,
        )
    return Figure5Result(
        met=from_figure6.met,
        tiramola=from_figure6.tiramola,
        minutes=min(minutes, from_figure6.minutes),
    )


def report(result: Figure5Result) -> str:
    """Format the cumulative-operations series of Figure 5."""
    headers = ["minute", "MeT cumulative ops", "tiramola cumulative ops"]
    tiramola_by_minute = {round(p.minute): p for p in result.tiramola.series}
    rows = []
    for point in result.met.series:
        minute = round(point.minute)
        if minute > result.minutes:
            break
        other = tiramola_by_minute.get(minute)
        rows.append(
            [
                f"{minute:d}",
                f"{point.cumulative_ops:,.0f}",
                f"{other.cumulative_ops:,.0f}" if other else "-",
            ]
        )
    summary = [
        "",
        f"MeT completed {result.extra_operations:,.0f} more operations "
        f"({result.improvement:.2f}x, paper: ~706,000 / ~1.31x)",
    ]
    return format_table(headers, rows) + "\n" + "\n".join(summary)


def main() -> None:
    """Regenerate Figure 5 and print it."""
    print(report(run_figure5()))


if __name__ == "__main__":
    main()
