"""Experiment harness regenerating every table and figure of the evaluation.

Each module exposes a ``run_*`` function returning a result object and a
``main()`` that prints the same rows/series the paper reports:

* :mod:`repro.experiments.figure1` -- the Section 3.4 motivation experiment
  (Random-Homogeneous vs Manual-Homogeneous vs Manual-Heterogeneous).
* :mod:`repro.experiments.figure4` -- the Section 6.2 convergence experiment.
* :mod:`repro.experiments.table2` -- the Section 6.3 PyTPCC experiment.
* :mod:`repro.experiments.figure5` -- cumulative throughput, MeT vs tiramola.
* :mod:`repro.experiments.figure6` -- the Section 6.4 elasticity experiment.
"""

from repro.experiments.harness import ExperimentHarness, StrategyRun
from repro.experiments.figure1 import Figure1Result, run_figure1
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.figure5 import Figure5Result, run_figure5
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.table2 import Table2Result, run_table2

__all__ = [
    "ExperimentHarness",
    "StrategyRun",
    "Figure1Result",
    "run_figure1",
    "Figure4Result",
    "run_figure4",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "run_figure6",
    "Table2Result",
    "run_table2",
]
