"""Shared experiment machinery.

The harness glues together a :class:`ClusterSimulator`, the multi-tenant
YCSB (or TPC-C) scenario, an optional placement plan and an optional
controller (MeT or tiramola), and runs the simulation while recording the
series the figures need: per-minute throughput, cumulative operations and
cluster size.

:meth:`ExperimentHarness.run_for` optionally consumes an *event schedule*
(see :mod:`repro.scenarios.schedule`): timed actions -- load-curve steps,
tenant churn, fault injection -- fired against the simulator between ticks.
Fired events that carry an annotation are recorded in the run, so a trace
shows *why* the series changed shape at a given minute.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.interfaces import ClusterBackend
from repro.elasticity.strategies import PlacementPlan
from repro.simulation.cluster import KERNEL_EVENT, ClusterSimulator


@dataclass
class TimeSeriesPoint:
    """One sample of the run's observable state."""

    minute: float
    throughput: float
    cumulative_ops: float
    nodes: int


@dataclass
class TenantSeriesPoint:
    """One per-tenant quality sample: what *this* tenant experienced.

    ``throughput`` and ``latency_ms`` are the tenant's tick-level series
    (recorded every tick into the simulator's
    :class:`~repro.simulation.metrics.MetricsRegistry`) averaged over the
    sampling window ending at ``minute``, so a sample reflects the whole
    window rather than the instant the sampler happened to fire.  The SLA
    layer (:mod:`repro.sla`) judges SLO compliance against these points.

    ``p95_ms``/``p99_ms`` are tail quantiles of the *exact merge* of the
    window's per-tick latency distribution summaries -- not means of
    per-tick percentiles -- so a one-tick latency spike inside the window
    surfaces at the tail even when the window mean hides it.  ``None`` when
    the simulator recorded no distributions
    (``record_latency_distributions=False`` or pre-distribution runs).
    """

    minute: float
    throughput: float
    latency_ms: float
    p95_ms: float | None = None
    p99_ms: float | None = None


@dataclass
class RunAnnotation:
    """A scenario event that fired during the run, for traces and plots."""

    minute: float
    label: str
    detail: str = ""


@dataclass
class StrategyRun:
    """Recorded outcome of one experiment run."""

    name: str
    series: list[TimeSeriesPoint] = field(default_factory=list)
    #: Per-tenant quality series keyed by binding name (e.g. ``workload-A``);
    #: tenants arriving mid-run start their series at their first sample.
    tenant_series: dict[str, list[TenantSeriesPoint]] = field(default_factory=dict)
    per_workload_throughput: dict[str, float] = field(default_factory=dict)
    annotations: list[RunAnnotation] = field(default_factory=list)
    total_operations: float = 0.0
    final_nodes: int = 0
    machine_minutes: float = 0.0
    #: Whether quiescence fast-forwarding was active on the (latest) run
    #: and, when it was not, why -- an empty reason with ``skip_active``
    #: False simply means the run never went through ``run_for``.  Campaign
    #: sweeps assert on these instead of silently losing the event-kernel
    #: speedup to a controller that forgot to implement ``next_wakeup``.
    skip_active: bool = False
    skip_disabled_reason: str = ""
    #: Whole-run latency distribution per tenant (exact merge of every tick's
    #: summary), keyed like :attr:`tenant_series`.  Captured at finalise so
    #: traces can serialise distributions after the simulator is disposed.
    tenant_distributions: dict[str, object] = field(default_factory=dict)

    @property
    def mean_throughput(self) -> float:
        """Mean of the recorded per-minute throughput samples."""
        if not self.series:
            return 0.0
        return sum(point.throughput for point in self.series) / len(self.series)

    @property
    def peak_throughput(self) -> float:
        """Maximum recorded throughput."""
        return max((point.throughput for point in self.series), default=0.0)

    def throughput_between(self, start_minute: float, end_minute: float) -> float:
        """Mean throughput between two minutes of the run."""
        window = [
            point.throughput
            for point in self.series
            if start_minute <= point.minute <= end_minute
        ]
        if not window:
            return 0.0
        return sum(window) / len(window)

    def operations_until(self, minute: float) -> float:
        """Cumulative operations completed by ``minute``."""
        eligible = [p.cumulative_ops for p in self.series if p.minute <= minute]
        return eligible[-1] if eligible else 0.0

    def node_bounds(self) -> tuple[int, int]:
        """Smallest and largest observed cluster size (scenario assertions
        check it against a declared envelope)."""
        if not self.series:
            return self.final_nodes, self.final_nodes
        counts = [point.nodes for point in self.series]
        return min(counts), max(counts)

    def tenant_peak_latency(self, tenant: str) -> float:
        """Largest recorded latency sample of one tenant (0.0 when absent)."""
        points = self.tenant_series.get(tenant, [])
        return max((point.latency_ms for point in points), default=0.0)

    def tenant_peak_percentile(self, tenant: str, percentile: int) -> float:
        """Largest recorded p95/p99 sample of one tenant (0.0 when absent)."""
        attr = _percentile_attr(percentile)
        points = self.tenant_series.get(tenant, [])
        return max(
            (getattr(point, attr) for point in points if getattr(point, attr) is not None),
            default=0.0,
        )

    def peak_percentile(self, percentile: int) -> float:
        """Worst recorded p95/p99 sample across every tenant (0.0 when absent)."""
        attr = _percentile_attr(percentile)
        return max(
            (
                getattr(point, attr)
                for points in self.tenant_series.values()
                for point in points
                if getattr(point, attr) is not None
            ),
            default=0.0,
        )

    def tenant_mean_latency(self, tenant: str) -> float:
        """Mean recorded latency of one tenant (0.0 when absent)."""
        points = self.tenant_series.get(tenant, [])
        if not points:
            return 0.0
        return sum(point.latency_ms for point in points) / len(points)


def _percentile_attr(percentile: int) -> str:
    """The TenantSeriesPoint field carrying a recorded percentile."""
    if percentile == 95:
        return "p95_ms"
    if percentile == 99:
        return "p99_ms"
    raise ValueError(f"only p95/p99 are recorded per sample, got p{percentile}")


def apply_placement(simulator: ClusterSimulator, plan: PlacementPlan) -> None:
    """Apply a placement plan: node configurations and region assignment.

    Regions start fully local to the node they are placed on (the paper's
    elasticity experiments start from 100% data locality).
    """
    for node_name, config in plan.node_configs.items():
        node = simulator.nodes[node_name]
        node.config = config.validate()
        node.profile_name = plan.node_profiles.get(node_name, "default")
    for partition_id, node_name in plan.assignment.items():
        region = simulator.regions[partition_id]
        region.node = node_name
        region.block_homes = {node_name}
    # Direct node.config writes above bypass the simulator's mutator hooks;
    # tell the event kernel its cached fixed point is stale.
    simulator.invalidate_solution()


class ExperimentHarness:
    """Runs a simulator with optional controllers, recording time series."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        name: str = "run",
        sample_every_seconds: float = 60.0,
        record_tenant_series: bool = True,
    ) -> None:
        self.simulator = simulator
        self.run = StrategyRun(name=name)
        self.sample_every_seconds = sample_every_seconds
        #: Whether per-tenant latency/throughput series are sampled into the
        #: run.  On by default; pure-throughput benchmarks that only want the
        #: cluster series can turn it off (see PERFORMANCE.md).
        self.record_tenant_series = record_tenant_series
        self._controllers: list = []
        self._machine_seconds = 0.0
        self._next_sample = 0.0
        self._last_sample_time = 0.0

    def add_controller(self, controller) -> None:
        """Register a controller whose ``step(now)`` is called every tick."""
        self._controllers.append(controller)

    def run_for(self, seconds: float, schedule=None) -> StrategyRun:
        """Advance the simulation by ``seconds``, sampling along the way.

        When ``schedule`` (an :class:`~repro.scenarios.schedule.EventSchedule`)
        is given, actions due at or before the current simulated time fire
        *before* each tick, and annotated actions are recorded in
        :attr:`StrategyRun.annotations`.

        On the event kernel (``ClusterSimulator(kernel="event")``), and when
        every registered controller exposes ``next_wakeup(now)``, quiescent
        stretches are *fast-forwarded*: ticks that would fire no scheduled
        action, wake no controller and cross no sampling boundary are
        covered by one :meth:`ClusterSimulator.macro_tick` instead of being
        simulated one by one.  The recorded series, samples, annotations
        and machine-minutes are identical either way -- skipping is bounded
        so that every tick with observable side effects runs for real.
        """
        simulator = self.simulator
        controllers = self._controllers
        tick_seconds = simulator.clock.tick_seconds
        can_skip, disable_reason = self._skip_eligibility()
        self.run.skip_active = can_skip
        self.run.skip_disabled_reason = disable_reason
        simulator.stats.extra["skip_disabled_reason"] = disable_reason
        remaining = seconds
        while remaining > 1e-9:
            if schedule is not None:
                self._fire_due(schedule)
            if can_skip and remaining >= 2.0 * tick_seconds - 1e-9:
                skip = self._plan_skip(schedule, tick_seconds, remaining)
                if skip >= 2:
                    simulator.macro_tick(skip)
                    now = simulator.clock.now
                    span = tick_seconds * skip
                    # Quiescence guarantees no node state transition inside
                    # the span, so the online count is constant across it.
                    self._machine_seconds += simulator.online_node_count() * span
                    if now + 1e-9 >= self._next_sample:
                        self._sample(now)
                        self._next_sample = now + self.sample_every_seconds
                    remaining -= span
                    continue
            step = tick_seconds if tick_seconds < remaining else remaining
            simulator.tick(step)
            now = simulator.clock.now
            for controller in controllers:
                controller.step(now)
            # Counting online nodes avoids allocating a node list every tick.
            self._machine_seconds += simulator.online_node_count() * step
            if now + 1e-9 >= self._next_sample:
                self._sample(now)
                self._next_sample = now + self.sample_every_seconds
            remaining -= step
        if schedule is not None:
            # Events scheduled exactly at the end of the window still fire,
            # so chained run_for calls see each event exactly once.
            self._fire_due(schedule)
        self._finalise()
        return self.run

    def _skip_eligibility(self) -> tuple[bool, str]:
        """Whether quiescent fast-forwarding may engage, and if not, why.

        Fast-forward needs every controller to declare when it next acts; an
        unknown controller must be stepped every tick, so its presence
        disables skipping entirely (conservative default).  That silence
        would otherwise cost a sweep the whole event-kernel speedup, so the
        reason is recorded on the run and on ``KernelStats.extra`` and an
        opaque controller draws a one-line warning.
        """
        simulator = self.simulator
        if simulator.kernel != KERNEL_EVENT:
            return False, f"kernel {simulator.kernel!r} has no fast-forward path"
        opaque = sorted(
            {
                type(controller).__name__
                for controller in self._controllers
                if not hasattr(controller, "next_wakeup")
            }
        )
        if opaque:
            reason = (
                "controllers without next_wakeup() force tick-by-tick "
                "stepping: " + ", ".join(opaque)
            )
            warnings.warn(
                f"{self.run.name}: quiescence skipping disabled -- {reason}",
                RuntimeWarning,
                stacklevel=3,
            )
            return False, reason
        return True, ""

    def _plan_skip(self, schedule, tick_seconds: float, remaining: float) -> int:
        """How many upcoming whole ticks may be fast-forwarded in one batch.

        A batch of ``k`` ticks starting at ``clock.now`` is equivalent to
        ``k`` loop iterations iff every skipped iteration is observably
        inert.  Three external bounds apply on top of the simulator's own
        quiescence check (:meth:`ClusterSimulator.quiescent_ticks`):

        * *schedule*: the batch may end exactly at the next action's time
          (the action then fires on the following iteration, as it would
          tick-by-tick), but no skipped pre-tick fire check may be due;
        * *controllers*: every skipped ``step(t)`` call must satisfy
          ``t < next_wakeup`` -- i.e. be a guaranteed no-op;
        * *sampling*: the batch may end exactly on the sampling boundary
          (the caller runs the sample check after the batch) but must not
          cross it, so window means see the same series either way.
        """
        simulator = self.simulator
        now = simulator.clock.now
        dt = tick_seconds
        budget = int((remaining + 1e-9) // dt)
        # Inclusive bound: the batch may end AT this time but not beyond.
        end_bound = self._next_sample
        if schedule is not None:
            next_action = schedule.next_time()
            if next_action is not None and next_action < end_bound:
                end_bound = next_action
        k = int((end_bound - now + 1e-9) // dt)
        if k < budget:
            budget = k
        for controller in self._controllers:
            wake = controller.next_wakeup(now)
            if wake == float("inf"):
                continue
            # Exclusive bound: the batch must end strictly before the wake.
            k = int((wake - now - 1e-9) // dt)
            if k < budget:
                budget = k
        if budget < 2:
            return 0
        return simulator.quiescent_ticks(budget)

    def _fire_due(self, schedule) -> None:
        now = self.simulator.clock.now
        for fired in schedule.fire_due(now):
            if fired.annotate:
                # Record the *scheduled* time: when ticks do not divide event
                # times, the firing tick lags the event by up to one tick.
                self.run.annotations.append(
                    RunAnnotation(
                        minute=fired.time_seconds / 60.0,
                        label=fired.label,
                        detail=fired.detail,
                    )
                )

    def _sample(self, now: float) -> None:
        self.run.series.append(
            TimeSeriesPoint(
                minute=now / 60.0,
                throughput=self.simulator.cluster_throughput(),
                cumulative_ops=self.simulator.total_ops,
                nodes=self.simulator.online_node_count(),
            )
        )
        if self.record_tenant_series:
            self._sample_tenants(now)
        self._last_sample_time = now

    def _sample_tenants(self, now: float) -> None:
        """One TenantSeriesPoint per live tenant: window means of the
        tick-level latency/throughput series the simulator records."""
        metrics = self.simulator.metrics
        minute = now / 60.0
        start = self._last_sample_time
        tenant_series = self.run.tenant_series
        for name in self.simulator.bindings:
            entity = f"workload:{name}"
            throughput = metrics.series(entity, "throughput").mean_between(start, now)
            latency = metrics.series(entity, "latency_ms").mean_between(start, now)
            p95 = p99 = None
            distribution = metrics.distribution(entity, "latency_ms")
            if distribution is not None:
                merged = distribution.merged_between(start, now)
                if merged is not None:
                    p95 = merged.quantile(0.95)
                    p99 = merged.quantile(0.99)
            tenant_series.setdefault(name, []).append(
                TenantSeriesPoint(
                    minute=minute,
                    throughput=throughput,
                    latency_ms=latency,
                    p95_ms=p95,
                    p99_ms=p99,
                )
            )

    def _finalise(self) -> None:
        self.run.total_operations = self.simulator.total_ops
        self.run.final_nodes = len(self.simulator.online_nodes())
        self.run.machine_minutes = self._machine_seconds / 60.0
        self.run.per_workload_throughput = {
            name: self.simulator.binding_throughput(name)
            for name in self.simulator.bindings
        }
        # Whole-run distributions survive simulator disposal on the run
        # itself; merging is exact, so chained run_for calls can recompute
        # from scratch without drift.  Departed tenants keep the entries
        # recorded while they ran (the registry series outlives the binding).
        metrics = self.simulator.metrics
        distributions = {}
        for name in self.run.tenant_series:
            series = metrics.distribution(f"workload:{name}", "latency_ms")
            if series is not None and len(series):
                distributions[name] = series.merged()
        self.run.tenant_distributions = distributions


def make_backend(simulator: ClusterSimulator, provider=None) -> ClusterBackend:
    """Wrap a simulator as the backend controllers expect."""
    from repro.core.backends import SimulatorBackend

    return SimulatorBackend(simulator, provider=provider)
