"""Figure 4 -- the Section 6.2 convergence experiment.

A 5-RegionServer cluster starts in the Random-Homogeneous configuration;
after a 2-minute ramp-up MeT is started and reconfigures the cluster on the
fly (no node additions -- the cluster size is fixed in this experiment).
The paper's observations: a reconfiguration window between roughly minute 2
and minute 8 with a throughput floor around 7.5 kops/s, recovery to
~20 kops/s by minute 5, and post-reconfiguration throughput matching the
Manual-Heterogeneous strategy; the cumulative average beats
Manual-Homogeneous within 15 minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import MeT
from repro.core.parameters import MeTParameters
from repro.elasticity.strategies import (
    manual_heterogeneous,
    manual_homogeneous,
    random_homogeneous,
)
from repro.experiments.harness import ExperimentHarness, StrategyRun, apply_placement, make_backend
from repro.experiments.reporting import format_table
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.ycsb.scenario import build_paper_scenario


@dataclass
class Figure4Result:
    """The three throughput-over-time series of Figure 4."""

    met: StrategyRun
    manual_homogeneous: StrategyRun
    manual_heterogeneous: StrategyRun
    met_events: list = field(default_factory=list)
    minutes: float = 30.0
    met_start_minute: float = 2.0

    @property
    def reconfiguration_floor(self) -> float:
        """Lowest throughput observed while MeT reconfigures."""
        window = [
            point.throughput
            for point in self.met.series
            if self.met_start_minute <= point.minute <= self.met_start_minute + 8
        ]
        return min(window) if window else 0.0

    @property
    def met_final_throughput(self) -> float:
        """MeT throughput over the last third of the run."""
        return self.met.throughput_between(self.minutes * 2 / 3, self.minutes)

    @property
    def heterogeneous_final_throughput(self) -> float:
        """Manual-Heterogeneous throughput over the last third of the run."""
        return self.manual_heterogeneous.throughput_between(
            self.minutes * 2 / 3, self.minutes
        )

    @property
    def homogeneous_final_throughput(self) -> float:
        """Manual-Homogeneous throughput over the last third of the run."""
        return self.manual_homogeneous.throughput_between(
            self.minutes * 2 / 3, self.minutes
        )

    def met_matches_heterogeneous(self, tolerance: float = 0.15) -> bool:
        """Whether MeT converges to Manual-Heterogeneous performance."""
        target = self.heterogeneous_final_throughput
        if target <= 0:
            return False
        return abs(self.met_final_throughput - target) / target <= tolerance


def _manual_run(strategy_fn, name: str, minutes: float, nodes: int, seed: int) -> StrategyRun:
    simulator = ClusterSimulator()
    node_names = [simulator.add_node() for _ in range(nodes)]
    scenario = build_paper_scenario(simulator)
    expected = scenario.expected_partition_workloads()
    if strategy_fn is random_homogeneous:
        plan = strategy_fn(expected, node_names, seed=seed)
    else:
        plan = strategy_fn(expected, node_names)
    apply_placement(simulator, plan)
    harness = ExperimentHarness(simulator, name=name)
    return harness.run_for(minutes * 60.0)


def run_figure4(
    minutes: float = 30.0,
    nodes: int = 5,
    met_start_minute: float = 2.0,
    seed: int = 1,
) -> Figure4Result:
    """Run the convergence experiment and the two manual baselines."""
    # --- MeT run: start from Random-Homogeneous, enable MeT after ramp-up.
    simulator = ClusterSimulator()
    node_names = [simulator.add_node() for _ in range(nodes)]
    scenario = build_paper_scenario(simulator)
    expected = scenario.expected_partition_workloads()
    apply_placement(simulator, random_homogeneous(expected, node_names, seed=seed))
    backend = make_backend(simulator)
    parameters = MeTParameters(max_nodes=nodes, min_nodes=nodes, allow_remove=False)
    met = MeT(backend, parameters, enabled=False)
    harness = ExperimentHarness(simulator, name="met")
    harness.add_controller(met)
    harness.run_for(met_start_minute * 60.0)
    met.start()
    met_run = harness.run_for((minutes - met_start_minute) * 60.0)

    hom_run = _manual_run(manual_homogeneous, "manual-homogeneous", minutes, nodes, seed)
    het_run = _manual_run(manual_heterogeneous, "manual-heterogeneous", minutes, nodes, seed)
    return Figure4Result(
        met=met_run,
        manual_homogeneous=hom_run,
        manual_heterogeneous=het_run,
        met_events=met.events("plan") + met.events("plan-complete"),
        minutes=minutes,
        met_start_minute=met_start_minute,
    )


def report(result: Figure4Result) -> str:
    """Format the Figure 4 series plus the convergence summary."""
    headers = ["minute", "MeT", "Manual-Homogeneous", "Manual-Heterogeneous"]
    rows = []
    by_minute_hom = {round(p.minute): p.throughput for p in result.manual_homogeneous.series}
    by_minute_het = {round(p.minute): p.throughput for p in result.manual_heterogeneous.series}
    for point in result.met.series:
        minute = round(point.minute)
        rows.append(
            [
                f"{minute:d}",
                f"{point.throughput:,.0f}",
                f"{by_minute_hom.get(minute, 0.0):,.0f}",
                f"{by_minute_het.get(minute, 0.0):,.0f}",
            ]
        )
    summary = [
        "",
        f"reconfiguration floor: {result.reconfiguration_floor:,.0f} ops/s (paper: ~7,500)",
        f"MeT final throughput: {result.met_final_throughput:,.0f} ops/s",
        f"Manual-Heterogeneous final: {result.heterogeneous_final_throughput:,.0f} ops/s",
        f"MeT converges to heterogeneous performance: {result.met_matches_heterogeneous()}",
    ]
    return format_table(headers, rows) + "\n" + "\n".join(summary)


def main() -> None:
    """Regenerate Figure 4 and print it."""
    print(report(run_figure4()))


if __name__ == "__main__":
    main()
