"""Figure 1 -- the Section 3 motivation experiment.

Six YCSB workloads run simultaneously against a 5-RegionServer cluster under
three strategies: Random-Homogeneous (the HBase default), Manual-Homogeneous
(hand-balanced placement, identical configurations) and Manual-Heterogeneous
(workload-aware placement plus per-group configurations).  The paper reports
per-workload and total throughput as CDF bars over 5 runs; the headline
numbers are a ~35% total improvement of Manual-Heterogeneous over
Manual-Homogeneous, more than 2x over Random-Homogeneous (on average), and a
dramatic improvement of the scan workload E.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elasticity.strategies import (
    manual_heterogeneous,
    manual_homogeneous,
    random_homogeneous,
)
from repro.experiments.harness import ExperimentHarness, apply_placement
from repro.experiments.reporting import format_table, percentiles
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.ycsb.scenario import build_paper_scenario

#: The three strategies of Section 3.3, in presentation order.
STRATEGIES = ("random-homogeneous", "manual-homogeneous", "manual-heterogeneous")


@dataclass
class StrategyOutcome:
    """Per-run throughput observations of one strategy."""

    name: str
    totals: list[float] = field(default_factory=list)
    per_workload: list[dict[str, float]] = field(default_factory=list)

    @property
    def mean_total(self) -> float:
        """Mean total throughput over the runs."""
        if not self.totals:
            return 0.0
        return sum(self.totals) / len(self.totals)

    def workload_mean(self, workload: str) -> float:
        """Mean throughput of one workload over the runs."""
        values = [run.get(workload, 0.0) for run in self.per_workload]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def total_percentiles(self) -> dict[int, float]:
        """The CDF bar values of the figure for the total throughput."""
        return percentiles(self.totals)


@dataclass
class Figure1Result:
    """Aggregated outcome of the Figure 1 experiment."""

    outcomes: dict[str, StrategyOutcome] = field(default_factory=dict)
    minutes: float = 0.0
    runs: int = 0

    @property
    def heterogeneous_vs_homogeneous(self) -> float:
        """Total throughput ratio Manual-Heterogeneous / Manual-Homogeneous."""
        hom = self.outcomes["manual-homogeneous"].mean_total
        het = self.outcomes["manual-heterogeneous"].mean_total
        return het / hom if hom > 0 else float("inf")

    @property
    def heterogeneous_vs_random(self) -> float:
        """Total throughput ratio Manual-Heterogeneous / Random-Homogeneous."""
        rand = self.outcomes["random-homogeneous"].mean_total
        het = self.outcomes["manual-heterogeneous"].mean_total
        return het / rand if rand > 0 else float("inf")

    @property
    def scan_improvement(self) -> float:
        """Workload E throughput ratio, heterogeneous over homogeneous."""
        hom = self.outcomes["manual-homogeneous"].workload_mean("workload-E")
        het = self.outcomes["manual-heterogeneous"].workload_mean("workload-E")
        return het / hom if hom > 0 else float("inf")


def _run_once(strategy: str, seed: int, minutes: float, nodes: int) -> tuple[float, dict[str, float]]:
    """Run one strategy once; returns (total throughput, per-workload)."""
    simulator = ClusterSimulator()
    node_names = [simulator.add_node() for _ in range(nodes)]
    scenario = build_paper_scenario(simulator)
    expected = scenario.expected_partition_workloads()
    if strategy == "random-homogeneous":
        plan = random_homogeneous(expected, node_names, seed=seed)
    elif strategy == "manual-homogeneous":
        plan = manual_homogeneous(expected, node_names)
    elif strategy == "manual-heterogeneous":
        plan = manual_heterogeneous(expected, node_names)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    apply_placement(simulator, plan)
    harness = ExperimentHarness(simulator, name=f"{strategy}-{seed}")
    run = harness.run_for(minutes * 60.0)
    steady = run.throughput_between(minutes * 0.5, minutes)
    per_workload = dict(run.per_workload_throughput)
    return steady, per_workload


def run_figure1(runs: int = 5, minutes: float = 10.0, nodes: int = 5) -> Figure1Result:
    """Run the full Figure 1 experiment.

    ``minutes`` is the steady-state window per run (the paper runs 30
    minutes; the default is shorter because the analytical simulator reaches
    steady state quickly).
    """
    result = Figure1Result(minutes=minutes, runs=runs)
    for strategy in STRATEGIES:
        outcome = StrategyOutcome(name=strategy)
        # Only the random strategy is placement-randomised; the manual
        # strategies are deterministic but are still run ``runs`` times for
        # symmetric reporting.
        for seed in range(runs):
            total, per_workload = _run_once(strategy, seed, minutes, nodes)
            outcome.totals.append(total)
            outcome.per_workload.append(per_workload)
        result.outcomes[strategy] = outcome
    return result


def report(result: Figure1Result) -> str:
    """Format the Figure 1 rows (per-workload and total mean throughput)."""
    workloads = [f"workload-{w}" for w in "ABCDEF"]
    headers = ["strategy"] + [w.split("-")[1] for w in workloads] + ["total", "p50-total"]
    rows = []
    for strategy in STRATEGIES:
        outcome = result.outcomes[strategy]
        row = [strategy]
        row += [f"{outcome.workload_mean(w):,.0f}" for w in workloads]
        row.append(f"{outcome.mean_total:,.0f}")
        row.append(f"{outcome.total_percentiles()[50]:,.0f}")
        rows.append(row)
    summary = [
        "",
        f"manual-heterogeneous vs manual-homogeneous: {result.heterogeneous_vs_homogeneous:.2f}x "
        "(paper: ~1.35x)",
        f"manual-heterogeneous vs random-homogeneous: {result.heterogeneous_vs_random:.2f}x "
        "(paper: >2x)",
        f"workload E (scans) heterogeneous vs homogeneous: {result.scan_improvement:.2f}x "
        "(paper: ~13x, 100 -> 1350 scans/s)",
    ]
    return format_table(headers, rows) + "\n" + "\n".join(summary)


def main() -> None:
    """Regenerate Figure 1 and print it."""
    print(report(run_figure1()))


if __name__ == "__main__":
    main()
