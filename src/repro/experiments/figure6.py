"""Figure 6 -- the Section 6.4 elasticity experiment (MeT vs tiramola).

An HBase cluster of 6 RegionServer VMs (plus a master VM) runs on the
OpenStack-like IaaS, starting from 100% data locality and a manually
balanced homogeneous placement.  A set of YCSB workloads overloads the
initial cluster.  The experiment has two phases:

* **Phase 1 (first ~33 minutes)** -- all tenants active.  MeT reconfigures
  and grows the cluster, reaching the scenario's maximum achievable
  throughput (all YCSB clients saturated) with fewer machines than the
  tiramola baseline, which adds nodes but leaves placement to HBase's random
  balancer and therefore loses data locality.
* **Phase 2** -- tenants are switched off progressively (E and F, then B and
  D, then A, leaving only C).  MeT releases nodes as it detects
  under-utilisation; tiramola only releases a node when *every* node is
  under-utilised.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.framework import MeT
from repro.core.parameters import MeTParameters
from repro.elasticity.daemon import HBaseBalancerDaemon
from repro.elasticity.strategies import manual_homogeneous
from repro.elasticity.tiramola import Tiramola, TiramolaPolicy
from repro.experiments.harness import ExperimentHarness, StrategyRun, apply_placement, make_backend
from repro.experiments.reporting import format_table
from repro.iaas.provider import OpenStackProvider
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.hardware import HardwareSpec
from repro.workloads.ycsb.scenario import build_paper_scenario
from repro.workloads.ycsb.workloads import CORE_WORKLOADS, YCSBWorkload

#: Per-workload throughput caps for this scenario: together they overload the
#: initial 6-node cluster and define the maximum achievable throughput once
#: every client is saturated (the paper's ~22 kops/s plateau).
SCENARIO_TARGETS: dict[str, float] = {
    "A": 5000.0,
    "B": 4500.0,
    "C": 4500.0,
    "D": 1500.0,
    "E": 600.0,
    "F": 4500.0,
}

#: The elasticity experiment runs on OpenStack VMs with 3 GB of RAM, which
#: are weaker than the physical nodes of Section 3 (fewer vCPUs, smaller
#: heap); this spec models those VMs.
VM_HARDWARE = HardwareSpec(
    cpu_millis_per_second=2000.0,
    disk_iops=140.0,
    disk_mb_per_second=90.0,
    network_mb_per_second=110.0,
    memory_bytes=3 * 1024 * 1024 * 1024,
    heap_bytes=int(2.2 * 1024 * 1024 * 1024),
)

#: Phase-2 shutdown schedule: minute -> workloads switched off.
SHUTDOWN_SCHEDULE: dict[float, tuple[str, ...]] = {
    33.0: ("E", "F"),
    43.0: ("B", "D"),
    53.0: ("A",),
}


@dataclass
class Figure6Result:
    """Throughput and cluster-size series for both systems."""

    met: StrategyRun
    tiramola: StrategyRun
    met_machine_minutes: float = 0.0
    tiramola_machine_minutes: float = 0.0
    met_peak_nodes: int = 0
    tiramola_peak_nodes: int = 0
    met_final_nodes: int = 0
    tiramola_final_nodes: int = 0
    minutes: float = 60.0
    phase1_minutes: float = 33.0
    met_events: list = field(default_factory=list)
    tiramola_events: list = field(default_factory=list)

    @property
    def phase1_operations_ratio(self) -> float:
        """Cumulative operations after phase 1, MeT over tiramola (paper ~1.31)."""
        tiramola_ops = self.tiramola.operations_until(self.phase1_minutes)
        met_ops = self.met.operations_until(self.phase1_minutes)
        return met_ops / tiramola_ops if tiramola_ops > 0 else float("inf")

    @property
    def met_uses_fewer_machines(self) -> bool:
        """Whether MeT reached its peak with fewer machines than tiramola."""
        return self.met_peak_nodes <= self.tiramola_peak_nodes


def scenario_workloads() -> dict[str, YCSBWorkload]:
    """The paper workloads with the elasticity-scenario throughput caps."""
    workloads = {}
    for name, workload in CORE_WORKLOADS.items():
        target = SCENARIO_TARGETS.get(name, workload.target_ops_per_second)
        workloads[name] = YCSBWorkload(
            name=workload.name,
            read_proportion=workload.read_proportion,
            update_proportion=workload.update_proportion,
            insert_proportion=workload.insert_proportion,
            scan_proportion=workload.scan_proportion,
            read_modify_write_proportion=workload.read_modify_write_proportion,
            record_count=workload.record_count,
            partitions=workload.partitions,
            threads=workload.threads,
            target_ops_per_second=target,
            record_size=workload.record_size,
            scan_length=workload.scan_length,
            description=workload.description,
        )
    return workloads


def _build_cluster(nodes: int, seed: int) -> tuple[ClusterSimulator, OpenStackProvider]:
    simulator = ClusterSimulator(hardware=VM_HARDWARE)
    provider = OpenStackProvider(simulator.clock, boot_seconds=simulator.boot_seconds)
    node_names = [simulator.add_node() for _ in range(nodes)]
    scenario = build_paper_scenario(simulator, workloads=scenario_workloads())
    expected = scenario.expected_partition_workloads()
    plan = manual_homogeneous(expected, node_names)
    apply_placement(simulator, plan)
    return simulator, provider


def _run_system(
    system: str,
    minutes: float,
    nodes: int,
    seed: int,
    max_nodes: int,
    shutdown_schedule: dict[float, tuple[str, ...]] | None,
) -> tuple[StrategyRun, ExperimentHarness, object]:
    simulator, provider = _build_cluster(nodes, seed)
    backend = make_backend(simulator, provider=provider)
    if system == "met":
        parameters = MeTParameters(min_nodes=nodes, max_nodes=max_nodes, allow_remove=True)
        controller = MeT(backend, parameters)
    elif system == "tiramola":
        policy = TiramolaPolicy(min_nodes=nodes, max_nodes=max_nodes)
        controller = Tiramola(backend, policy)
    else:
        raise ValueError(f"unknown system {system!r}")
    harness = ExperimentHarness(simulator, name=system)
    harness.add_controller(controller)
    if system == "tiramola":
        harness.add_controller(HBaseBalancerDaemon(backend, seed=seed))

    schedule = dict(sorted((shutdown_schedule or {}).items()))
    elapsed = 0.0
    for minute, workloads in schedule.items():
        if minute > minutes:
            break
        harness.run_for((minute - elapsed) * 60.0)
        for workload in workloads:
            simulator.set_workload_active(f"workload-{workload}", False)
        elapsed = minute
    run = harness.run_for((minutes - elapsed) * 60.0)
    return run, harness, controller


def run_figure6(
    minutes: float = 60.0,
    initial_nodes: int = 6,
    max_nodes: int = 11,
    seed: int = 0,
    phase1_minutes: float = 33.0,
    with_phase2: bool = True,
) -> Figure6Result:
    """Run the elasticity experiment for MeT and tiramola."""
    schedule = SHUTDOWN_SCHEDULE if with_phase2 else {}
    met_run, _, met_controller = _run_system(
        "met", minutes, initial_nodes, seed, max_nodes, schedule
    )
    tiramola_run, _, tiramola_controller = _run_system(
        "tiramola", minutes, initial_nodes, seed, max_nodes, schedule
    )
    return Figure6Result(
        met=met_run,
        tiramola=tiramola_run,
        met_peak_nodes=max((p.nodes for p in met_run.series), default=initial_nodes),
        tiramola_peak_nodes=max((p.nodes for p in tiramola_run.series), default=initial_nodes),
        met_final_nodes=met_run.final_nodes,
        tiramola_final_nodes=tiramola_run.final_nodes,
        met_machine_minutes=met_run.machine_minutes,
        tiramola_machine_minutes=tiramola_run.machine_minutes,
        minutes=minutes,
        phase1_minutes=min(phase1_minutes, minutes),
        met_events=list(getattr(met_controller, "status").events),
        tiramola_events=list(getattr(tiramola_controller, "log").events),
    )


def report(result: Figure6Result) -> str:
    """Format the Figure 6 series (throughput and node count over time)."""
    headers = ["minute", "MeT ops/s", "MeT nodes", "tiramola ops/s", "tiramola nodes"]
    tiramola_by_minute = {round(p.minute): p for p in result.tiramola.series}
    rows = []
    for point in result.met.series:
        minute = round(point.minute)
        other = tiramola_by_minute.get(minute)
        rows.append(
            [
                f"{minute:d}",
                f"{point.throughput:,.0f}",
                f"{point.nodes:d}",
                f"{other.throughput:,.0f}" if other else "-",
                f"{other.nodes:d}" if other else "-",
            ]
        )
    summary = [
        "",
        f"phase-1 cumulative operations, MeT vs tiramola: {result.phase1_operations_ratio:.2f}x (paper: ~1.31x)",
        f"peak nodes: MeT {result.met_peak_nodes} vs tiramola {result.tiramola_peak_nodes} (paper: 9 vs 11)",
        f"final nodes: MeT {result.met_final_nodes} vs tiramola {result.tiramola_final_nodes}",
        f"machine-minutes: MeT {result.met_machine_minutes:,.0f} vs tiramola {result.tiramola_machine_minutes:,.0f}",
    ]
    return format_table(headers, rows) + "\n" + "\n".join(summary)


def main() -> None:
    """Regenerate Figure 6 and print it."""
    print(report(run_figure6()))


if __name__ == "__main__":
    main()
