"""Plain-text reporting helpers used by the experiment ``main()`` entry points."""

from __future__ import annotations

from dataclasses import dataclass


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a fixed-width text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str, points: list[tuple[float, float]], unit: str = "ops/s"
) -> str:
    """Render a (minute, value) series as aligned text rows."""
    lines = [title]
    for minute, value in points:
        lines.append(f"  t={minute:6.1f} min  {value:12.1f} {unit}")
    return "\n".join(lines)


def percentiles(values: list[float], points: tuple[int, ...] = (5, 25, 50, 75, 90)) -> dict[int, float]:
    """Empirical percentiles of ``values`` (the CDF bars of Figure 1)."""
    if not values:
        return {p: 0.0 for p in points}
    ordered = sorted(values)
    result: dict[int, float] = {}
    for p in points:
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        result[p] = ordered[low] * (1 - fraction) + ordered[high] * fraction
    return result


def format_matchup(rows, key, group, columns) -> str:
    """Render grouped rows side by side (one line per key, groups as columns).

    ``rows`` is any iterable of records; ``key(row)`` labels the line (e.g.
    the scenario name), ``group(row)`` names the competitor (e.g. the
    controller) and ``columns`` is a list of ``(label, fmt)`` pairs applied
    to each record.  Groups appear in first-seen order; a key missing a
    group's record renders blanks.  This is the shape of the SLA
    scorecard -- MeT and Tiramola judged on the same metrics, one scenario
    per line.
    """
    keys: list[str] = []
    groups: list[str] = []
    cells: dict[tuple[str, str], list[str]] = {}
    for row in rows:
        k, g = key(row), group(row)
        if k not in keys:
            keys.append(k)
        if g not in groups:
            groups.append(g)
        cells[(k, g)] = [fmt(row) for _, fmt in columns]
    headers = ["scenario"] + [
        f"{g}:{label}" for g in groups for label, _ in columns
    ]
    blank = [""] * len(columns)
    table_rows = [
        [k] + [cell for g in groups for cell in cells.get((k, g), blank)]
        for k in keys
    ]
    return format_table(headers, table_rows)


@dataclass
class Comparison:
    """A paper-vs-measured comparison row for EXPERIMENTS.md."""

    metric: str
    paper: str
    measured: str
    holds: bool

    def row(self) -> list[str]:
        """Table row representation."""
        return [self.metric, self.paper, self.measured, "yes" if self.holds else "NO"]
