"""SLO and cost accounting: per-tenant quality signals, judged and priced.

The simulator computes per-tenant latencies internally on every tick; this
package is the layer that turns them into first-class service-quality
artefacts:

* :mod:`repro.sla.slo` -- :class:`SLODefinition` (latency ceiling and/or
  throughput floor per tenant) and the evaluator producing per-sample
  violation series and aggregate violation-minutes;
* :mod:`repro.sla.cost` -- :class:`PricingModel` over IaaS flavors, turning
  the per-flavor machine-minute ledger into a :class:`CostEnvelope`;
* :mod:`repro.sla.scorecard` -- the controller scorecard
  (violation-minutes, cost, throughput) across the scenario catalog, for
  any set of controllers (MeT, Tiramola, planner, ...).

Scenario specs declare SLOs (``ScenarioSpec.slos``) and SLO/cost assertions
(``LatencyWithin``, ``SLOViolationsBelow``, ``CostCeiling``); the scenario
runner evaluates both and serialises the verdicts into golden traces, so
service quality is regression-locked alongside raw throughput.
"""

from repro.sla.cost import (
    DEFAULT_PRICING,
    ON_DEMAND_TIER,
    PRICING_MODELS,
    CostEnvelope,
    FlavorCharge,
    PricingModel,
    machine_minute_ledger,
    pricing_model,
)
from repro.sla.slo import (
    SLODefinition,
    SLOReport,
    SLOViolation,
    evaluate_slo,
    evaluate_slos,
    tenant_points,
)
from repro.sla.units import (
    OPS_PER_SECOND,
    TPMC,
    RATE_UNITS,
    from_native_rate,
    to_native_rate,
)

__all__ = [
    "DEFAULT_PRICING",
    "ON_DEMAND_TIER",
    "OPS_PER_SECOND",
    "PRICING_MODELS",
    "RATE_UNITS",
    "TPMC",
    "CostEnvelope",
    "FlavorCharge",
    "PricingModel",
    "SLODefinition",
    "SLOReport",
    "SLOViolation",
    "evaluate_slo",
    "evaluate_slos",
    "from_native_rate",
    "machine_minute_ledger",
    "pricing_model",
    "tenant_points",
    "to_native_rate",
]


def __getattr__(name: str):
    # The scorecard pulls in repro.scenarios (which imports the assertion
    # DSL, which imports this package), so it is exposed lazily to keep the
    # import graph acyclic: ``from repro.sla import scenario_scorecard``.
    if name in ("ScorecardRow", "render_scorecard", "scenario_scorecard", "scorecard_row"):
        from repro.sla import scorecard

        return getattr(scorecard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
