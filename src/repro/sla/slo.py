"""Service-level objectives over per-tenant quality series.

An :class:`SLODefinition` declares what one tenant was promised -- a latency
ceiling, a throughput floor, or both.  :func:`evaluate_slo` judges a finished
run's recorded :class:`~repro.experiments.harness.TenantSeriesPoint` samples
against the promise and produces an :class:`SLOReport`: the per-sample
violation series plus the aggregate *violation-minutes* the paper-style
quality-per-dollar comparison needs (a controller that holds latency by
burning twice the machines is only "better" until the cost envelope says
otherwise -- see :mod:`repro.sla.cost`).

Definitions are pure frozen data so scenario specs can embed them; tenants
are named the way scenarios name them (``"A"``), and the evaluator resolves
the binding-level series key (``"workload-A"``) itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sla.units import OPS_PER_SECOND, to_native_rate
from repro.workloads.ycsb.scenario import binding_name

__all__ = [
    "SLODefinition",
    "SLOReport",
    "SLOViolation",
    "evaluate_slo",
    "evaluate_slos",
    "post_warmup_points",
    "tenant_points",
]


@dataclass(frozen=True)
class SLODefinition:
    """What one tenant was promised.

    ``latency_ceiling_ms`` bounds the tenant's mean request latency per
    sampling window; ``p95_ceiling_ms``/``p99_ceiling_ms`` bound the tail
    of the window's latency *distribution* (the exact merged
    :class:`~repro.simulation.latency.LatencySummary` quantiles the harness
    records per sample -- a promise a window mean cannot express);
    ``throughput_floor`` guarantees a minimum achieved rate, declared in
    ``unit`` -- the simulator's ``"ops/s"`` by default, or a tenant's
    native unit (``"tpmC"`` for TPC-C; see :mod:`repro.sla.units`), in
    which case each observed sample is converted before judging.  Any bound
    may be ``None``; at least one must be set.  Percentile bounds are
    always in milliseconds (the unit registry only governs throughput
    floors).  ``warmup_minutes`` exempts the tenant's cold start --
    closed-loop throughput ramps from the solver's seed during its first
    samples, and an SLO should judge steady-state service, not the
    simulator warming up.  The warmup is measured from the start of the
    *tenant's* first recorded window (a mid-run arrival gets the same ramp
    grace as a run-start tenant), and a sample is exempt unless its whole
    sampling window lies past it (see :func:`post_warmup_points`).
    """

    tenant: str
    latency_ceiling_ms: float | None = None
    throughput_floor: float | None = None
    warmup_minutes: float = 1.0
    unit: str = OPS_PER_SECOND
    p95_ceiling_ms: float | None = None
    p99_ceiling_ms: float | None = None

    def __post_init__(self) -> None:
        bounds = (
            self.latency_ceiling_ms,
            self.p95_ceiling_ms,
            self.p99_ceiling_ms,
            self.throughput_floor,
        )
        if all(bound is None for bound in bounds):
            raise ValueError(
                f"SLO for tenant {self.tenant!r} needs a latency/percentile "
                "ceiling and/or a throughput floor"
            )
        for label, ceiling in (
            ("latency", self.latency_ceiling_ms),
            ("p95", self.p95_ceiling_ms),
            ("p99", self.p99_ceiling_ms),
        ):
            if ceiling is not None and ceiling <= 0:
                raise ValueError(f"{label} ceiling must be positive")
        if self.throughput_floor is not None and self.throughput_floor < 0:
            raise ValueError("throughput floor must be non-negative")
        # Reject unknown units at declaration time, not at evaluation time:
        # a typo'd unit in a spec should fail when the spec is built.
        to_native_rate(self.unit, 0.0)

    def describe(self) -> str:
        """Canonical one-line rendering, e.g. ``A: latency<=40ms p95<=60ms``."""
        bounds = []
        if self.latency_ceiling_ms is not None:
            bounds.append(f"latency<={self.latency_ceiling_ms:g}ms")
        if self.p95_ceiling_ms is not None:
            bounds.append(f"p95<={self.p95_ceiling_ms:g}ms")
        if self.p99_ceiling_ms is not None:
            bounds.append(f"p99<={self.p99_ceiling_ms:g}ms")
        if self.throughput_floor is not None:
            bounds.append(f"throughput>={self.throughput_floor:g}{self.unit}")
        return f"{self.tenant}: " + " ".join(bounds)


@dataclass(frozen=True)
class SLOViolation:
    """One sample that broke the promise."""

    minute: float
    kind: str  # "latency", "p95", "p99" or "throughput"
    observed: float
    bound: float


@dataclass(frozen=True)
class SLOReport:
    """Verdict of one SLO against one finished run."""

    slo: SLODefinition
    #: Samples judged (after the warmup exemption).
    samples: int
    #: Minutes of wall-clock each sample stands for.
    sample_minutes: float
    violations: tuple[SLOViolation, ...]

    @property
    def violation_minutes(self) -> float:
        """Total minutes the tenant spent out of SLO."""
        return len(self.violations) * self.sample_minutes

    @property
    def satisfied(self) -> bool:
        """Whether the promise held for the whole (post-warmup) run."""
        return not self.violations

    @property
    def compliance(self) -> float:
        """Fraction of judged samples inside the SLO (1.0 when none judged)."""
        if self.samples == 0:
            return 1.0
        return 1.0 - len(self.violations) / self.samples


def tenant_points(run, tenant: str) -> list:
    """A tenant's recorded series, accepting scenario or binding names."""
    series = run.tenant_series
    points = series.get(binding_name(tenant))
    if points is None:
        points = series.get(tenant, [])
    return points


def post_warmup_points(points, warmup_minutes: float) -> list:
    """Samples whose whole window lies past the warmup exemption.

    Each recorded sample is a *window mean* ending at its ``minute``, so a
    sample is only judged when its window **starts** at or after the
    warmup deadline -- filtering on the end minute would judge a sample
    composed almost entirely of warmup-period ticks.  The window start is
    the preceding sample's minute.

    The warmup clock starts at the beginning of the **tenant's first
    recorded window**, not at the run start: a tenant arriving at minute 30
    with a 2-minute warmup ramps its closed loop from the solver's seed
    exactly like a run-start tenant does, so it gets the same exemption
    window (measuring from the run start would judge its ramp-up samples
    the moment the first one passed).  The first window's start is inferred
    from the series' sampling cadence -- the gap between the first two
    samples; a single-sample series falls back to a window from the run
    start, which exempts the sample under any positive warmup.
    """
    if not points:
        return []
    if len(points) > 1:
        cadence = points[1].minute - points[0].minute
    else:
        cadence = points[0].minute
    first_window_start = max(0.0, points[0].minute - cadence)
    deadline = first_window_start + warmup_minutes
    judged = []
    window_start = first_window_start
    for point in points:
        if window_start >= deadline - 1e-9:
            judged.append(point)
        window_start = point.minute
    return judged


def evaluate_slo(slo: SLODefinition, run, sample_minutes: float = 1.0) -> SLOReport:
    """Judge one SLO against a run's recorded tenant series.

    ``sample_minutes`` is the wall-clock weight of one recorded sample (the
    harness default samples once a minute); violation-minutes scale with it.
    A sample out of SLO counts **once** even when it breaches several bounds
    of a multi-bound SLO -- violation-minutes measure time out of SLO, not
    bounds broken -- with mean latency, then p95, then p99 taking precedence
    over throughput in the per-kind breakdown (a saturated tenant usually
    breaches several, and latency is the tenant-visible symptom).  A tenant
    with no recorded series produces an empty, satisfied report -- the
    caller declared an SLO for a tenant that never ran, which the
    scenario-level assertions surface separately.

    Percentile ceilings judge the sample's recorded window-distribution
    quantiles (``point.p95_ms``/``point.p99_ms``).  A percentile ceiling
    against a run whose harness recorded no latency distributions is a
    declaration error, not a pass: it raises ``ValueError`` instead of
    silently judging nothing.

    Throughput floors declared in a native unit (``unit="tpmC"``) convert
    each observed ops/s sample into that unit before comparing, and the
    violation's ``observed``/``bound`` are recorded natively.
    """
    points = post_warmup_points(tenant_points(run, slo.tenant), slo.warmup_minutes)
    violations: list[SLOViolation] = []

    def percentile_observed(point, percentile: int) -> float:
        observed = getattr(point, f"p{percentile}_ms", None)
        if observed is None:
            raise ValueError(
                f"SLO for tenant {slo.tenant!r} declares a p{percentile} ceiling "
                "but the run recorded no latency distributions (was the "
                "simulator built with record_latency_distributions=False?)"
            )
        return observed

    for point in points:
        if (
            slo.latency_ceiling_ms is not None
            and point.latency_ms > slo.latency_ceiling_ms
        ):
            violations.append(
                SLOViolation(
                    minute=point.minute,
                    kind="latency",
                    observed=point.latency_ms,
                    bound=slo.latency_ceiling_ms,
                )
            )
        elif (
            slo.p95_ceiling_ms is not None
            and percentile_observed(point, 95) > slo.p95_ceiling_ms
        ):
            violations.append(
                SLOViolation(
                    minute=point.minute,
                    kind="p95",
                    observed=point.p95_ms,
                    bound=slo.p95_ceiling_ms,
                )
            )
        elif (
            slo.p99_ceiling_ms is not None
            and percentile_observed(point, 99) > slo.p99_ceiling_ms
        ):
            violations.append(
                SLOViolation(
                    minute=point.minute,
                    kind="p99",
                    observed=point.p99_ms,
                    bound=slo.p99_ceiling_ms,
                )
            )
        elif slo.throughput_floor is not None:
            observed = to_native_rate(slo.unit, point.throughput)
            if observed < slo.throughput_floor:
                violations.append(
                    SLOViolation(
                        minute=point.minute,
                        kind="throughput",
                        observed=observed,
                        bound=slo.throughput_floor,
                    )
                )
    return SLOReport(
        slo=slo,
        samples=len(points),
        sample_minutes=sample_minutes,
        violations=tuple(violations),
    )


def evaluate_slos(slos, run, sample_minutes: float = 1.0) -> list[SLOReport]:
    """Judge every declared SLO, in declaration order."""
    return [evaluate_slo(slo, run, sample_minutes) for slo in slos]
