"""The controller scorecard: quality and cost across the catalog.

Runs scenarios under any set of controllers (the paper's MeT-vs-Tiramola
matchup by default; ``"planner"`` joins the same table) and reduces each
run to the numbers the latency-vs-cost trade-off is argued with: SLO
violation-minutes, run cost under a pricing model, tail latency and mean
cluster throughput.  The rendering helpers live in
:mod:`repro.experiments.reporting` and group N controllers side by side;
this module owns the data reduction so experiments, examples and the
campaign pipeline all score controllers the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import format_matchup
from repro.sla.cost import DEFAULT_PRICING, PricingModel

__all__ = [
    "ScorecardRow",
    "render_scorecard",
    "scenario_scorecard",
    "scorecard_row",
]


@dataclass(frozen=True)
class ScorecardRow:
    """One (scenario, controller) cell of the scorecard."""

    scenario: str
    controller: str
    mean_throughput: float
    violation_minutes: float
    cost: float
    machine_minutes: float
    assertions_passed: bool
    #: Worst per-sample tail latency across all tenants (0.0 when the run
    #: recorded no latency distributions).
    p95_ms: float = 0.0
    p99_ms: float = 0.0


def scorecard_row(result, pricing: PricingModel | None = None) -> ScorecardRow:
    """Reduce one finished :class:`~repro.scenarios.runner.ScenarioRunResult`."""
    envelope = result.cost
    if pricing is not None and (envelope is None or envelope.pricing != pricing.name):
        envelope = pricing.cost_of(result.machine_minute_ledger)
    return ScorecardRow(
        scenario=result.spec.name,
        controller=result.controller,
        mean_throughput=result.run.mean_throughput,
        violation_minutes=sum(r.violation_minutes for r in result.slo_reports),
        cost=envelope.total if envelope is not None else 0.0,
        machine_minutes=result.run.machine_minutes,
        assertions_passed=result.assertions_passed,
        p95_ms=result.run.peak_percentile(95),
        p99_ms=result.run.peak_percentile(99),
    )


def scenario_scorecard(
    scenarios=None,
    controllers: tuple[str, ...] = ("met", "tiramola"),
    pricing: PricingModel = DEFAULT_PRICING,
    kernel: str | None = None,
) -> list[ScorecardRow]:
    """Run every scenario under every controller and reduce to rows.

    ``scenarios`` defaults to the whole canned catalog; ``kernel`` to the
    scenario runner's default.  Rows come back grouped by scenario in
    catalog order, controllers in the given order.
    """
    # Imported lazily: repro.scenarios imports the SLA assertion types, so a
    # module-level import here would be circular.
    from repro.scenarios import CANNED_SCENARIOS, run_scenario
    from repro.scenarios.runner import DEFAULT_KERNEL

    if kernel is None:
        kernel = DEFAULT_KERNEL

    if scenarios is None:
        specs = list(CANNED_SCENARIOS.values())
    else:
        specs = [
            CANNED_SCENARIOS[item] if isinstance(item, str) else item
            for item in scenarios
        ]
    rows: list[ScorecardRow] = []
    for spec in specs:
        for controller in controllers:
            result = run_scenario(
                spec, controller=controller, kernel=kernel, keep_simulator=False
            )
            rows.append(scorecard_row(result, pricing=pricing))
    return rows


def render_scorecard(rows: list[ScorecardRow]) -> str:
    """Render scorecard rows as a controller matchup table.

    Scenarios appear in row order; each metric shows every controller's
    value side by side (any number of controllers, in first-seen order --
    two-controller output is byte-identical to the historical
    MeT-vs-Tiramola table).  Lower is better for violation-minutes and
    cost, higher for throughput.
    """
    return format_matchup(
        rows,
        key=lambda row: row.scenario,
        group=lambda row: row.controller,
        columns=[
            ("ops/s", lambda row: f"{row.mean_throughput:,.0f}"),
            ("viol-min", lambda row: f"{row.violation_minutes:.1f}"),
            ("p95-ms", lambda row: f"{row.p95_ms:.2f}"),
            ("p99-ms", lambda row: f"{row.p99_ms:.2f}"),
            ("cost", lambda row: f"{row.cost:.3f}"),
            ("mach-min", lambda row: f"{row.machine_minutes:.1f}"),
            ("ok", lambda row: "yes" if row.assertions_passed else "NO"),
        ],
    )
