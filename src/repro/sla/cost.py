"""Pricing models: machine-minutes to money.

The paper's Section 6.4 judges elasticity controllers on machine-time as
well as throughput; a :class:`PricingModel` turns the per-flavor
machine-minute ledger of a run into a :class:`CostEnvelope` -- the costed
summary scenario assertions (``CostCeiling``) and the MeT-vs-Tiramola
scorecard compare controllers on.

The ledger itself comes from two places: VMs the controller launched are
billed per flavor from the IaaS provider's uptime records
(:meth:`~repro.iaas.provider.OpenStackProvider.machine_minutes_by_flavor`),
and the pre-provisioned initial cluster -- nodes that exist before any
controller acts and never pass through the provider -- bills the remaining
harness-observed machine-minutes at the default RegionServer flavor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.iaas.flavors import REGIONSERVER_FLAVOR

__all__ = [
    "DEFAULT_PRICING",
    "ON_DEMAND_TIER",
    "PRICING_MODELS",
    "CostEnvelope",
    "FlavorCharge",
    "PricingModel",
    "machine_minute_ledger",
    "pricing_model",
]

#: The baseline pricing tier every model carries at multiplier 1.0.
ON_DEMAND_TIER = "on-demand"


@dataclass(frozen=True)
class PricingModel:
    """Per-flavor machine-minute rates (currency units per minute).

    ``rates`` is a tuple of ``(flavor_name, rate)`` pairs so pricing models
    stay hashable frozen data (scenario assertions embed them).  Flavors
    missing from the table bill at ``default_rate``.

    ``tiers`` and ``regions`` are multiplier tables applied on top of the
    flavor rate: a spot tier discounts it, an expensive region inflates it.
    Omitting ``tier``/``region`` (every pre-existing call site) bills the
    on-demand tier in the home region at multiplier 1.0, so the default
    path is unchanged.
    """

    name: str
    rates: tuple[tuple[str, float], ...]
    default_rate: float = 0.001
    tiers: tuple[tuple[str, float], ...] = ((ON_DEMAND_TIER, 1.0),)
    regions: tuple[tuple[str, float], ...] = (("default", 1.0),)

    def tier_multiplier(self, tier: str | None = None) -> float:
        """Multiplier of one pricing tier (``None`` = on-demand, 1.0)."""
        if tier is None:
            return 1.0
        for name, multiplier in self.tiers:
            if name == tier:
                return multiplier
        raise KeyError(
            f"unknown pricing tier {tier!r} in model {self.name!r};"
            f" available: {[name for name, _ in self.tiers]}"
        )

    def region_multiplier(self, region: str | None = None) -> float:
        """Multiplier of one region (``None`` = home region, 1.0)."""
        if region is None:
            return 1.0
        for name, multiplier in self.regions:
            if name == region:
                return multiplier
        raise KeyError(
            f"unknown region {region!r} in model {self.name!r};"
            f" available: {[name for name, _ in self.regions]}"
        )

    def rate_for(
        self,
        flavor: str,
        tier: str | None = None,
        region: str | None = None,
    ) -> float:
        """Rate (per machine-minute) of one flavor under a tier/region."""
        base = self.default_rate
        for name, rate in self.rates:
            if name == flavor:
                base = rate
                break
        return base * self.tier_multiplier(tier) * self.region_multiplier(region)

    def billing_label(self, tier: str | None = None, region: str | None = None) -> str:
        """Envelope label: bare model name on the default path."""
        label = self.name
        if tier is not None:
            label = f"{label}:{tier}"
        if region is not None:
            label = f"{label}@{region}"
        return label

    def cost_of(
        self,
        ledger: dict[str, float],
        tier: str | None = None,
        region: str | None = None,
    ) -> "CostEnvelope":
        """Cost a per-flavor machine-minute ledger into an envelope."""
        charges = tuple(
            FlavorCharge(
                flavor=flavor,
                machine_minutes=minutes,
                cost=minutes * self.rate_for(flavor, tier=tier, region=region),
            )
            for flavor, minutes in sorted(ledger.items())
            if minutes > 0.0
        )
        return CostEnvelope(pricing=self.billing_label(tier, region), charges=charges)


@dataclass(frozen=True)
class FlavorCharge:
    """Billed machine-minutes of one flavor."""

    flavor: str
    machine_minutes: float
    cost: float


@dataclass(frozen=True)
class CostEnvelope:
    """The costed resource summary of one run."""

    pricing: str
    charges: tuple[FlavorCharge, ...]

    @property
    def total(self) -> float:
        """Total run cost (currency units)."""
        return sum(charge.cost for charge in self.charges)

    @property
    def machine_minutes(self) -> float:
        """Total billed machine-minutes across flavors."""
        return sum(charge.machine_minutes for charge in self.charges)


#: Hourly-style rates expressed per machine-minute: generic OpenStack sizes
#: plus the paper's RegionServer VM.  Absolute values are arbitrary (any
#: consistent tariff ranks controllers identically); ratios follow size.
DEFAULT_PRICING = PricingModel(
    name="on-demand-v1",
    rates=(
        ("m1.small", 0.03 / 60.0),
        ("m1.medium", 0.06 / 60.0),
        ("m1.large", 0.12 / 60.0),
        (REGIONSERVER_FLAVOR.name, 0.05 / 60.0),
    ),
    default_rate=0.06 / 60.0,
    # Tier discounts follow typical cloud ratios: spot ~65% off with
    # preemption risk (the simulator doesn't model preemption yet, so spot
    # plans are "if nothing is reclaimed" floors), reserved ~38% off for a
    # committed term.
    tiers=(
        (ON_DEMAND_TIER, 1.0),
        ("spot", 0.35),
        ("reserved", 0.62),
    ),
    regions=(
        ("default", 1.0),
        ("us-east", 0.95),
        ("eu-west", 1.12),
    ),
)

#: Named pricing models assertions can reference without embedding tables.
PRICING_MODELS: dict[str, PricingModel] = {
    DEFAULT_PRICING.name: DEFAULT_PRICING,
}


def pricing_model(name: str) -> PricingModel:
    """Look up a registered pricing model by name."""
    try:
        return PRICING_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown pricing model {name!r}; available: {sorted(PRICING_MODELS)}"
        ) from None


def machine_minute_ledger(
    total_machine_minutes: float,
    provider_minutes_by_flavor: dict[str, float] | None = None,
    default_flavor: str = REGIONSERVER_FLAVOR.name,
) -> dict[str, float]:
    """Attribute a run's machine-minutes to IaaS flavors.

    Provider-launched VMs bill by their recorded per-flavor uptime; the
    remainder of the harness-observed machine-minutes is the pre-provisioned
    initial cluster, billed at ``default_flavor``.  Provider uptime can
    slightly exceed the node-online time the harness counted (a VM bills
    while its RegionServer restarts), in which case the base share clamps
    at zero rather than going negative.
    """
    ledger = dict(provider_minutes_by_flavor or {})
    provider_total = sum(ledger.values())
    base = max(0.0, total_machine_minutes - provider_total)
    if base > 0.0:
        ledger[default_flavor] = ledger.get(default_flavor, 0.0) + base
    return ledger
