"""Throughput-rate units SLO bounds can be declared in.

The simulator measures every tenant in key-value operations per second, but
a tenant's *promise* is naturally stated in its own unit -- a TPC-C tenant
is sold tpmC (new-order transactions per minute), not raw key-value ops.
This module owns the conversion registry: a unit maps a simulator ops/s
figure into the native unit, and the SLO evaluator converts each observed
sample before judging it against a floor declared natively.

Units are registered lazily (the tpmC converter lives with the TPC-C
transaction mix) so the SLA layer never imports workload packages at import
time.
"""

from __future__ import annotations

from typing import Callable

__all__ = [
    "OPS_PER_SECOND",
    "TPMC",
    "RATE_UNITS",
    "RATE_UNIT_INVERSES",
    "from_native_rate",
    "known_units",
    "to_native_rate",
]

#: The simulator's own unit (identity conversion).
OPS_PER_SECOND = "ops/s"
#: TPC-C new-order transactions per minute.
TPMC = "tpmC"


def _tpmc(ops_per_second: float) -> float:
    from repro.workloads.tpcc.driver import tpmc_from_ops_rate

    return tpmc_from_ops_rate(ops_per_second)


def _ops_from_tpmc(tpmc: float) -> float:
    from repro.workloads.tpcc.driver import ops_rate_from_tpmc

    return ops_rate_from_tpmc(tpmc)


#: Unit name -> converter from simulator ops/s into the native unit.
RATE_UNITS: dict[str, Callable[[float], float]] = {
    OPS_PER_SECOND: lambda ops_per_second: ops_per_second,
    TPMC: _tpmc,
}

#: Unit name -> converter from the native unit back into simulator ops/s.
#: The capacity planner accepts sizing targets in any registered unit and
#: works internally in ops/s, so every unit registers its exact inverse.
RATE_UNIT_INVERSES: dict[str, Callable[[float], float]] = {
    OPS_PER_SECOND: lambda native: native,
    TPMC: _ops_from_tpmc,
}


def known_units() -> list[str]:
    """Registered unit names, for error messages."""
    return sorted(RATE_UNITS)


def to_native_rate(unit: str, ops_per_second: float) -> float:
    """Convert a simulator ops/s rate into ``unit``."""
    try:
        converter = RATE_UNITS[unit]
    except KeyError:
        raise ValueError(
            f"unknown throughput unit {unit!r}; known units: {known_units()}"
        ) from None
    return converter(ops_per_second)


def from_native_rate(unit: str, native: float) -> float:
    """Convert a rate stated in ``unit`` back into simulator ops/s."""
    try:
        converter = RATE_UNIT_INVERSES[unit]
    except KeyError:
        raise ValueError(
            f"unknown throughput unit {unit!r}; known units: {known_units()}"
        ) from None
    return converter(native)
