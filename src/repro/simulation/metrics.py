"""Metric time series used by the simulator, the monitor and the reports.

A :class:`MetricSeries` is an append-only sequence of ``(timestamp, value)``
samples with simple aggregation helpers.  A :class:`MetricsRegistry` groups
series by ``(entity, metric)`` so the monitoring layer can pull e.g. the CPU
utilisation history of a node or the cumulative operation count of the
cluster.

Alongside the scalar channels the registry keeps *distribution* channels: a
:class:`DistributionSeries` is the same append-only shape but each sample is
a mergeable summary object (the simulator records one
:class:`~repro.simulation.latency.LatencySummary` per tenant per tick).
Window aggregation merges instead of averaging, so the SLA layer can ask
for the exact latency distribution of any half-open sampling window.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass
class MetricSeries:
    """Append-only (timestamp, value) series."""

    name: str
    timestamps: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, timestamp: float, value: float) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        if self.timestamps and timestamp < self.timestamps[-1]:
            raise ValueError(
                f"samples must be appended in time order: {timestamp} < {self.timestamps[-1]}"
            )
        self.timestamps.append(timestamp)
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.timestamps, self.values))

    def latest(self, default: float = 0.0) -> float:
        """Most recent value, or ``default`` if the series is empty."""
        return self.values[-1] if self.values else default

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Samples with ``start < timestamp <= end``.

        Half-open like :meth:`mean_between`, so chained windows
        (``window(0, 10)`` then ``window(10, 20)``) partition the series
        without double-counting the boundary tick.  The very first window
        of a series should therefore start strictly before its first
        timestamp (e.g. at ``-inf`` or any time before recording began).
        """
        lo = bisect_right(self.timestamps, start)
        hi = bisect_right(self.timestamps, end)
        return list(zip(self.timestamps[lo:hi], self.values[lo:hi]))

    def mean_between(self, start: float, end: float, default: float = 0.0) -> float:
        """Mean of the samples with ``start < timestamp <= end``.

        Allocation-free window aggregation for per-tick series (the SLA
        layer averages each tenant's tick-level latency/throughput over a
        sampling window).  The window is half-open so chained windows
        partition the series without double-counting boundary ticks.
        ``default`` is returned when the window holds no samples.
        """
        lo = bisect_right(self.timestamps, start)
        hi = bisect_right(self.timestamps, end)
        if hi <= lo:
            return default
        total = 0.0
        values = self.values
        for index in range(lo, hi):
            total += values[index]
        return total / (hi - lo)

    def last_n(self, n: int) -> list[float]:
        """The last ``n`` values (fewer if the series is shorter)."""
        if n <= 0:
            return []
        return self.values[-n:]

    def mean(self, last_n: int | None = None) -> float:
        """Arithmetic mean of the whole series or of its last ``last_n`` values."""
        values = self.values if last_n is None else self.last_n(last_n)
        if not values:
            return 0.0
        return sum(values) / len(values)

    def maximum(self, last_n: int | None = None) -> float:
        """Maximum of the whole series or of its last ``last_n`` values."""
        values = self.values if last_n is None else self.last_n(last_n)
        if not values:
            return 0.0
        return max(values)

    def total(self) -> float:
        """Sum of all recorded values."""
        return sum(self.values)

    def cumulative(self) -> list[float]:
        """Running sum of the values, aligned with :attr:`timestamps`."""
        out: list[float] = []
        acc = 0.0
        for value in self.values:
            acc += value
            out.append(acc)
        return out


@dataclass
class DistributionSeries:
    """Append-only (timestamp, summary) series of mergeable distributions.

    Values are summary objects exposing ``merge(other)`` and a no-argument
    constructor (duck-typed so this module stays independent of the latency
    module); the event kernel's macro-tick appends the *same* frozen summary
    object at many timestamps, which window merges treat identically to the
    per-tick fresh summaries the fast kernel records.
    """

    name: str
    timestamps: list[float] = field(default_factory=list)
    values: list = field(default_factory=list)

    def record(self, timestamp: float, summary) -> None:
        """Append a sample; timestamps must be non-decreasing."""
        if self.timestamps and timestamp < self.timestamps[-1]:
            raise ValueError(
                f"samples must be appended in time order: {timestamp} < {self.timestamps[-1]}"
            )
        self.timestamps.append(timestamp)
        self.values.append(summary)

    def __len__(self) -> int:
        return len(self.values)

    def window(self, start: float, end: float) -> list:
        """Summaries with ``start < timestamp <= end`` (half-open, like
        :meth:`MetricSeries.window`)."""
        lo = bisect_right(self.timestamps, start)
        hi = bisect_right(self.timestamps, end)
        return self.values[lo:hi]

    def merged_between(self, start: float, end: float):
        """Exact merge of the window's summaries (``None`` when empty)."""
        entries = self.window(start, end)
        if not entries:
            return None
        out = type(entries[0])()
        for summary in entries:
            out.merge(summary)
        return out

    def merged(self):
        """Exact merge of the whole series (``None`` when empty)."""
        if not self.values:
            return None
        return self.merged_between(float("-inf"), self.timestamps[-1])


class MetricsRegistry:
    """Groups metric series by entity and metric name."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, str], MetricSeries] = {}
        self._distributions: dict[tuple[str, str], DistributionSeries] = {}

    def series(self, entity: str, metric: str) -> MetricSeries:
        """Return (creating if needed) the series for ``entity``/``metric``."""
        key = (entity, metric)
        if key not in self._series:
            self._series[key] = MetricSeries(name=f"{entity}.{metric}")
        return self._series[key]

    def record(self, entity: str, metric: str, timestamp: float, value: float) -> None:
        """Record one sample."""
        self.series(entity, metric).record(timestamp, value)

    def record_many(
        self, timestamp: float, samples: Iterable[tuple[str, str, float]]
    ) -> None:
        """Record many ``(entity, metric, value)`` samples at one timestamp.

        Batch variant of :meth:`record` for the simulator's per-tick metric
        flush: one pass, inlined appends, no per-sample method dispatch.
        """
        series_map = self._series
        for entity, metric, value in samples:
            key = (entity, metric)
            series = series_map.get(key)
            if series is None:
                series = series_map[key] = MetricSeries(name=f"{entity}.{metric}")
            timestamps = series.timestamps
            if timestamps and timestamp < timestamps[-1]:
                raise ValueError(
                    f"samples must be appended in time order: {timestamp} < {timestamps[-1]}"
                )
            timestamps.append(timestamp)
            series.values.append(float(value))

    def record_many_repeated(
        self,
        timestamps: list[float],
        samples: Iterable[tuple[str, str, float]],
    ) -> None:
        """Record the same ``(entity, metric, value)`` batch at many times.

        Backbone of the event kernel's macro-tick: a quiescent stretch emits
        identical per-tick values, so each series gets ``timestamps`` (all
        of them, in order) appended with its value repeated -- exactly the
        samples ``len(timestamps)`` :meth:`record_many` calls would have
        produced, without re-walking the sample list per tick.
        """
        if not timestamps:
            return
        count = len(timestamps)
        first = timestamps[0]
        series_map = self._series
        for entity, metric, value in samples:
            key = (entity, metric)
            series = series_map.get(key)
            if series is None:
                series = series_map[key] = MetricSeries(name=f"{entity}.{metric}")
            existing = series.timestamps
            if existing and first < existing[-1]:
                raise ValueError(
                    f"samples must be appended in time order: {first} < {existing[-1]}"
                )
            existing.extend(timestamps)
            series.values.extend([float(value)] * count)

    def distribution_series(self, entity: str, metric: str) -> DistributionSeries:
        """Return (creating if needed) the distribution series for a key."""
        key = (entity, metric)
        if key not in self._distributions:
            self._distributions[key] = DistributionSeries(name=f"{entity}.{metric}")
        return self._distributions[key]

    def distribution(self, entity: str, metric: str) -> DistributionSeries | None:
        """The distribution series for a key, or ``None`` when never recorded."""
        return self._distributions.get((entity, metric))

    def record_distributions(
        self, timestamp: float, samples: Iterable[tuple[str, str, object]]
    ) -> None:
        """Record many ``(entity, metric, summary)`` samples at one timestamp."""
        series_map = self._distributions
        for entity, metric, summary in samples:
            key = (entity, metric)
            series = series_map.get(key)
            if series is None:
                series = series_map[key] = DistributionSeries(name=f"{entity}.{metric}")
            timestamps = series.timestamps
            if timestamps and timestamp < timestamps[-1]:
                raise ValueError(
                    f"samples must be appended in time order: {timestamp} < {timestamps[-1]}"
                )
            timestamps.append(timestamp)
            series.values.append(summary)

    def record_distributions_repeated(
        self,
        timestamps: list[float],
        samples: Iterable[tuple[str, str, object]],
    ) -> None:
        """Record the same ``(entity, metric, summary)`` batch at many times.

        Distribution analogue of :meth:`record_many_repeated` for the event
        kernel's macro-tick: the *same* summary object is appended at every
        timestamp (references, not copies), so a window merge over the span
        is bit-identical to merging the per-tick summaries ``len(timestamps)``
        individual ticks would have recorded.
        """
        if not timestamps:
            return
        count = len(timestamps)
        first = timestamps[0]
        series_map = self._distributions
        for entity, metric, summary in samples:
            key = (entity, metric)
            series = series_map.get(key)
            if series is None:
                series = series_map[key] = DistributionSeries(name=f"{entity}.{metric}")
            existing = series.timestamps
            if existing and first < existing[-1]:
                raise ValueError(
                    f"samples must be appended in time order: {first} < {existing[-1]}"
                )
            existing.extend(timestamps)
            series.values.extend([summary] * count)

    def entities(self) -> list[str]:
        """Distinct entity names with at least one series."""
        return sorted({entity for entity, _ in self._series})

    def metrics_for(self, entity: str) -> list[str]:
        """Metric names recorded for ``entity``."""
        return sorted(metric for ent, metric in self._series if ent == entity)

    def latest(self, entity: str, metric: str, default: float = 0.0) -> float:
        """Latest value for ``entity``/``metric`` (``default`` when absent)."""
        key = (entity, metric)
        if key not in self._series:
            return default
        return self._series[key].latest(default)

    def drop_entity(self, entity: str) -> None:
        """Remove all series belonging to ``entity`` (e.g. a removed node)."""
        for key in [key for key in self._series if key[0] == entity]:
            del self._series[key]
        for key in [key for key in self._distributions if key[0] == entity]:
            del self._distributions[key]

    def items(self) -> Iterable[tuple[tuple[str, str], MetricSeries]]:
        """All ``((entity, metric), series)`` pairs."""
        return self._series.items()
