"""Deterministic, mergeable latency distribution summaries.

The scalar-mean latency path loses exactly the signal MeT and Tiramola
disagree about: *tail* behaviour.  A :class:`LatencySummary` is the
distribution-shaped replacement -- a fixed-bin, log-spaced histogram with

* **O(1) record**: a value lands in ``floor(log10(v / MIN_MS) * BINS_PER_DECADE)``;
* **exact merge**: counts are integers, so merging is integer addition --
  bit-exact, associative and commutative regardless of merge order;
* **quantile-by-rank** with a declared error bound: ``quantile(q)`` returns
  the geometric midpoint of the smallest bin whose cumulative count reaches
  rank ``q``, so the result is within one bin width (a factor of
  ``10 ** (1 / BINS_PER_DECADE)``, ~12% at 20 bins/decade) of the true
  rank-``q`` value -- a *rank-error <= bin-width* guarantee;
* **no wall-clock or random state**: a summary is a pure function of the
  recorded (value, weight) atoms, so byte-reproducibility of the simulator
  survives the distribution channel end to end.

Fractional weights (a binding's ``region_weight * op_fraction`` products)
are quantised to integer counts at ``WEIGHT_SCALE`` resolution before they
enter the histogram.  Quantising at *record* time -- rather than keeping
float counts -- is what makes merge exact and makes ``scale(k)`` (an
integer multiply) bit-identical to ``k``-fold self-merge, which is the
property the event kernel's macro-tick fast-forward leans on.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "BINS_PER_DECADE",
    "LatencySummary",
    "MAX_BIN_INDEX",
    "MIN_MS",
    "WEIGHT_SCALE",
    "bin_index",
    "bin_value_ms",
    "quantise_weight",
]

#: Histogram resolution: bins per decade of latency.  The knob trading
#: quantile accuracy (relative bin width = ``10 ** (1/BINS_PER_DECADE)``,
#: ~12.2% at 20) against per-summary memory (sparse dict entries).  See
#: PERFORMANCE.md before changing: goldens encode bin indices, so any change
#: regenerates the whole corpus.
BINS_PER_DECADE = 20

#: Lower edge of bin 0 (milliseconds).  Everything at or below it lands in
#: bin 0; sub-microsecond latencies carry no SLA signal.
MIN_MS = 1e-3

#: Bins span MIN_MS .. 10**(MAX/BPD) * MIN_MS; 180 bins cover 1e-3..1e6 ms,
#: comfortably past the 500 ms unavailable-region sentinel.
MAX_BIN_INDEX = 9 * BINS_PER_DECADE

#: Integer counts per unit of weight.  A power of two, so quantisation is
#: one float multiply plus a round, and any weight down to ~1.5e-5 still
#: contributes at least one count (smaller positive weights are floored to
#: a single count rather than vanishing).
WEIGHT_SCALE = 1 << 16

_LOG_MIN = math.log10(MIN_MS)


def bin_index(value_ms: float) -> int:
    """Histogram bin of a latency value (clamped to the covered range)."""
    if value_ms <= MIN_MS:
        return 0
    index = int((math.log10(value_ms) - _LOG_MIN) * BINS_PER_DECADE)
    return index if index < MAX_BIN_INDEX else MAX_BIN_INDEX


def bin_value_ms(index: int) -> float:
    """Representative latency of a bin: its geometric midpoint."""
    return 10.0 ** (_LOG_MIN + (index + 0.5) / BINS_PER_DECADE)


def quantise_weight(weight: float) -> int:
    """Integer count for a fractional weight (positive weights never vanish)."""
    count = int(round(weight * WEIGHT_SCALE))
    if count <= 0:
        return 1 if weight > 0.0 else 0
    return count


class LatencySummary:
    """Sparse fixed-bin log-spaced latency histogram with integer counts."""

    __slots__ = ("counts",)

    # Lint rule D6: these attributes are mergeable integer channels --
    # merge()/scale() are bit-exact only while every write stays integral,
    # so the static pass flags any float flowing into them.
    __mergeable_integer_channels__ = ("counts",)

    def __init__(self, counts: dict[int, int] | None = None) -> None:
        #: bin index -> integer count (multiples of 1/WEIGHT_SCALE weight).
        self.counts: dict[int, int] = counts if counts is not None else {}

    # -- recording ------------------------------------------------------- #
    def record(self, value_ms: float, weight: float = 1.0) -> None:
        """Record one latency atom with a (possibly fractional) weight."""
        count = quantise_weight(weight)
        if count:
            index = bin_index(value_ms)
            counts = self.counts
            counts[index] = counts.get(index, 0) + count

    def add_count(self, index: int, count: int) -> None:
        """Add pre-quantised counts to a bin (the solvers' hot path)."""
        counts = self.counts
        counts[index] = counts.get(index, 0) + count

    # -- combination ----------------------------------------------------- #
    def merge(self, other: "LatencySummary") -> "LatencySummary":
        """Fold ``other`` into this summary in place (exact; returns self)."""
        counts = self.counts
        for index, count in other.counts.items():
            counts[index] = counts.get(index, 0) + count
        return self

    @classmethod
    def merged(cls, summaries: Iterable["LatencySummary"]) -> "LatencySummary":
        """A fresh summary holding the exact sum of ``summaries``."""
        out = cls()
        for summary in summaries:
            out.merge(summary)
        return out

    def scale(self, k: int) -> "LatencySummary":
        """A new summary with every count multiplied by ``k``.

        Integer multiplication, so ``scale(k)`` is bit-identical to merging
        ``k`` copies of this summary -- the macro-tick equivalence the event
        kernel's quiescence skipping relies on.
        """
        if not isinstance(k, int) or k < 0:
            raise ValueError(f"scale factor must be a non-negative int, got {k!r}")
        if k == 0:
            # Keep the sparse invariant (no zero-count bins): scaling by 0
            # is the empty summary, exactly like merging zero copies.
            return LatencySummary()
        return LatencySummary({index: count * k for index, count in self.counts.items()})

    def copy(self) -> "LatencySummary":
        """An independent copy (mutating it leaves this summary intact)."""
        return LatencySummary(dict(self.counts))

    # -- queries --------------------------------------------------------- #
    @property
    def total_count(self) -> int:
        """Total quantised counts recorded."""
        return sum(self.counts.values())

    @property
    def total_weight(self) -> float:
        """Total recorded weight (counts / WEIGHT_SCALE)."""
        return self.total_count / WEIGHT_SCALE

    def __bool__(self) -> bool:
        return bool(self.counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencySummary):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:
        return f"LatencySummary(bins={len(self.counts)}, total={self.total_count})"

    def quantile(self, q: float) -> float:
        """Rank-``q`` latency (ms): midpoint of the bin holding that rank.

        Monotone in ``q``.  The true rank-``q`` atom lies inside the
        returned bin, so the result is within one bin width of it (relative
        error at most ``10 ** (1 / BINS_PER_DECADE)``).  0.0 for an empty
        summary.
        """
        counts = self.counts
        if not counts:
            return 0.0
        total = sum(counts.values())
        target = q * total
        cumulative = 0
        for index in sorted(counts):
            cumulative += counts[index]
            if cumulative >= target:
                return bin_value_ms(index)
        return bin_value_ms(max(counts))

    # -- serialisation --------------------------------------------------- #
    def to_pairs(self) -> list[list[int]]:
        """Compact sparse form: ``[[bin, count], ...]`` sorted by bin."""
        return [[index, self.counts[index]] for index in sorted(self.counts)]

    @classmethod
    def from_pairs(cls, pairs: Iterable[Iterable[int]]) -> "LatencySummary":
        """Rebuild a summary from :meth:`to_pairs` output."""
        out = cls()
        for index, count in pairs:
            out.add_count(int(index), int(count))
        return out
