"""Fixed-point solver strategies for :class:`ClusterSimulator`.

The simulator's tick loop needs, per tick, the closed-loop throughput fixed
point: per-binding achieved throughput, per-node model results, per-region
achieved rates, per-binding mean latency and per-binding latency
distribution summaries.  Three strategies produce it:

* :class:`ReferenceSolver` -- the seed behaviour: full region scans, fresh
  allocations and a fixed iteration count.  Baseline for benchmarks and the
  kernel equivalence regression.
* :class:`FastSolver` -- the optimised scalar kernel: incremental
  node->regions index, memoised :class:`NodeEvaluator` contexts, slot-indexed
  rate rows and adaptive convergence.
* :class:`EventSolver` -- the event-driven kernel.  Extends the fast solver
  with (a) *solution reuse*: a tick-stable, insert-free fixed point is
  replayed verbatim until a dirty flag (any simulator mutation), a
  background-I/O change or an internal event invalidates it; and (b) a
  *vectorised* solve:
  per-region demand/cost rows live in contiguous numpy arrays grouped by
  node, so one ``np.add.reduceat`` aggregates all nodes per fixed-point
  iteration.  Falls back to the scalar fast path when numpy is unavailable
  or the cluster is small enough that array overhead would dominate.

Strategies deliberately share the simulator's topology caches (region
index, assignment versions); solver-private state (evaluator memos, rate
contexts, cached solutions, vector contexts) lives on the strategy and is
invalidated through :meth:`SolverStrategy.invalidate` /
:meth:`SolverStrategy.forget_node`, which every simulator mutator calls.
"""

from __future__ import annotations

from operator import attrgetter

from repro.simulation.hardware import MB
from repro.simulation.latency import LatencySummary, bin_index, quantise_weight
from repro.simulation.perfmodel import (
    CPU_READ_HIT_MS,
    CPU_READ_MISS_MS,
    CPU_RPC_OVERHEAD_MS,
    CPU_SCAN_PER_BLOCK_MS,
    CPU_SCAN_PER_RECORD_MS,
    CPU_SCAN_SETUP_MS,
    CPU_WRITE_COMPACTION_MS_PER_AMP,
    CPU_WRITE_MS,
    CACHE_EFFICIENCY,
    MEMSTORE_REFERENCE_FRACTION,
    NodeEvaluator,
    NodeLoadResult,
    OP_TYPES,
    REMOTE_READ_IOPS_FACTOR,
    REMOTE_READ_LATENCY_FACTOR,
    RegionLoadProfile,
    ServiceDemand,
    WRITE_AMP_BASE,
    WRITE_AMP_MEMSTORE_FACTOR,
    _bottleneck,
)

try:  # numpy is optional: the event kernel degrades to the scalar fast path.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less hosts
    _np = None

#: Kernel implementations (the simulator re-exports these).
KERNEL_FAST = "fast"
KERNEL_REFERENCE = "reference"
KERNEL_EVENT = "event"
KERNELS = (KERNEL_FAST, KERNEL_REFERENCE, KERNEL_EVENT)

#: Hosted-region count below which the event kernel's numpy path loses to
#: the scalar row loop (array setup dominates tiny clusters).
VECTOR_MIN_REGIONS = 64

_REGION_SEQ = attrgetter("_seq")

#: Operation name -> slot in the 5-float rate rows (``OP_TYPES`` order).
_OP_SLOT = {op: slot for slot, op in enumerate(OP_TYPES)}
#: Zero template for resetting rate rows via slice assignment.
_ZERO_RATES = (0.0, 0.0, 0.0, 0.0, 0.0)

#: Read-path unit CPU costs (see NodeEvaluator row layout): base per read
#: regardless of cache outcome, and the extra paid per miss.
_R_CPU_BASE = CPU_RPC_OVERHEAD_MS + CPU_READ_HIT_MS
_R_CPU_MISS_DELTA = CPU_READ_MISS_MS - CPU_READ_HIT_MS

#: The solver result tuple: (achieved throughputs, node results,
#: region rates, binding latencies, binding latency summaries).
SolveResult = tuple[
    dict[str, float],
    dict[str, object],
    dict[str, dict[str, float]],
    dict[str, float],
    dict[str, LatencySummary],
]

#: Latency (ms) charged to requests against an unavailable region (node
#: restarting): requests block and retry.  Mirrors the scalar kernels'
#: inline ``weight * 500.0`` term.
UNAVAILABLE_MS = 500.0


def binding_summaries(
    bindings: dict,
    region_node: dict[str, str | None],
    node_latencies: dict[str, dict[str, float]],
) -> dict[str, LatencySummary]:
    """Per-binding latency distributions at one solved fixed point.

    Shared by all three kernels so the distribution channel cannot drift
    between them: each kernel hands over its final per-node per-op latency
    dicts and the region->node map, and the atoms recorded here are exactly
    the ``region_weight * op_fraction`` terms of the scalar mean -- the
    summary's weighted mean and ``binding_latency`` agree by construction,
    while the summary keeps the shape the mean throws away.

    Latencies are binned once per node (every region of a node shares its
    latency dict), so cost is O(nodes * ops + bindings * regions * ops)
    integer work per solve.
    """
    node_bins: dict[str, dict[str, int]] = {}
    sentinel_bin = bin_index(UNAVAILABLE_MS)
    fallback_bin = bin_index(1.0)  # unknown op: binding_latency's 1.0 ms default
    summaries: dict[str, LatencySummary] = {}
    for name, binding in bindings.items():
        summary = LatencySummary()
        counts = summary.counts
        mix = binding.op_mix.items()
        for region_id, weight in binding.region_weights.items():
            node_name = region_node.get(region_id)
            if node_name is None:
                for _, fraction in mix:
                    count = quantise_weight(weight * fraction)
                    if count:
                        counts[sentinel_bin] = counts.get(sentinel_bin, 0) + count
                continue
            bins = node_bins.get(node_name)
            if bins is None:
                bins = node_bins[node_name] = {
                    op: bin_index(value)
                    for op, value in node_latencies[node_name].items()
                }
            for op, fraction in mix:
                index = bins.get(op, fallback_bin)
                count = quantise_weight(weight * fraction)
                if count:
                    counts[index] = counts.get(index, 0) + count
        summaries[name] = summary
    return summaries


class SolverStrategy:
    """Interface between the simulator's tick loop and one kernel."""

    kernel: str = "?"

    def __init__(self, simulator) -> None:
        self._sim = simulator
        #: Whether the last solve's fixed point converged below tolerance
        #: (the reference kernel has no convergence test and reports False).
        self.last_converged = False

    def regions_on(self, node_name: str) -> list:
        """Regions assigned to ``node_name`` in region-creation order."""
        raise NotImplementedError

    def solve(self, compaction_bg: dict[str, float]) -> SolveResult:
        """Solve the closed-loop fixed point for this tick."""
        raise NotImplementedError

    def reuse(self, compaction_bg: dict[str, float]) -> SolveResult | None:
        """A cached solution valid for this tick, or ``None`` to solve."""
        return None

    def reuse_ready(self) -> bool:
        """Whether the next tick could reuse the cached solution."""
        return False

    def invalidate(self) -> None:
        """Drop any cached solution (called by every simulator mutator)."""

    def forget_node(self, name: str) -> None:
        """Drop per-node solver state when a node is removed."""


# --------------------------------------------------------------------- #
# reference kernel (seed behaviour)
# --------------------------------------------------------------------- #
class ReferenceSolver(SolverStrategy):
    """The seed's solver: full scans, fresh allocations, fixed iterations."""

    kernel = KERNEL_REFERENCE

    def regions_on(self, node_name: str) -> list:
        sim = self._sim
        return [r for r in sim.regions.values() if r.node == node_name]

    def _region_profiles(self, node, offered) -> list[RegionLoadProfile]:
        profiles: list[RegionLoadProfile] = []
        for region in self.regions_on(node.name):
            rates = offered.get(region.region_id, {})
            profiles.append(
                RegionLoadProfile(
                    region_id=region.region_id,
                    size_bytes=region.size_bytes,
                    locality=region.locality,
                    record_size=region.record_size,
                    scan_length=region.scan_length,
                    hot_data_fraction=region.hot_data_fraction,
                    hot_request_fraction=region.hot_request_fraction,
                    read_rate=rates.get("read", 0.0),
                    update_rate=rates.get("update", 0.0),
                    insert_rate=rates.get("insert", 0.0),
                    scan_rate=rates.get("scan", 0.0),
                    rmw_rate=rates.get("read_modify_write", 0.0),
                )
            )
        return profiles

    def _offered_rates(self, throughputs: dict[str, float]) -> dict[str, dict[str, float]]:
        """Per-region offered rates implied by per-binding throughputs."""
        offered: dict[str, dict[str, float]] = {}
        for name, binding in self._sim.bindings.items():
            for load in binding.offered_loads(throughputs.get(name, 0.0)):
                bucket = offered.setdefault(load.region_id, {})
                for op, rate in load.rates.items():
                    bucket[op] = bucket.get(op, 0.0) + rate
        return offered

    def _evaluate_nodes(self, offered, compaction_bg):
        """Evaluate online nodes; returns results, region latencies, scales
        and the region -> hosting-node map of the evaluated assignment."""
        sim = self._sim
        node_results: dict[str, object] = {}
        region_latencies: dict[str, dict[str, float]] = {}
        region_scale: dict[str, float] = {}
        region_node: dict[str, str] = {}
        for node in sim.nodes.values():
            if not node.online:
                continue
            profiles = self._region_profiles(node, offered)
            result = sim._model_for(node).evaluate_node(
                node.config, profiles, compaction_bg.get(node.name, 0.0)
            )
            node_results[node.name] = result
            scale = 1.0 if result.utilization <= 1.0 else 1.0 / result.utilization
            for profile in profiles:
                region_latencies[profile.region_id] = result.per_op_latency_ms
                region_scale[profile.region_id] = scale
                region_node[profile.region_id] = node.name
        return node_results, region_latencies, region_scale, region_node

    def solve(self, compaction_bg: dict[str, float], iterations: int = 10) -> SolveResult:
        sim = self._sim
        throughputs = {
            name: sim._binding_throughput.get(name, binding.threads * 50.0)
            for name, binding in sim.bindings.items()
        }
        region_latencies: dict[str, dict[str, float]] = {}
        for _ in range(iterations):
            offered = self._offered_rates(throughputs)
            _, region_latencies, _, _ = self._evaluate_nodes(offered, compaction_bg)
            new_throughputs: dict[str, float] = {}
            for name, binding in sim.bindings.items():
                latency = binding.mean_latency(region_latencies)
                target = binding.max_throughput(latency)
                previous = throughputs[name]
                new_throughputs[name] = 0.5 * previous + 0.5 * target
            throughputs = new_throughputs

        offered = self._offered_rates(throughputs)
        node_results, region_latencies, region_scale, region_node = (
            self._evaluate_nodes(offered, compaction_bg)
        )
        achieved: dict[str, float] = {}
        region_rates: dict[str, dict[str, float]] = {}
        binding_latencies: dict[str, float] = {}
        for name, binding in sim.bindings.items():
            total = 0.0
            for load in binding.offered_loads(throughputs.get(name, 0.0)):
                scale = region_scale.get(load.region_id, 0.0)
                bucket = region_rates.setdefault(load.region_id, {})
                for op, rate in load.rates.items():
                    bucket[op] = bucket.get(op, 0.0) + rate * scale
                total += load.total * scale
            achieved[name] = total
            binding_latencies[name] = binding.mean_latency(region_latencies)
        if getattr(sim, "record_latency_distributions", True):
            summaries = binding_summaries(
                sim.bindings,
                region_node,
                {name: result.per_op_latency_ms for name, result in node_results.items()},
            )
        else:
            summaries = {}
        return achieved, node_results, region_rates, binding_latencies, summaries


# --------------------------------------------------------------------- #
# fast kernel (optimised scalar)
# --------------------------------------------------------------------- #
class FastSolver(SolverStrategy):
    """Memoised evaluators + slot-indexed rate rows + adaptive convergence."""

    kernel = KERNEL_FAST

    def __init__(self, simulator) -> None:
        super().__init__(simulator)
        #: Per-node memo of (key, NodeEvaluator); the key is (config,
        #: hardware, assignment version) so config/assignment changes
        #: invalidate explicitly while size/locality drift is refreshed.
        self._node_evaluators: dict[str, tuple[object, NodeEvaluator]] = {}
        self._rate_context_cache: tuple[int, dict, list] | None = None

    def forget_node(self, name: str) -> None:
        self._node_evaluators.pop(name, None)

    def regions_on(self, node_name: str) -> list:
        sim = self._sim
        bucket = sim._regions_by_node.get(node_name)
        if not bucket:
            return []
        # The sorted order only changes when the bucket's membership does,
        # which is exactly when the assignment version is bumped.
        version = sim._assignment_versions.get(node_name, 0)
        cached = sim._sorted_regions_cache.get(node_name)
        if cached is None or cached[0] != version:
            cached = (version, sorted(bucket.values(), key=_REGION_SEQ))
            sim._sorted_regions_cache[node_name] = cached
        return list(cached[1])

    def _tick_node_context(self) -> list[tuple[str, NodeEvaluator]]:
        """Per-online-node memoised evaluators, refreshed for drift."""
        sim = self._sim
        context = []
        memo = self._node_evaluators
        versions = sim._assignment_versions
        for node in sim.nodes.values():
            if not node.online:
                continue
            name = node.name
            key = (node.config, node.hardware, versions.get(name, 0))
            cached = memo.get(name)
            hosted = self.regions_on(name)
            if cached is not None and cached[0] == key:
                evaluator = cached[1]
                evaluator.refresh(hosted)
            else:
                evaluator = NodeEvaluator(sim._model_for(node), node.config, hosted)
                memo[name] = (key, evaluator)
            context.append((name, evaluator))
        return context

    def _tick_rate_context(self):
        """Slot-indexed offered-rate rows plus per-binding unit rates.

        ``offered_loads(t)`` is linear in ``t``, so the per-region per-op
        rates implied by a set of binding throughputs are ``t * unit``.
        Rates live in one 5-slot list per region (``OP_TYPES`` order); the
        whole structure is cached until a workload is attached, detached or
        re-mixed, and only the floats change per iteration.
        """
        sim = self._sim
        cached = self._rate_context_cache
        if cached is not None and cached[0] == sim._workloads_version:
            return cached[1], cached[2]
        rate_rows: dict[str, list[float]] = {}
        contribs = []
        op_index = _OP_SLOT
        for name, binding in sim.bindings.items():
            entries = []
            for region_id, units in binding.unit_rates():
                row = rate_rows.get(region_id)
                if row is None:
                    row = rate_rows[region_id] = [0.0, 0.0, 0.0, 0.0, 0.0]
                entries.append(
                    (
                        region_id,
                        row,
                        [(op, op_index[op], unit) for op, unit in units],
                    )
                )
            contribs.append((name, entries))
        self._rate_context_cache = (sim._workloads_version, rate_rows, contribs)
        return rate_rows, contribs

    def solve(self, compaction_bg: dict[str, float]) -> SolveResult:
        sim = self._sim
        bindings = sim.bindings
        throughputs = {
            name: sim._binding_throughput.get(name, binding.threads * 50.0)
            for name, binding in bindings.items()
        }
        rate_rows, contribs = self._tick_rate_context()
        node_context = [
            (
                name,
                evaluator,
                [rate_rows.get(rid) for rid in evaluator.region_ids],
                compaction_bg.get(name, 0.0),
            )
            for name, evaluator in self._tick_node_context()
        ]
        # Region -> hosting node is tick-constant; bindings aggregate
        # latencies per *node* instead of per region.
        region_node: dict[str, str] = {}
        for name, evaluator, _, _ in node_context:
            for region_id in evaluator.region_ids:
                region_node[region_id] = name
        binding_terms = {
            name: (
                [
                    (weight, region_node.get(region_id))
                    for region_id, weight in binding.region_weights.items()
                ],
                list(binding.op_mix.items()),
            )
            for name, binding in bindings.items()
        }
        rate_values = list(rate_rows.values())
        node_latencies: dict[str, dict[str, float]] = {}

        zeros = _ZERO_RATES

        def fill_rates() -> None:
            for row in rate_values:
                row[:] = zeros
            for name, entries in contribs:
                throughput = throughputs[name]
                for _, row, slot_units in entries:
                    for _, slot, unit in slot_units:
                        row[slot] += throughput * unit

        def evaluate_latencies() -> None:
            node_latencies.clear()
            for name, evaluator, refs, background in node_context:
                node_latencies[name] = evaluator.latencies(refs, background)

        def binding_latency(terms, mix, latencies_by_node) -> float:
            # Same math as WorkloadBinding.mean_latency: the per-region
            # latency dict is the hosting node's, so the per-op mix dot
            # product is computed once per node and reused per region.
            cache: dict[str, float] = {}
            total = 0.0
            for weight, node_name in terms:
                if node_name is None:
                    # Region currently unavailable (node restarting):
                    # requests block and retry, modelled as a large latency.
                    total += weight * 500.0
                    continue
                mixed = cache.get(node_name)
                if mixed is None:
                    latencies = latencies_by_node[node_name]
                    mixed = 0.0
                    for op, fraction in mix:
                        mixed += fraction * latencies.get(op, 1.0)
                    cache[node_name] = mixed
                total += weight * mixed
            return total

        converged = True
        if bindings:
            tolerance = sim.fixed_point_tolerance
            for _ in range(sim.fixed_point_max_iterations):
                fill_rates()
                evaluate_latencies()
                converged = True
                for name, binding in bindings.items():
                    terms, mix = binding_terms[name]
                    latency = binding_latency(terms, mix, node_latencies)
                    target = binding.max_throughput(latency)
                    previous = throughputs[name]
                    updated = 0.5 * previous + 0.5 * target
                    throughputs[name] = updated
                    if abs(updated - previous) > tolerance * max(
                        abs(previous), abs(updated), 1.0
                    ):
                        converged = False
                if converged:
                    break
        self.last_converged = converged

        fill_rates()
        node_results: dict[str, object] = {}
        node_scale: dict[str, float] = {}
        for name, evaluator, refs, background in node_context:
            result = evaluator.evaluate_rates(refs, background)
            node_results[name] = result
            node_scale[name] = (
                1.0 if result.utilization <= 1.0 else 1.0 / result.utilization
            )

        # Per-binding latency at the *final* state, from the full node
        # results (same latency dicts the intermediate iterations used).
        final_latencies = {
            name: result.per_op_latency_ms for name, result in node_results.items()
        }
        binding_latencies = {
            name: binding_latency(*binding_terms[name], final_latencies)
            for name in bindings
        }

        achieved: dict[str, float] = {}
        region_rates: dict[str, dict[str, float]] = {}
        for name, entries in contribs:
            throughput = throughputs[name]
            total = 0.0
            for region_id, _, slot_units in entries:
                scale = node_scale.get(region_node.get(region_id), 0.0)
                bucket = region_rates.setdefault(region_id, {})
                load_total = 0.0
                for op, _, unit in slot_units:
                    rate = throughput * unit
                    bucket[op] = bucket.get(op, 0.0) + rate * scale
                    load_total += rate
                total += load_total * scale
            achieved[name] = total
        if getattr(sim, "record_latency_distributions", True):
            summaries = binding_summaries(bindings, region_node, final_latencies)
        else:
            summaries = {}
        return achieved, node_results, region_rates, binding_latencies, summaries


# --------------------------------------------------------------------- #
# event kernel (solution reuse + vectorised solves)
# --------------------------------------------------------------------- #
class _VectorContext:
    """Columnar view of the online cluster for the vectorised solver.

    Regions are laid out contiguously grouped by hosting node (nodes in
    simulator insertion order, regions in creation order within a node) so
    ``np.add.reduceat`` over ``offsets`` yields per-node sums in exactly the
    order the scalar kernel accumulates them.  Static columns are built once
    per (workloads, structure) signature; size/locality-dependent columns
    are refreshed cheaply every solve (insert growth, moves, compactions).
    """

    __slots__ = (
        "regions",
        "node_names",
        "empty_nodes",
        "offsets",
        "node_idx",
        "region_node",
        # per-node parameter arrays (length N)
        "cache_eff",
        "cpu_budget",
        "iops_budget",
        "bytes_budget",
        "net_budget",
        "disk_ms",
        "blocks0",
        "scan_len0",
        "cache_bytes_mem",
        "memstore",
        "heap_bytes",
        "memory_bytes",
        "background",
        # per-region static columns (length R)
        "hot_frac",
        "hot_req_frac",
        "blockR",
        "blocksR",
        "w_cpu",
        "w_iops",
        "w_bytes",
        "w_net",
        "s_cpu",
        "s_net0",
        "s_bytes",
        # per-region dynamic columns (refreshed each solve)
        "sizes",
        "hot_bytes",
        "cold_bytes",
        "loc",
        "r_iops",
        "r_netm",
        "s_iops",
        "s_netm",
        # workload structures
        "binding_fill",
        "binding_terms",
        "mix_matrix",
        # scratch
        "rates",
    )


class EventSolver(FastSolver):
    """Fast solver + cached-solution reuse + vectorised real solves.

    Reuse is conservative.  A cached solution is only replayed when ALL of:

    * no simulator mutation since the solve (every mutator calls
      :meth:`invalidate`; the (workloads, structure) version signature is a
      second line of defence against direct-attribute mutation);
    * the solve was *tick-stable*: its achieved throughputs equal, bit for
      bit, the seed throughputs it started from (each solve seeds the
      damped iteration with the previous tick's achieved values, so a
      stable solve guarantees the next solve is a deterministic replay --
      regardless of whether the inner iteration hit tolerance);
    * the solution carries zero insert traffic (inserts grow region sizes
      every tick, which drifts hit ratios -- data growth is a dirty flag);
    * the per-node compaction background I/O is unchanged.
    """

    kernel = KERNEL_EVENT

    def __init__(self, simulator, vectorize: bool | None = None) -> None:
        super().__init__(simulator)
        #: ``None`` auto-selects by cluster size; True/False force it.
        self._vectorize = vectorize
        self._cached: SolveResult | None = None
        self._cached_bg: dict[str, float] = {}
        self._cached_sig: tuple[int, int] | None = None
        self._cached_reusable = False
        self._vector_ctx: _VectorContext | None = None
        self._vector_sig: tuple[int, int] | None = None

    # -- cache management ------------------------------------------------ #
    def invalidate(self) -> None:
        self._cached = None

    def forget_node(self, name: str) -> None:
        super().forget_node(name)
        self._cached = None

    def _signature(self) -> tuple[int, int]:
        sim = self._sim
        return (sim._workloads_version, sim._structure_version)

    def reuse_ready(self) -> bool:
        return (
            self._cached is not None
            and self._cached_reusable
            and self._cached_sig == self._signature()
        )

    def reuse(self, compaction_bg: dict[str, float]) -> SolveResult | None:
        if not self.reuse_ready():
            return None
        if compaction_bg != self._cached_bg:
            return None
        return self._cached

    def solve(self, compaction_bg: dict[str, float]) -> SolveResult:
        # Snapshot the solve's seed: each solve starts the damped iteration
        # from the previous tick's *achieved* throughput.  When this solve's
        # achieved output equals its own seed bit-for-bit, the next solve is
        # a deterministic replay of this one -- the tick-to-tick map has
        # reached its fixed point -- so the solution may be reused verbatim.
        sim = self._sim
        seeds = {
            name: sim._binding_throughput.get(name, binding.threads * 50.0)
            for name, binding in sim.bindings.items()
        }
        if self._use_vector():
            results = self._solve_vector(compaction_bg)
        else:
            results = super().solve(compaction_bg)
        achieved = results[0]
        region_rates = results[2]
        insert_free = True
        for rates in region_rates.values():
            if rates.get("insert", 0.0) > 0.0:
                insert_free = False
                break
        stable = len(achieved) == len(seeds) and all(
            achieved.get(name) == seed for name, seed in seeds.items()
        )
        self._cached = results
        self._cached_bg = dict(compaction_bg)
        self._cached_sig = self._signature()
        self._cached_reusable = stable and insert_free
        return results

    # -- vectorised path ------------------------------------------------- #
    def _use_vector(self) -> bool:
        if _np is None:
            return False
        if self._vectorize is not None:
            return self._vectorize
        return len(self._sim.regions) >= VECTOR_MIN_REGIONS

    def _vector_context(self) -> _VectorContext | None:
        sig = self._signature()
        ctx = self._vector_ctx
        if ctx is None or self._vector_sig != sig:
            ctx = self._build_vector_context()
            self._vector_ctx = ctx
            self._vector_sig = sig
        if ctx is not None:
            self._refresh_vector(ctx)
        return ctx

    def _build_vector_context(self) -> _VectorContext | None:
        np = _np
        sim = self._sim
        regions: list = []
        node_names: list[str] = []
        empty_nodes: list[str] = []
        offsets: list[int] = []
        for node in sim.nodes.values():
            if not node.online:
                continue
            hosted = self.regions_on(node.name)
            if hosted:
                node_names.append(node.name)
                offsets.append(len(regions))
                regions.extend(hosted)
            else:
                empty_nodes.append(node.name)
        region_count = len(regions)
        node_count = len(node_names)
        if region_count == 0 or node_count == 0:
            return None

        ctx = _VectorContext()
        ctx.regions = regions
        ctx.node_names = node_names
        ctx.empty_nodes = empty_nodes
        ctx.offsets = np.array(offsets, dtype=np.intp)

        cache_eff = np.empty(node_count)
        cpu_budget = np.empty(node_count)
        iops_budget = np.empty(node_count)
        bytes_budget = np.empty(node_count)
        net_budget = np.empty(node_count)
        disk_ms = np.empty(node_count)
        blocks0 = np.empty(node_count)
        scan_len0 = np.empty(node_count)
        cache_bytes_mem = np.empty(node_count)
        memstore = np.empty(node_count)
        heap_bytes = np.empty(node_count)
        memory_bytes = np.empty(node_count)
        amp_node = np.empty(node_count)
        block_node = np.empty(node_count)
        for index, name in enumerate(node_names):
            node = sim.nodes[name]
            hardware = node.hardware
            config = node.config
            heap = hardware.heap_bytes
            cache_bytes_mem[index] = config.block_cache_bytes(heap)
            cache_eff[index] = CACHE_EFFICIENCY * cache_bytes_mem[index]
            cpu_budget[index] = hardware.cpu_millis_per_second
            iops_budget[index] = hardware.disk_iops
            bytes_budget[index] = hardware.disk_mb_per_second * MB
            net_budget[index] = hardware.network_mb_per_second * MB
            disk_ms[index] = 1000.0 / hardware.disk_iops
            memstore[index] = max(config.memstore_bytes(heap), 1)
            heap_bytes[index] = heap
            memory_bytes[index] = hardware.memory_bytes
            amp_node[index] = WRITE_AMP_BASE + WRITE_AMP_MEMSTORE_FACTOR * (
                MEMSTORE_REFERENCE_FRACTION / max(config.memstore_fraction, 0.01)
            )
            block_node[index] = config.block_size_bytes
            # Latency statics key on the node's first hosted region, exactly
            # as PerformanceModel._latencies does.
            first = regions[offsets[index]]
            scan_len0[index] = first.scan_length
            blocks0[index] = (
                max(1.0, first.scan_length * first.record_size / config.block_size_bytes)
                + 1.0
            )
        ctx.cache_eff = cache_eff
        ctx.cpu_budget = cpu_budget
        ctx.iops_budget = iops_budget
        ctx.bytes_budget = bytes_budget
        ctx.net_budget = net_budget
        ctx.disk_ms = disk_ms
        ctx.blocks0 = blocks0
        ctx.scan_len0 = scan_len0
        ctx.cache_bytes_mem = cache_bytes_mem
        ctx.memstore = memstore
        ctx.heap_bytes = heap_bytes
        ctx.memory_bytes = memory_bytes
        ctx.background = np.zeros(node_count)

        counts = np.diff(np.append(ctx.offsets, region_count))
        node_idx = np.repeat(np.arange(node_count, dtype=np.intp), counts)
        ctx.node_idx = node_idx
        ctx.region_node = {
            region.region_id: node_names[node_idx[row]]
            for row, region in enumerate(regions)
        }

        record_size = np.fromiter(
            (r.record_size for r in regions), dtype=np.float64, count=region_count
        )
        scan_length = np.fromiter(
            (r.scan_length for r in regions), dtype=np.float64, count=region_count
        )
        ctx.hot_frac = np.fromiter(
            (r.hot_data_fraction for r in regions), dtype=np.float64, count=region_count
        )
        ctx.hot_req_frac = np.fromiter(
            (r.hot_request_fraction for r in regions),
            dtype=np.float64,
            count=region_count,
        )
        blockR = block_node[node_idx]
        ampR = amp_node[node_idx]
        memstoreR = memstore[node_idx]
        scan_bytes = scan_length * record_size
        blocksR = np.maximum(1.0, scan_bytes / blockR) + 1.0
        ctx.blockR = blockR
        ctx.blocksR = blocksR
        ctx.w_cpu = (
            CPU_RPC_OVERHEAD_MS
            + CPU_WRITE_MS
            + CPU_WRITE_COMPACTION_MS_PER_AMP * ampR
        )
        ctx.w_iops = record_size / memstoreR * 400.0
        ctx.w_bytes = record_size * ampR
        ctx.w_net = record_size
        ctx.s_cpu = (
            CPU_RPC_OVERHEAD_MS
            + CPU_SCAN_SETUP_MS
            + CPU_SCAN_PER_RECORD_MS * scan_length
            + CPU_SCAN_PER_BLOCK_MS * blocksR
        )
        ctx.s_net0 = scan_bytes
        ctx.s_bytes = blocksR * blockR

        row_index = {region.region_id: row for row, region in enumerate(regions)}
        binding_fill = []
        binding_terms = []
        mixes = []
        for name, binding in sim.bindings.items():
            fill_rows: list[int] = []
            fill_units: list[list[float]] = []
            for region_id, units in binding.unit_rates():
                row = row_index.get(region_id)
                if row is None:
                    continue  # unhosted region: contributes no demand
                unit_row = [0.0] * 5
                for op, unit in units:
                    unit_row[_OP_SLOT[op]] += unit
                fill_rows.append(row)
                fill_units.append(unit_row)
            binding_fill.append(
                (
                    name,
                    np.array(fill_rows, dtype=np.intp),
                    np.array(fill_units, dtype=np.float64).reshape(len(fill_rows), 5),
                )
            )
            weights: list[float] = []
            term_nodes: list[int] = []
            for region_id, weight in binding.region_weights.items():
                weights.append(weight)
                row = row_index.get(region_id)
                # Column N of the latency matrix is the unavailable-region
                # sentinel (500 ms across every op).
                term_nodes.append(node_idx[row] if row is not None else node_count)
            mix = [0.0] * 5
            for op, fraction in binding.op_mix.items():
                mix[_OP_SLOT[op]] = fraction
            mixes.append(mix)
            binding_terms.append(
                (
                    name,
                    np.array(weights, dtype=np.float64),
                    np.array(term_nodes, dtype=np.intp),
                    binding,
                )
            )
        ctx.binding_fill = binding_fill
        ctx.binding_terms = binding_terms
        ctx.mix_matrix = np.array(mixes, dtype=np.float64).reshape(len(mixes), 5)
        ctx.rates = np.zeros((region_count, 5))
        return ctx

    def _refresh_vector(self, ctx: _VectorContext) -> None:
        """Re-sync the size/locality-dependent columns from live regions."""
        np = _np
        from repro.simulation.cluster import REMOTE_LOCALITY  # avoid import cycle

        regions = ctx.regions
        count = len(regions)
        sizes = np.fromiter(
            (r.size_bytes for r in regions), dtype=np.float64, count=count
        )
        ctx.sizes = sizes
        ctx.hot_bytes = sizes * ctx.hot_frac
        ctx.cold_bytes = sizes * (1.0 - ctx.hot_frac)
        # Grouping is by hosting node, so region.node is that node's name;
        # inlining the locality property avoids R python attribute dances.
        loc = np.fromiter(
            (
                1.0 if r.node in r.block_homes else REMOTE_LOCALITY
                for r in regions
            ),
            dtype=np.float64,
            count=count,
        )
        ctx.loc = loc
        remote = 1.0 - loc
        ctx.r_iops = 1.0 + remote * REMOTE_READ_IOPS_FACTOR
        ctx.r_netm = remote * ctx.blockR
        ctx.s_iops = ctx.blocksR * (1.0 + remote * REMOTE_READ_IOPS_FACTOR)
        ctx.s_netm = remote * ctx.s_bytes

    def _vector_pass(self, ctx: _VectorContext, throughputs: dict[str, float]):
        """One demand+latency evaluation over the whole cluster.

        Returns ``(lat, node_arrays)`` where ``lat`` is the (5, N+1) per-op
        latency matrix (column N = unavailable sentinel) and ``node_arrays``
        holds the per-node aggregates the final pass turns into
        :class:`NodeLoadResult` objects.
        """
        np = _np
        rates = ctx.rates
        rates[:] = 0.0
        for name, rows, units in ctx.binding_fill:
            throughput = throughputs[name]
            if throughput and len(rows):
                rates[rows] += throughput * units
        read = rates[:, 0]
        update = rates[:, 1]
        insert = rates[:, 2]
        scan = rates[:, 3]
        rmw = rates[:, 4]
        read_like = read + rmw
        write = update + insert + rmw
        rr = read_like + scan
        tot = read + update + insert + scan + rmw

        cpu_r = read_like * _R_CPU_BASE + write * ctx.w_cpu + scan * ctx.s_cpu
        iops_r = write * ctx.w_iops
        bytes_r = write * ctx.w_bytes
        net_r = write * ctx.w_net + scan * ctx.s_net0
        m_cpu_r = read_like * _R_CPU_MISS_DELTA
        m_iops_r = read_like * ctx.r_iops + scan * ctx.s_iops
        m_bytes_r = read_like * ctx.blockR + scan * ctx.s_bytes
        m_net_r = read_like * ctx.r_netm + scan * ctx.s_netm
        mask = rr > 0.0
        hot_r = np.where(mask, ctx.hot_bytes, 0.0)
        cold_r = np.where(mask, ctx.cold_bytes, 0.0)
        hotreq_r = ctx.hot_req_frac * rr
        loc_r = ctx.loc * tot

        stacked = np.stack(
            (
                cpu_r,
                iops_r,
                bytes_r,
                net_r,
                m_cpu_r,
                m_iops_r,
                m_bytes_r,
                m_net_r,
                hot_r,
                cold_r,
                rr,
                hotreq_r,
                tot,
                loc_r,
            )
        )
        sums = np.add.reduceat(stacked, ctx.offsets, axis=1)
        (
            cpu_s,
            iops_s,
            bytes_s,
            net_s,
            m_cpu_s,
            m_iops_s,
            m_bytes_s,
            m_net_s,
            hot_n,
            cold_n,
            rr_n,
            hotreq_n,
            tot_n,
            loc_n,
        ) = sums

        rr_safe = np.where(rr_n > 0.0, rr_n, 1.0)
        hot_safe = np.where(hot_n > 0.0, hot_n, 1.0)
        cold_safe = np.where(cold_n > 0.0, cold_n, 1.0)
        hot_req_share = hotreq_n / rr_safe
        hot_cov = np.minimum(1.0, ctx.cache_eff / hot_safe)
        spare = np.maximum(0.0, ctx.cache_eff - hot_n)
        cold_cov = np.where(
            cold_n > 0.0, np.minimum(1.0, spare / cold_safe), 1.0
        )
        hit = np.where(
            (rr_n > 0.0) & (hot_n > 0.0),
            hot_req_share * hot_cov + (1.0 - hot_req_share) * cold_cov,
            1.0,
        )
        miss = np.maximum(0.0, 1.0 - hit)

        cpu_n = cpu_s + miss * m_cpu_s
        iops_n = iops_s + miss * m_iops_s
        bytes_n = bytes_s + miss * m_bytes_s + ctx.background
        net_n = net_s + miss * m_net_s
        cpu_util = cpu_n / ctx.cpu_budget
        iops_util = iops_n / ctx.iops_budget
        bw_util = bytes_n / ctx.bytes_budget
        io_wait = np.maximum(iops_util, bw_util)
        net_util = net_n / ctx.net_budget
        util = np.maximum(cpu_util, np.maximum(io_wait, net_util))
        tot_safe = np.where(tot_n > 0.0, tot_n, 1.0)
        mean_loc = np.where(tot_n > 0.0, loc_n / tot_safe, 1.0)

        rho = util / (1.0 + util)
        inflation = 1.0 / (1.0 - np.minimum(rho, 0.97))
        read_ms = (
            CPU_READ_HIT_MS * hit
            + miss * (CPU_READ_MISS_MS + ctx.disk_ms)
            + CPU_RPC_OVERHEAD_MS
        )
        write_ms = CPU_WRITE_MS + CPU_RPC_OVERHEAD_MS + 0.2
        scan_ms = (
            CPU_SCAN_SETUP_MS
            + CPU_SCAN_PER_RECORD_MS * ctx.scan_len0
            + CPU_SCAN_PER_BLOCK_MS * ctx.blocks0
            + miss * ctx.blocks0 * ctx.disk_ms * 0.5
        )
        remote_n = 1.0 - mean_loc
        factor = 1.0 + remote_n * (REMOTE_READ_LATENCY_FACTOR - 1.0) * miss
        read_ms = read_ms * factor
        scan_ms = scan_ms * factor

        node_count = len(ctx.node_names)
        lat = np.empty((5, node_count + 1))
        lat[:, node_count] = 500.0
        lat[0, :node_count] = read_ms * inflation
        lat[1, :node_count] = write_ms * inflation
        lat[2, :node_count] = lat[1, :node_count]
        lat[3, :node_count] = scan_ms * inflation
        lat[4, :node_count] = (read_ms + write_ms) * inflation
        node_arrays = (
            util,
            cpu_util,
            io_wait,
            net_util,
            cpu_n,
            iops_n,
            bytes_n,
            net_n,
            hit,
        )
        return lat, node_arrays

    def _solve_vector(self, compaction_bg: dict[str, float]) -> SolveResult:
        np = _np
        sim = self._sim
        ctx = self._vector_context()
        if ctx is None:
            return super(EventSolver, self).solve(compaction_bg)
        bg = ctx.background
        for index, name in enumerate(ctx.node_names):
            bg[index] = compaction_bg.get(name, 0.0)

        bindings = sim.bindings
        throughputs = {
            name: sim._binding_throughput.get(name, binding.threads * 50.0)
            for name, binding in bindings.items()
        }
        converged = True
        lat = None
        if bindings:
            tolerance = sim.fixed_point_tolerance
            for _ in range(sim.fixed_point_max_iterations):
                lat, _ = self._vector_pass(ctx, throughputs)
                mixed = ctx.mix_matrix @ lat
                converged = True
                for position, (name, weights, term_nodes, binding) in enumerate(
                    ctx.binding_terms
                ):
                    latency = float(weights @ mixed[position, term_nodes])
                    target = binding.max_throughput(latency)
                    previous = throughputs[name]
                    updated = 0.5 * previous + 0.5 * target
                    throughputs[name] = updated
                    if abs(updated - previous) > tolerance * max(
                        abs(previous), abs(updated), 1.0
                    ):
                        converged = False
                if converged:
                    break
        self.last_converged = converged

        lat, node_arrays = self._vector_pass(ctx, throughputs)
        (util, cpu_util, io_wait, net_util, cpu_n, iops_n, bytes_n, net_n, hit) = (
            node_arrays
        )
        hosted_n = np.add.reduceat(ctx.sizes, ctx.offsets)
        used = (
            np.minimum(ctx.cache_bytes_mem, hosted_n * 0.6)
            + ctx.memstore * 0.5
            + 0.6 * ctx.heap_bytes * 0.2
        )
        mem_util = np.minimum(
            1.0,
            (used + 0.5 * (ctx.memory_bytes - ctx.heap_bytes)) / ctx.memory_bytes,
        )

        node_results: dict[str, object] = {}
        node_scale: dict[str, float] = {}
        for index, name in enumerate(ctx.node_names):
            cpu_value = float(cpu_util[index])
            io_value = float(io_wait[index])
            net_value = float(net_util[index])
            util_value = float(util[index])
            node_results[name] = NodeLoadResult(
                utilization=util_value,
                cpu_utilization=cpu_value,
                io_wait=io_value,
                memory_utilization=float(mem_util[index]),
                network_utilization=net_value,
                demand=ServiceDemand(
                    cpu_millis=float(cpu_n[index]),
                    disk_iops=float(iops_n[index]),
                    disk_bytes=float(bytes_n[index]),
                    network_bytes=float(net_n[index]),
                ),
                hit_ratio=float(hit[index]),
                per_op_latency_ms={
                    "read": float(lat[0, index]),
                    "update": float(lat[1, index]),
                    "insert": float(lat[2, index]),
                    "scan": float(lat[3, index]),
                    "read_modify_write": float(lat[4, index]),
                },
                bottleneck=_bottleneck(cpu_value, io_value, net_value),
            )
            node_scale[name] = (
                1.0 if util_value <= 1.0 else 1.0 / util_value
            )
        # Online nodes with no hosted regions (drained, freshly booted):
        # fall back to the exact model (cheap -- empty region list).
        for name in ctx.empty_nodes:
            node = sim.nodes.get(name)
            if node is None or not node.online:
                continue
            result = sim._model_for(node).evaluate_node(
                node.config, [], compaction_bg.get(name, 0.0)
            )
            node_results[name] = result
            node_scale[name] = (
                1.0 if result.utilization <= 1.0 else 1.0 / result.utilization
            )

        mixed = ctx.mix_matrix @ lat
        binding_latencies = {
            name: float(weights @ mixed[position, term_nodes])
            for position, (name, weights, term_nodes, _binding) in enumerate(
                ctx.binding_terms
            )
        }

        _, contribs = self._tick_rate_context()
        region_node = ctx.region_node
        achieved: dict[str, float] = {}
        region_rates: dict[str, dict[str, float]] = {}
        for name, entries in contribs:
            throughput = throughputs[name]
            total = 0.0
            for region_id, _, slot_units in entries:
                scale = node_scale.get(region_node.get(region_id), 0.0)
                bucket = region_rates.setdefault(region_id, {})
                load_total = 0.0
                for op, _, unit in slot_units:
                    rate = throughput * unit
                    bucket[op] = bucket.get(op, 0.0) + rate * scale
                    load_total += rate
                total += load_total * scale
            achieved[name] = total
        if getattr(sim, "record_latency_distributions", True):
            # The NodeLoadResult latency dicts above are built from the same
            # ``lat`` matrix the scalar path would produce, so the summary
            # helper sees identical floats on both event-solve paths.
            summaries = binding_summaries(
                bindings,
                region_node,
                {name: result.per_op_latency_ms for name, result in node_results.items()},
            )
        else:
            summaries = {}
        return achieved, node_results, region_rates, binding_latencies, summaries


def make_solver(kernel: str, simulator, vectorize: bool | None = None) -> SolverStrategy:
    """Instantiate the strategy for ``kernel`` (raises on unknown names)."""
    if kernel == KERNEL_FAST:
        return FastSolver(simulator)
    if kernel == KERNEL_REFERENCE:
        return ReferenceSolver(simulator)
    if kernel == KERNEL_EVENT:
        return EventSolver(simulator, vectorize=vectorize)
    raise ValueError(f"unknown kernel {kernel!r}")
