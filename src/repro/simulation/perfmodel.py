"""Per-operation cost model for simulated RegionServers.

The model translates the paper's qualitative performance arguments into
resource demands so that the trade-offs MeT exploits actually materialise in
the simulator:

* reads that hit the block cache cost only CPU; misses pay one random disk
  read of ``block_size`` bytes, plus a network transfer when the block is not
  local (locality index < 1);
* the block-cache hit ratio is the fraction of a node's *hot* hosted bytes
  that fits in its cache (hotspot access pattern, Section 3.1), so giving a
  read-heavy node a bigger cache and fewer partitions directly raises its hit
  ratio;
* writes append to the memstore (CPU + a cheap sequential WAL write) and pay
  an amortised flush/compaction cost that grows when the memstore share is
  small, because small memstores flush often and produce more files to
  compact;
* scans read ``scan_length`` consecutive records; the number of random seeks
  per scan shrinks as the block size grows, which is why the scan profile
  uses 128 KB blocks;
* every operation also costs a fixed handler/CPU overhead, and the handler
  pool bounds concurrency.

The absolute constants were calibrated so a paper-like node (4 GB RAM, one
7200 rpm disk, GbE) serves the same order of magnitude of operations per
second as the testbed in the paper; only the *shape* of the results matters
for the reproduction (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hbase.config import RegionServerConfig
from repro.simulation.hardware import MB, HardwareSpec

#: Operation types understood by the model.
OP_TYPES = ("read", "update", "insert", "scan", "read_modify_write")

#: CPU cost (ms) of serving a read from the block cache.
CPU_READ_HIT_MS = 0.35
#: CPU cost (ms) of serving a read that misses the cache.
CPU_READ_MISS_MS = 0.90
#: CPU cost (ms) of appending one update to the memstore.
CPU_WRITE_MS = 0.40
#: CPU cost (ms) per unit of write amplification: flushes and compactions
#: burn CPU as well as disk bandwidth, so small memstores also tax the CPU.
CPU_WRITE_COMPACTION_MS_PER_AMP = 0.05
#: CPU cost (ms) per record touched by a scan.
CPU_SCAN_PER_RECORD_MS = 0.03
#: Fixed CPU cost (ms) of scan setup (iterator open, seek).
CPU_SCAN_SETUP_MS = 0.9
#: CPU cost (ms) per store-file block touched by a scan (seek + decode).
CPU_SCAN_PER_BLOCK_MS = 0.5
#: CPU overhead (ms) per RPC regardless of type.
CPU_RPC_OVERHEAD_MS = 0.15

#: Fraction of the configured block cache that is effectively usable for hot
#: data (index blocks, churn and fragmentation take the rest).
CACHE_EFFICIENCY = 0.75

#: Write amplification floor (WAL + eventual flush).
WRITE_AMP_BASE = 2.0
#: Extra write amplification for a memstore at the reference size; scales
#: inversely with the configured memstore share (small memstores flush often
#: and create more files to compact).
WRITE_AMP_MEMSTORE_FACTOR = 2.5
#: Memstore share used as the reference point for write amplification.
MEMSTORE_REFERENCE_FRACTION = 0.40

#: Fraction of requests that target the hot subset of the key space
#: (YCSB hotspot distribution: 50% of requests to 40% of the keys).
HOT_REQUEST_FRACTION = 0.50
#: Fraction of the key space that makes up the hot subset.
HOT_DATA_FRACTION = 0.40

#: Penalty multiplier on disk latency for a non-local block read (the block
#: must be fetched from another DataNode over the network).
REMOTE_READ_LATENCY_FACTOR = 2.5
#: Extra I/O work per non-local cache miss: the remote DataNode performs the
#: seek and the block travels the network, losing short-circuit reads.
REMOTE_READ_IOPS_FACTOR = 1.0


@dataclass
class ServiceDemand:
    """Resource demand of a batch of operations on one node.

    All quantities are *per second* demands produced by multiplying per-op
    costs by offered rates.
    """

    cpu_millis: float = 0.0
    disk_iops: float = 0.0
    disk_bytes: float = 0.0
    network_bytes: float = 0.0

    def add(self, other: "ServiceDemand") -> None:
        """Accumulate another demand into this one."""
        self.cpu_millis += other.cpu_millis
        self.disk_iops += other.disk_iops
        self.disk_bytes += other.disk_bytes
        self.network_bytes += other.network_bytes

    def scaled(self, factor: float) -> "ServiceDemand":
        """Return a copy scaled by ``factor``."""
        return ServiceDemand(
            cpu_millis=self.cpu_millis * factor,
            disk_iops=self.disk_iops * factor,
            disk_bytes=self.disk_bytes * factor,
            network_bytes=self.network_bytes * factor,
        )


@dataclass
class RegionLoadProfile:
    """Static description of one region as seen by the cost model.

    ``hot_data_fraction`` / ``hot_request_fraction`` describe the region's
    access skew: the YCSB hotspot distribution of the paper sends 50% of the
    requests to 40% of the keys, while TPC-C concentrates most reads on a
    small working set of recently written rows.
    """

    region_id: str
    size_bytes: float
    locality: float = 1.0
    record_size: int = 1024
    scan_length: int = 50
    read_rate: float = 0.0
    update_rate: float = 0.0
    insert_rate: float = 0.0
    scan_rate: float = 0.0
    rmw_rate: float = 0.0
    hot_data_fraction: float = HOT_DATA_FRACTION
    hot_request_fraction: float = HOT_REQUEST_FRACTION

    @property
    def total_rate(self) -> float:
        """Total offered operations per second for this region."""
        return (
            self.read_rate
            + self.update_rate
            + self.insert_rate
            + self.scan_rate
            + self.rmw_rate
        )

    @property
    def read_like_rate(self) -> float:
        """Operations that consult the read path (reads + rmw reads)."""
        return self.read_rate + self.rmw_rate

    @property
    def write_like_rate(self) -> float:
        """Operations that touch the write path (updates, inserts, rmw writes)."""
        return self.update_rate + self.insert_rate + self.rmw_rate


@dataclass
class NodeLoadResult:
    """Outcome of evaluating one node for one tick."""

    utilization: float
    cpu_utilization: float
    io_wait: float
    memory_utilization: float
    network_utilization: float
    demand: ServiceDemand
    hit_ratio: float
    per_op_latency_ms: dict[str, float] = field(default_factory=dict)


class PerformanceModel:
    """Computes resource demands, utilisation and latencies for one node."""

    def __init__(self, hardware: HardwareSpec | None = None) -> None:
        self.hardware = hardware or HardwareSpec()

    # ------------------------------------------------------------------ #
    # cache model
    # ------------------------------------------------------------------ #
    def hit_ratio(
        self, config: RegionServerConfig, regions: list[RegionLoadProfile]
    ) -> float:
        """Block-cache hit ratio for a node hosting ``regions``.

        Requests follow the hotspot distribution: ``HOT_REQUEST_FRACTION`` of
        requests touch ``HOT_DATA_FRACTION`` of the bytes.  The hit ratio is
        the request-weighted fraction of those bytes that fits in the cache.
        """
        read_regions = [r for r in regions if r.read_like_rate > 0 or r.scan_rate > 0]
        if not read_regions:
            return 1.0
        cache_bytes = CACHE_EFFICIENCY * config.block_cache_bytes(self.hardware.heap_bytes)
        hot_bytes = sum(r.size_bytes * r.hot_data_fraction for r in read_regions)
        cold_bytes = sum(
            r.size_bytes * (1.0 - r.hot_data_fraction) for r in read_regions
        )
        if hot_bytes <= 0:
            return 1.0
        total_read_rate = sum(r.read_like_rate + r.scan_rate for r in read_regions)
        if total_read_rate > 0:
            hot_requests = (
                sum(
                    r.hot_request_fraction * (r.read_like_rate + r.scan_rate)
                    for r in read_regions
                )
                / total_read_rate
            )
        else:
            hot_requests = HOT_REQUEST_FRACTION
        hot_covered = min(1.0, cache_bytes / hot_bytes)
        spare = max(0.0, cache_bytes - hot_bytes)
        cold_covered = min(1.0, spare / cold_bytes) if cold_bytes > 0 else 1.0
        return hot_requests * hot_covered + (1.0 - hot_requests) * cold_covered

    # ------------------------------------------------------------------ #
    # per-op costs
    # ------------------------------------------------------------------ #
    def write_amplification(self, config: RegionServerConfig) -> float:
        """Bytes written to disk per byte of user write (flush + compaction)."""
        memstore_fraction = max(config.memstore_fraction, 0.01)
        return WRITE_AMP_BASE + WRITE_AMP_MEMSTORE_FACTOR * (
            MEMSTORE_REFERENCE_FRACTION / memstore_fraction
        )

    def read_demand(
        self,
        config: RegionServerConfig,
        region: RegionLoadProfile,
        hit_ratio: float,
        rate: float,
    ) -> ServiceDemand:
        """Demand of ``rate`` random reads per second against ``region``."""
        miss = max(0.0, 1.0 - hit_ratio)
        remote = max(0.0, 1.0 - region.locality)
        cpu = (
            CPU_RPC_OVERHEAD_MS
            + hit_ratio * CPU_READ_HIT_MS
            + miss * CPU_READ_MISS_MS
        )
        disk_iops = miss * (1.0 + remote * REMOTE_READ_IOPS_FACTOR)
        disk_bytes = miss * config.block_size_bytes
        network_bytes = miss * remote * config.block_size_bytes
        return ServiceDemand(
            cpu_millis=cpu * rate,
            disk_iops=disk_iops * rate,
            disk_bytes=disk_bytes * rate,
            network_bytes=network_bytes * rate,
        )

    def write_demand(
        self,
        config: RegionServerConfig,
        region: RegionLoadProfile,
        rate: float,
    ) -> ServiceDemand:
        """Demand of ``rate`` writes per second against ``region``."""
        amplification = self.write_amplification(config)
        cpu = (
            CPU_RPC_OVERHEAD_MS
            + CPU_WRITE_MS
            + CPU_WRITE_COMPACTION_MS_PER_AMP * amplification
        )
        disk_bytes = region.record_size * amplification
        # Flush/compaction I/O is mostly sequential; charge a small IOPS share
        # proportional to how often the memstore fills up.
        memstore_bytes = max(config.memstore_bytes(self.hardware.heap_bytes), 1)
        flush_iops = region.record_size / memstore_bytes * 400.0
        return ServiceDemand(
            cpu_millis=cpu * rate,
            disk_iops=flush_iops * rate,
            disk_bytes=disk_bytes * rate,
            network_bytes=region.record_size * rate,
        )

    def scan_demand(
        self,
        config: RegionServerConfig,
        region: RegionLoadProfile,
        hit_ratio: float,
        rate: float,
    ) -> ServiceDemand:
        """Demand of ``rate`` scans per second against ``region``."""
        scan_bytes = region.scan_length * region.record_size
        miss = max(0.0, 1.0 - hit_ratio)
        remote = max(0.0, 1.0 - region.locality)
        # The number of blocks touched shrinks as the block size grows, which
        # is why the scan profile uses 128 KB blocks; one extra block accounts
        # for uncompacted store files.
        blocks = max(1.0, scan_bytes / config.block_size_bytes) + 1.0
        cpu = (
            CPU_RPC_OVERHEAD_MS
            + CPU_SCAN_SETUP_MS
            + CPU_SCAN_PER_RECORD_MS * region.scan_length
            + CPU_SCAN_PER_BLOCK_MS * blocks
        )
        disk_iops = miss * blocks * (1.0 + remote * REMOTE_READ_IOPS_FACTOR)
        disk_bytes = miss * blocks * config.block_size_bytes
        network_bytes = scan_bytes + miss * remote * blocks * config.block_size_bytes
        return ServiceDemand(
            cpu_millis=cpu * rate,
            disk_iops=disk_iops * rate,
            disk_bytes=disk_bytes * rate,
            network_bytes=network_bytes * rate,
        )

    def rmw_demand(
        self,
        config: RegionServerConfig,
        region: RegionLoadProfile,
        hit_ratio: float,
        rate: float,
    ) -> ServiceDemand:
        """Demand of ``rate`` read-modify-write operations per second."""
        demand = self.read_demand(config, region, hit_ratio, rate)
        demand.add(self.write_demand(config, region, rate))
        return demand

    # ------------------------------------------------------------------ #
    # node evaluation
    # ------------------------------------------------------------------ #
    def node_demand(
        self,
        config: RegionServerConfig,
        regions: list[RegionLoadProfile],
        background_disk_bytes_per_s: float = 0.0,
    ) -> tuple[ServiceDemand, float]:
        """Aggregate demand for a node and the node's cache hit ratio."""
        hit = self.hit_ratio(config, regions)
        total = ServiceDemand()
        for region in regions:
            if region.read_rate:
                total.add(self.read_demand(config, region, hit, region.read_rate))
            write_rate = region.update_rate + region.insert_rate
            if write_rate:
                total.add(self.write_demand(config, region, write_rate))
            if region.scan_rate:
                total.add(self.scan_demand(config, region, hit, region.scan_rate))
            if region.rmw_rate:
                total.add(self.rmw_demand(config, region, hit, region.rmw_rate))
        total.disk_bytes += background_disk_bytes_per_s
        return total, hit

    def evaluate_node(
        self,
        config: RegionServerConfig,
        regions: list[RegionLoadProfile],
        background_disk_bytes_per_s: float = 0.0,
    ) -> NodeLoadResult:
        """Evaluate utilisation and latencies for one node for one tick."""
        demand, hit = self.node_demand(config, regions, background_disk_bytes_per_s)
        hw = self.hardware
        cpu_util = demand.cpu_millis / hw.cpu_millis_per_second
        iops_util = demand.disk_iops / hw.disk_iops
        disk_bw_util = demand.disk_bytes / (hw.disk_mb_per_second * MB)
        io_wait = max(iops_util, disk_bw_util)
        net_util = demand.network_bytes / (hw.network_mb_per_second * MB)
        utilization = max(cpu_util, io_wait, net_util)

        hosted_bytes = sum(r.size_bytes for r in regions)
        cache_bytes = config.block_cache_bytes(hw.heap_bytes)
        memstore_bytes = config.memstore_bytes(hw.heap_bytes)
        used = min(cache_bytes, hosted_bytes * 0.6) + memstore_bytes * 0.5 + 0.6 * hw.heap_bytes * 0.2
        memory_utilization = min(1.0, (used + 0.5 * (hw.memory_bytes - hw.heap_bytes)) / hw.memory_bytes)

        latencies = self._latencies(config, regions, hit, utilization)
        return NodeLoadResult(
            utilization=utilization,
            cpu_utilization=cpu_util,
            io_wait=io_wait,
            memory_utilization=memory_utilization,
            network_utilization=net_util,
            demand=demand,
            hit_ratio=hit,
            per_op_latency_ms=latencies,
        )

    def _latencies(
        self,
        config: RegionServerConfig,
        regions: list[RegionLoadProfile],
        hit_ratio: float,
        utilization: float,
    ) -> dict[str, float]:
        """Per-op latency estimates under the current utilisation."""
        # Queueing inflation: latencies grow as the bottleneck resource
        # saturates.  The raw utilisation (which can exceed 1 for offered
        # load) is mapped to an occupancy in [0, 1) so the closed-loop fixed
        # point stays stable; the simulator additionally clamps achieved
        # throughput to capacity (work conservation).
        rho = utilization / (1.0 + utilization)
        inflation = 1.0 / (1.0 - min(rho, 0.97))
        miss = max(0.0, 1.0 - hit_ratio)
        disk_ms = 1000.0 / self.hardware.disk_iops
        record_size = regions[0].record_size if regions else 1024
        scan_length = regions[0].scan_length if regions else 50

        read_ms = (
            CPU_READ_HIT_MS * hit_ratio
            + miss * (CPU_READ_MISS_MS + disk_ms)
            + CPU_RPC_OVERHEAD_MS
        )
        write_ms = CPU_WRITE_MS + CPU_RPC_OVERHEAD_MS + 0.2
        blocks = max(1.0, scan_length * record_size / config.block_size_bytes) + 1.0
        scan_ms = (
            CPU_SCAN_SETUP_MS
            + CPU_SCAN_PER_RECORD_MS * scan_length
            + CPU_SCAN_PER_BLOCK_MS * blocks
            + miss * blocks * disk_ms * 0.5
        )
        remote = 1.0 - _mean_locality(regions)
        read_ms *= 1.0 + remote * (REMOTE_READ_LATENCY_FACTOR - 1.0) * miss
        scan_ms *= 1.0 + remote * (REMOTE_READ_LATENCY_FACTOR - 1.0) * miss
        return {
            "read": read_ms * inflation,
            "update": write_ms * inflation,
            "insert": write_ms * inflation,
            "scan": scan_ms * inflation,
            "read_modify_write": (read_ms + write_ms) * inflation,
        }


def _mean_locality(regions: list[RegionLoadProfile]) -> float:
    """Request-weighted mean locality of the regions (1.0 when idle)."""
    total_rate = sum(r.total_rate for r in regions)
    if total_rate <= 0:
        return 1.0
    return sum(r.locality * r.total_rate for r in regions) / total_rate
