"""Per-operation cost model for simulated RegionServers.

The model translates the paper's qualitative performance arguments into
resource demands so that the trade-offs MeT exploits actually materialise in
the simulator:

* reads that hit the block cache cost only CPU; misses pay one random disk
  read of ``block_size`` bytes, plus a network transfer when the block is not
  local (locality index < 1);
* the block-cache hit ratio is the fraction of a node's *hot* hosted bytes
  that fits in its cache (hotspot access pattern, Section 3.1), so giving a
  read-heavy node a bigger cache and fewer partitions directly raises its hit
  ratio;
* writes append to the memstore (CPU + a cheap sequential WAL write) and pay
  an amortised flush/compaction cost that grows when the memstore share is
  small, because small memstores flush often and produce more files to
  compact;
* scans read ``scan_length`` consecutive records; the number of random seeks
  per scan shrinks as the block size grows, which is why the scan profile
  uses 128 KB blocks;
* every operation also costs a fixed handler/CPU overhead, and the handler
  pool bounds concurrency.

The absolute constants were calibrated so a paper-like node (4 GB RAM, one
7200 rpm disk, GbE) serves the same order of magnitude of operations per
second as the testbed in the paper; only the *shape* of the results matters
for the reproduction (see DESIGN.md section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hbase.config import RegionServerConfig
from repro.simulation.hardware import MB, HardwareSpec

#: Operation types understood by the model.
OP_TYPES = ("read", "update", "insert", "scan", "read_modify_write")

#: CPU cost (ms) of serving a read from the block cache.
CPU_READ_HIT_MS = 0.35
#: CPU cost (ms) of serving a read that misses the cache.
CPU_READ_MISS_MS = 0.90
#: CPU cost (ms) of appending one update to the memstore.
CPU_WRITE_MS = 0.40
#: CPU cost (ms) per unit of write amplification: flushes and compactions
#: burn CPU as well as disk bandwidth, so small memstores also tax the CPU.
CPU_WRITE_COMPACTION_MS_PER_AMP = 0.05
#: CPU cost (ms) per record touched by a scan.
CPU_SCAN_PER_RECORD_MS = 0.03
#: Fixed CPU cost (ms) of scan setup (iterator open, seek).
CPU_SCAN_SETUP_MS = 0.9
#: CPU cost (ms) per store-file block touched by a scan (seek + decode).
CPU_SCAN_PER_BLOCK_MS = 0.5
#: CPU overhead (ms) per RPC regardless of type.
CPU_RPC_OVERHEAD_MS = 0.15

#: Fraction of the configured block cache that is effectively usable for hot
#: data (index blocks, churn and fragmentation take the rest).
CACHE_EFFICIENCY = 0.75

#: Write amplification floor (WAL + eventual flush).
WRITE_AMP_BASE = 2.0
#: Extra write amplification for a memstore at the reference size; scales
#: inversely with the configured memstore share (small memstores flush often
#: and create more files to compact).
WRITE_AMP_MEMSTORE_FACTOR = 2.5
#: Memstore share used as the reference point for write amplification.
MEMSTORE_REFERENCE_FRACTION = 0.40

#: Fraction of requests that target the hot subset of the key space
#: (YCSB hotspot distribution: 50% of requests to 40% of the keys).
HOT_REQUEST_FRACTION = 0.50
#: Fraction of the key space that makes up the hot subset.
HOT_DATA_FRACTION = 0.40

#: Penalty multiplier on disk latency for a non-local block read (the block
#: must be fetched from another DataNode over the network).
REMOTE_READ_LATENCY_FACTOR = 2.5
#: Extra I/O work per non-local cache miss: the remote DataNode performs the
#: seek and the block travels the network, losing short-circuit reads.
REMOTE_READ_IOPS_FACTOR = 1.0


@dataclass
class ServiceDemand:
    """Resource demand of a batch of operations on one node.

    All quantities are *per second* demands produced by multiplying per-op
    costs by offered rates.
    """

    cpu_millis: float = 0.0
    disk_iops: float = 0.0
    disk_bytes: float = 0.0
    network_bytes: float = 0.0

    def add(self, other: "ServiceDemand") -> None:
        """Accumulate another demand into this one."""
        self.cpu_millis += other.cpu_millis
        self.disk_iops += other.disk_iops
        self.disk_bytes += other.disk_bytes
        self.network_bytes += other.network_bytes

    def scaled(self, factor: float) -> "ServiceDemand":
        """Return a copy scaled by ``factor``."""
        return ServiceDemand(
            cpu_millis=self.cpu_millis * factor,
            disk_iops=self.disk_iops * factor,
            disk_bytes=self.disk_bytes * factor,
            network_bytes=self.network_bytes * factor,
        )


@dataclass
class RegionLoadProfile:
    """Static description of one region as seen by the cost model.

    ``hot_data_fraction`` / ``hot_request_fraction`` describe the region's
    access skew: the YCSB hotspot distribution of the paper sends 50% of the
    requests to 40% of the keys, while TPC-C concentrates most reads on a
    small working set of recently written rows.
    """

    region_id: str
    size_bytes: float
    locality: float = 1.0
    record_size: int = 1024
    scan_length: int = 50
    read_rate: float = 0.0
    update_rate: float = 0.0
    insert_rate: float = 0.0
    scan_rate: float = 0.0
    rmw_rate: float = 0.0
    hot_data_fraction: float = HOT_DATA_FRACTION
    hot_request_fraction: float = HOT_REQUEST_FRACTION

    @property
    def total_rate(self) -> float:
        """Total offered operations per second for this region."""
        return (
            self.read_rate
            + self.update_rate
            + self.insert_rate
            + self.scan_rate
            + self.rmw_rate
        )

    @property
    def read_like_rate(self) -> float:
        """Operations that consult the read path (reads + rmw reads)."""
        return self.read_rate + self.rmw_rate

    @property
    def write_like_rate(self) -> float:
        """Operations that touch the write path (updates, inserts, rmw writes)."""
        return self.update_rate + self.insert_rate + self.rmw_rate


@dataclass
class NodeLoadResult:
    """Outcome of evaluating one node for one tick."""

    utilization: float
    cpu_utilization: float
    io_wait: float
    memory_utilization: float
    network_utilization: float
    demand: ServiceDemand
    hit_ratio: float
    per_op_latency_ms: dict[str, float] = field(default_factory=dict)
    #: Which resource bounds this node ("cpu", "disk" or "network") -- what a
    #: per-resource fault (e.g. a network-only slowdown) shifts.
    bottleneck: str = "cpu"


def _bottleneck(cpu_util: float, io_wait: float, net_util: float) -> str:
    """Name of the resource with the highest utilisation (ties favour CPU)."""
    if cpu_util >= io_wait and cpu_util >= net_util:
        return "cpu"
    if io_wait >= net_util:
        return "disk"
    return "network"


class PerformanceModel:
    """Computes resource demands, utilisation and latencies for one node."""

    def __init__(self, hardware: HardwareSpec | None = None) -> None:
        self.hardware = hardware or HardwareSpec()

    # ------------------------------------------------------------------ #
    # cache model
    # ------------------------------------------------------------------ #
    def hit_ratio(
        self, config: RegionServerConfig, regions: list[RegionLoadProfile]
    ) -> float:
        """Block-cache hit ratio for a node hosting ``regions``.

        Requests follow the hotspot distribution: ``HOT_REQUEST_FRACTION`` of
        requests touch ``HOT_DATA_FRACTION`` of the bytes.  The hit ratio is
        the request-weighted fraction of those bytes that fits in the cache.
        """
        read_regions = [r for r in regions if r.read_like_rate > 0 or r.scan_rate > 0]
        if not read_regions:
            return 1.0
        cache_bytes = CACHE_EFFICIENCY * config.block_cache_bytes(self.hardware.heap_bytes)
        hot_bytes = sum(r.size_bytes * r.hot_data_fraction for r in read_regions)
        cold_bytes = sum(
            r.size_bytes * (1.0 - r.hot_data_fraction) for r in read_regions
        )
        if hot_bytes <= 0:
            return 1.0
        total_read_rate = sum(r.read_like_rate + r.scan_rate for r in read_regions)
        if total_read_rate > 0:
            hot_requests = (
                sum(
                    r.hot_request_fraction * (r.read_like_rate + r.scan_rate)
                    for r in read_regions
                )
                / total_read_rate
            )
        else:
            hot_requests = HOT_REQUEST_FRACTION
        hot_covered = min(1.0, cache_bytes / hot_bytes)
        spare = max(0.0, cache_bytes - hot_bytes)
        cold_covered = min(1.0, spare / cold_bytes) if cold_bytes > 0 else 1.0
        return hot_requests * hot_covered + (1.0 - hot_requests) * cold_covered

    # ------------------------------------------------------------------ #
    # per-op costs
    # ------------------------------------------------------------------ #
    def write_amplification(self, config: RegionServerConfig) -> float:
        """Bytes written to disk per byte of user write (flush + compaction)."""
        memstore_fraction = max(config.memstore_fraction, 0.01)
        return WRITE_AMP_BASE + WRITE_AMP_MEMSTORE_FACTOR * (
            MEMSTORE_REFERENCE_FRACTION / memstore_fraction
        )

    def read_demand(
        self,
        config: RegionServerConfig,
        region: RegionLoadProfile,
        hit_ratio: float,
        rate: float,
    ) -> ServiceDemand:
        """Demand of ``rate`` random reads per second against ``region``."""
        miss = max(0.0, 1.0 - hit_ratio)
        remote = max(0.0, 1.0 - region.locality)
        cpu = (
            CPU_RPC_OVERHEAD_MS
            + hit_ratio * CPU_READ_HIT_MS
            + miss * CPU_READ_MISS_MS
        )
        disk_iops = miss * (1.0 + remote * REMOTE_READ_IOPS_FACTOR)
        disk_bytes = miss * config.block_size_bytes
        network_bytes = miss * remote * config.block_size_bytes
        return ServiceDemand(
            cpu_millis=cpu * rate,
            disk_iops=disk_iops * rate,
            disk_bytes=disk_bytes * rate,
            network_bytes=network_bytes * rate,
        )

    def write_demand(
        self,
        config: RegionServerConfig,
        region: RegionLoadProfile,
        rate: float,
    ) -> ServiceDemand:
        """Demand of ``rate`` writes per second against ``region``."""
        amplification = self.write_amplification(config)
        cpu = (
            CPU_RPC_OVERHEAD_MS
            + CPU_WRITE_MS
            + CPU_WRITE_COMPACTION_MS_PER_AMP * amplification
        )
        disk_bytes = region.record_size * amplification
        # Flush/compaction I/O is mostly sequential; charge a small IOPS share
        # proportional to how often the memstore fills up.
        memstore_bytes = max(config.memstore_bytes(self.hardware.heap_bytes), 1)
        flush_iops = region.record_size / memstore_bytes * 400.0
        return ServiceDemand(
            cpu_millis=cpu * rate,
            disk_iops=flush_iops * rate,
            disk_bytes=disk_bytes * rate,
            network_bytes=region.record_size * rate,
        )

    def scan_demand(
        self,
        config: RegionServerConfig,
        region: RegionLoadProfile,
        hit_ratio: float,
        rate: float,
    ) -> ServiceDemand:
        """Demand of ``rate`` scans per second against ``region``."""
        scan_bytes = region.scan_length * region.record_size
        miss = max(0.0, 1.0 - hit_ratio)
        remote = max(0.0, 1.0 - region.locality)
        # The number of blocks touched shrinks as the block size grows, which
        # is why the scan profile uses 128 KB blocks; one extra block accounts
        # for uncompacted store files.
        blocks = max(1.0, scan_bytes / config.block_size_bytes) + 1.0
        cpu = (
            CPU_RPC_OVERHEAD_MS
            + CPU_SCAN_SETUP_MS
            + CPU_SCAN_PER_RECORD_MS * region.scan_length
            + CPU_SCAN_PER_BLOCK_MS * blocks
        )
        disk_iops = miss * blocks * (1.0 + remote * REMOTE_READ_IOPS_FACTOR)
        disk_bytes = miss * blocks * config.block_size_bytes
        network_bytes = scan_bytes + miss * remote * blocks * config.block_size_bytes
        return ServiceDemand(
            cpu_millis=cpu * rate,
            disk_iops=disk_iops * rate,
            disk_bytes=disk_bytes * rate,
            network_bytes=network_bytes * rate,
        )

    def rmw_demand(
        self,
        config: RegionServerConfig,
        region: RegionLoadProfile,
        hit_ratio: float,
        rate: float,
    ) -> ServiceDemand:
        """Demand of ``rate`` read-modify-write operations per second."""
        demand = self.read_demand(config, region, hit_ratio, rate)
        demand.add(self.write_demand(config, region, rate))
        return demand

    # ------------------------------------------------------------------ #
    # node evaluation
    # ------------------------------------------------------------------ #
    def node_demand(
        self,
        config: RegionServerConfig,
        regions: list[RegionLoadProfile],
        background_disk_bytes_per_s: float = 0.0,
    ) -> tuple[ServiceDemand, float]:
        """Aggregate demand for a node and the node's cache hit ratio."""
        hit = self.hit_ratio(config, regions)
        total = ServiceDemand()
        for region in regions:
            if region.read_rate:
                total.add(self.read_demand(config, region, hit, region.read_rate))
            write_rate = region.update_rate + region.insert_rate
            if write_rate:
                total.add(self.write_demand(config, region, write_rate))
            if region.scan_rate:
                total.add(self.scan_demand(config, region, hit, region.scan_rate))
            if region.rmw_rate:
                total.add(self.rmw_demand(config, region, hit, region.rmw_rate))
        total.disk_bytes += background_disk_bytes_per_s
        return total, hit

    def evaluate_node(
        self,
        config: RegionServerConfig,
        regions: list[RegionLoadProfile],
        background_disk_bytes_per_s: float = 0.0,
    ) -> NodeLoadResult:
        """Evaluate utilisation and latencies for one node for one tick."""
        demand, hit = self.node_demand(config, regions, background_disk_bytes_per_s)
        hw = self.hardware
        cpu_util = demand.cpu_millis / hw.cpu_millis_per_second
        iops_util = demand.disk_iops / hw.disk_iops
        disk_bw_util = demand.disk_bytes / (hw.disk_mb_per_second * MB)
        io_wait = max(iops_util, disk_bw_util)
        net_util = demand.network_bytes / (hw.network_mb_per_second * MB)
        utilization = max(cpu_util, io_wait, net_util)

        hosted_bytes = sum(r.size_bytes for r in regions)
        cache_bytes = config.block_cache_bytes(hw.heap_bytes)
        memstore_bytes = config.memstore_bytes(hw.heap_bytes)
        used = min(cache_bytes, hosted_bytes * 0.6) + memstore_bytes * 0.5 + 0.6 * hw.heap_bytes * 0.2
        memory_utilization = min(1.0, (used + 0.5 * (hw.memory_bytes - hw.heap_bytes)) / hw.memory_bytes)

        latencies = self._latencies(config, regions, hit, utilization)
        return NodeLoadResult(
            utilization=utilization,
            cpu_utilization=cpu_util,
            io_wait=io_wait,
            memory_utilization=memory_utilization,
            network_utilization=net_util,
            demand=demand,
            hit_ratio=hit,
            per_op_latency_ms=latencies,
            bottleneck=_bottleneck(cpu_util, io_wait, net_util),
        )

    def _latencies(
        self,
        config: RegionServerConfig,
        regions: list[RegionLoadProfile],
        hit_ratio: float,
        utilization: float,
    ) -> dict[str, float]:
        """Per-op latency estimates under the current utilisation."""
        # Queueing inflation: latencies grow as the bottleneck resource
        # saturates.  The raw utilisation (which can exceed 1 for offered
        # load) is mapped to an occupancy in [0, 1) so the closed-loop fixed
        # point stays stable; the simulator additionally clamps achieved
        # throughput to capacity (work conservation).
        rho = utilization / (1.0 + utilization)
        inflation = 1.0 / (1.0 - min(rho, 0.97))
        miss = max(0.0, 1.0 - hit_ratio)
        disk_ms = 1000.0 / self.hardware.disk_iops
        record_size = regions[0].record_size if regions else 1024
        scan_length = regions[0].scan_length if regions else 50

        read_ms = (
            CPU_READ_HIT_MS * hit_ratio
            + miss * (CPU_READ_MISS_MS + disk_ms)
            + CPU_RPC_OVERHEAD_MS
        )
        write_ms = CPU_WRITE_MS + CPU_RPC_OVERHEAD_MS + 0.2
        blocks = max(1.0, scan_length * record_size / config.block_size_bytes) + 1.0
        scan_ms = (
            CPU_SCAN_SETUP_MS
            + CPU_SCAN_PER_RECORD_MS * scan_length
            + CPU_SCAN_PER_BLOCK_MS * blocks
            + miss * blocks * disk_ms * 0.5
        )
        remote = 1.0 - _mean_locality(regions)
        read_ms *= 1.0 + remote * (REMOTE_READ_LATENCY_FACTOR - 1.0) * miss
        scan_ms *= 1.0 + remote * (REMOTE_READ_LATENCY_FACTOR - 1.0) * miss
        return {
            "read": read_ms * inflation,
            "update": write_ms * inflation,
            "insert": write_ms * inflation,
            "scan": scan_ms * inflation,
            "read_modify_write": (read_ms + write_ms) * inflation,
        }


def _mean_locality(regions: list[RegionLoadProfile]) -> float:
    """Request-weighted mean locality of the regions (1.0 when idle)."""
    total_rate = sum(r.total_rate for r in regions)
    if total_rate <= 0:
        return 1.0
    return sum(r.locality * r.total_rate for r in regions) / total_rate


class NodeEvaluator:
    """Tick-constant evaluation context for one node.

    :meth:`PerformanceModel.evaluate_node` recomputes every per-op unit cost
    from scratch on each call, even though everything except the offered
    rates -- hit-ratio inputs, write amplification, per-op unit costs keyed
    on ``(config, region static fields)`` -- is constant for a whole tick.
    ``NodeEvaluator`` hoists that static part out of the fixed-point loop:
    it is built once per (config, hosted regions) combination, cheaply
    :meth:`refresh`-ed when region sizes/localities drift between ticks,
    and its per-iteration entry points only scale precomputed unit demands
    by the current offered rates.

    Rates enter as slot-indexed rows (``OP_TYPES`` order: read, update,
    insert, scan, read_modify_write) so the hot loop never touches string
    keys.  Results are numerically equivalent to ``evaluate_node`` (same
    formulas, re-associated floating-point sums), which the kernel
    equivalence regression test checks end-to-end.
    """

    #: Per-region unit-demand row layout (one list per region):
    #: 0 read base cpu, 1-4 read miss-scaled (cpu, iops, bytes, net),
    #: 5-8 write (cpu, iops, bytes, net), 9 scan base cpu, 10 scan base net,
    #: 11-13 scan miss-scaled (iops, bytes, net), 14 hot bytes,
    #: 15 cold bytes, 16 hot request fraction, 17 locality,
    #: 18 size_bytes, 19 hot_data_fraction (18/19 support refresh()).
    __slots__ = (
        "hardware",
        "config",
        "region_ids",
        "memory_utilization",
        "_rows",
        "_cache_eff_bytes",
        "_amplification",
        "_memstore_bytes",
        "_block",
        "_disk_ms",
        "_write_ms",
        "_blocks0",
        "_scan_length0",
        "_cpu_budget",
        "_disk_iops_budget",
        "_disk_bytes_budget",
        "_network_bytes_budget",
    )

    def __init__(
        self,
        model: PerformanceModel,
        config: RegionServerConfig,
        regions: list,
    ) -> None:
        hw = model.hardware
        self.hardware = hw
        self.config = config
        self._cache_eff_bytes = CACHE_EFFICIENCY * config.block_cache_bytes(hw.heap_bytes)
        self._cpu_budget = hw.cpu_millis_per_second
        self._disk_iops_budget = hw.disk_iops
        self._disk_bytes_budget = hw.disk_mb_per_second * MB
        self._network_bytes_budget = hw.network_mb_per_second * MB
        self._amplification = model.write_amplification(config)
        self._memstore_bytes = max(config.memstore_bytes(hw.heap_bytes), 1)
        self._block = config.block_size_bytes

        self.region_ids = [region.region_id for region in regions]
        self._rows = [self._build_row(region) for region in regions]
        self._recompute_memory_utilization()

        # Latency statics (evaluate_node keys them on the first region).
        record_size = regions[0].record_size if regions else 1024
        scan_length = regions[0].scan_length if regions else 50
        self._disk_ms = 1000.0 / hw.disk_iops
        self._write_ms = CPU_WRITE_MS + CPU_RPC_OVERHEAD_MS + 0.2
        self._blocks0 = max(1.0, scan_length * record_size / self._block) + 1.0
        self._scan_length0 = scan_length

    def _build_row(self, region) -> list[float]:
        block = self._block
        remote = max(0.0, 1.0 - region.locality)
        scan_bytes = region.scan_length * region.record_size
        blocks = max(1.0, scan_bytes / block) + 1.0
        return [
            # read path: cpu = base + miss * delta (hit == 1 - miss)
            CPU_RPC_OVERHEAD_MS + CPU_READ_HIT_MS,
            CPU_READ_MISS_MS - CPU_READ_HIT_MS,
            1.0 + remote * REMOTE_READ_IOPS_FACTOR,
            float(block),
            remote * block,
            # write path (fully static per unit rate)
            CPU_RPC_OVERHEAD_MS
            + CPU_WRITE_MS
            + CPU_WRITE_COMPACTION_MS_PER_AMP * self._amplification,
            region.record_size / self._memstore_bytes * 400.0,
            region.record_size * self._amplification,
            float(region.record_size),
            # scan path
            CPU_RPC_OVERHEAD_MS
            + CPU_SCAN_SETUP_MS
            + CPU_SCAN_PER_RECORD_MS * region.scan_length
            + CPU_SCAN_PER_BLOCK_MS * blocks,
            float(scan_bytes),
            blocks * (1.0 + remote * REMOTE_READ_IOPS_FACTOR),
            blocks * block,
            remote * blocks * block,
            # hit-ratio inputs
            region.size_bytes * region.hot_data_fraction,
            region.size_bytes * (1.0 - region.hot_data_fraction),
            region.hot_request_fraction,
            region.locality,
            # refresh bookkeeping
            region.size_bytes,
            region.hot_data_fraction,
        ]

    def _recompute_memory_utilization(self) -> None:
        # Memory utilisation only depends on tick-constant state.
        hw = self.hardware
        hosted_bytes = 0.0
        for row in self._rows:
            hosted_bytes += row[18]
        cache_bytes = self.config.block_cache_bytes(hw.heap_bytes)
        used = (
            min(cache_bytes, hosted_bytes * 0.6)
            + self._memstore_bytes * 0.5
            + 0.6 * hw.heap_bytes * 0.2
        )
        self.memory_utilization = min(
            1.0, (used + 0.5 * (hw.memory_bytes - hw.heap_bytes)) / hw.memory_bytes
        )

    def refresh(self, regions: list) -> None:
        """Fold region size/locality drift into the precomputed rows.

        Insert traffic grows ``size_bytes`` a little every tick and moves or
        compactions flip ``locality``; both are folded in at O(changed
        regions) cost so the evaluator memo survives across ticks.  The
        other region fields (record size, scan length, skew fractions) are
        immutable after region creation.
        """
        rows = self._rows
        sizes_changed = False
        for index, region in enumerate(regions):
            row = rows[index]
            if row[17] != region.locality:
                sizes_changed = sizes_changed or row[18] != region.size_bytes
                rows[index] = self._build_row(region)
            elif row[18] != region.size_bytes:
                size = region.size_bytes
                hot_fraction = row[19]
                row[14] = size * hot_fraction
                row[15] = size * (1.0 - hot_fraction)
                row[18] = size
                sizes_changed = True
        if sizes_changed:
            self._recompute_memory_utilization()

    def _demand_pass(
        self, rate_rows: list, background_disk_bytes_per_s: float
    ) -> tuple[float, float, float, float, float, float, float, float]:
        """Fused single pass: hit-ratio inputs + demand accumulation.

        ``rate_rows`` holds one slot-indexed rate list per hosted region
        (``None`` for regions with no offered traffic).  Returns ``(hit,
        miss, cpu, iops, disk_bytes, net, total_rate, weighted_locality)``.
        """
        hot = cold = read_rate_sum = hot_req = 0.0
        cpu = iops = disk_bytes = net = 0.0
        m_cpu = m_iops = m_bytes = m_net = 0.0
        total_rate = weighted_locality = 0.0
        for row, rates in zip(self._rows, rate_rows):
            if rates is None:
                continue
            read, update, insert, scan, rmw = rates
            rr = read + rmw + scan
            if rr > 0.0:
                hot += row[14]
                cold += row[15]
                read_rate_sum += rr
                hot_req += row[16] * rr
            read_like = read + rmw
            if read_like:
                cpu += read_like * row[0]
                m_cpu += read_like * row[1]
                m_iops += read_like * row[2]
                m_bytes += read_like * row[3]
                m_net += read_like * row[4]
            write = update + insert + rmw
            if write:
                cpu += write * row[5]
                iops += write * row[6]
                disk_bytes += write * row[7]
                net += write * row[8]
            if scan:
                cpu += scan * row[9]
                net += scan * row[10]
                m_iops += scan * row[11]
                m_bytes += scan * row[12]
                m_net += scan * row[13]
            rate = read + update + insert + scan + rmw
            if rate:
                total_rate += rate
                weighted_locality += row[17] * rate

        if read_rate_sum > 0.0 and hot > 0.0:
            cache = self._cache_eff_bytes
            hot_requests = hot_req / read_rate_sum
            hot_covered = min(1.0, cache / hot)
            spare = max(0.0, cache - hot)
            cold_covered = min(1.0, spare / cold) if cold > 0 else 1.0
            hit = hot_requests * hot_covered + (1.0 - hot_requests) * cold_covered
        else:
            hit = 1.0
        miss = 1.0 - hit
        if miss < 0.0:
            miss = 0.0

        cpu += miss * m_cpu
        iops += miss * m_iops
        disk_bytes += miss * m_bytes + background_disk_bytes_per_s
        net += miss * m_net
        return hit, miss, cpu, iops, disk_bytes, net, total_rate, weighted_locality

    def _latency_dict(
        self, hit: float, miss: float, utilization: float, mean_locality: float
    ) -> dict[str, float]:
        rho = utilization / (1.0 + utilization)
        inflation = 1.0 / (1.0 - min(rho, 0.97))
        disk_ms = self._disk_ms
        read_ms = (
            CPU_READ_HIT_MS * hit
            + miss * (CPU_READ_MISS_MS + disk_ms)
            + CPU_RPC_OVERHEAD_MS
        )
        write_ms = self._write_ms
        blocks = self._blocks0
        scan_ms = (
            CPU_SCAN_SETUP_MS
            + CPU_SCAN_PER_RECORD_MS * self._scan_length0
            + CPU_SCAN_PER_BLOCK_MS * blocks
            + miss * blocks * disk_ms * 0.5
        )
        remote = 1.0 - mean_locality
        read_ms *= 1.0 + remote * (REMOTE_READ_LATENCY_FACTOR - 1.0) * miss
        scan_ms *= 1.0 + remote * (REMOTE_READ_LATENCY_FACTOR - 1.0) * miss
        return {
            "read": read_ms * inflation,
            "update": write_ms * inflation,
            "insert": write_ms * inflation,
            "scan": scan_ms * inflation,
            "read_modify_write": (read_ms + write_ms) * inflation,
        }

    def latencies(
        self, rate_rows: list, background_disk_bytes_per_s: float = 0.0
    ) -> dict[str, float]:
        """Per-op latencies only -- the cheap inner fixed-point iteration.

        Intermediate iterations need nothing but latencies, so this skips
        allocating :class:`NodeLoadResult`/:class:`ServiceDemand` objects.
        """
        hit, miss, cpu, iops, disk_bytes, net, total_rate, weighted_locality = (
            self._demand_pass(rate_rows, background_disk_bytes_per_s)
        )
        cpu_util = cpu / self._cpu_budget
        io_wait = max(iops / self._disk_iops_budget, disk_bytes / self._disk_bytes_budget)
        utilization = max(cpu_util, io_wait, net / self._network_bytes_budget)
        mean_locality = weighted_locality / total_rate if total_rate > 0.0 else 1.0
        return self._latency_dict(hit, miss, utilization, mean_locality)

    def evaluate_rates(
        self, rate_rows: list, background_disk_bytes_per_s: float = 0.0
    ) -> NodeLoadResult:
        """Full evaluation (equivalent to ``evaluate_node``) from rate rows."""
        hit, miss, cpu, iops, disk_bytes, net, total_rate, weighted_locality = (
            self._demand_pass(rate_rows, background_disk_bytes_per_s)
        )
        cpu_util = cpu / self._cpu_budget
        iops_util = iops / self._disk_iops_budget
        disk_bw_util = disk_bytes / self._disk_bytes_budget
        io_wait = max(iops_util, disk_bw_util)
        net_util = net / self._network_bytes_budget
        utilization = max(cpu_util, io_wait, net_util)
        mean_locality = weighted_locality / total_rate if total_rate > 0.0 else 1.0
        return NodeLoadResult(
            utilization=utilization,
            cpu_utilization=cpu_util,
            io_wait=io_wait,
            memory_utilization=self.memory_utilization,
            network_utilization=net_util,
            demand=ServiceDemand(
                cpu_millis=cpu,
                disk_iops=iops,
                disk_bytes=disk_bytes,
                network_bytes=net,
            ),
            hit_ratio=hit,
            per_op_latency_ms=self._latency_dict(hit, miss, utilization, mean_locality),
            bottleneck=_bottleneck(cpu_util, io_wait, net_util),
        )

    def evaluate(
        self,
        regions: list[RegionLoadProfile],
        background_disk_bytes_per_s: float = 0.0,
    ) -> NodeLoadResult:
        """Evaluate from rate-carrying profiles (unit-test convenience)."""
        rate_rows = [
            [p.read_rate, p.update_rate, p.insert_rate, p.scan_rate, p.rmw_rate]
            for p in regions
        ]
        return self.evaluate_rates(rate_rows, background_disk_bytes_per_s)
