"""Time-stepped cluster simulator.

:class:`ClusterSimulator` is the analytical substitute for the paper's
physical HBase/HDFS deployment.  It tracks RegionServers (with their
heterogeneous configurations), data partitions (Regions), and the closed-loop
client populations, and advances them in fixed ticks.

The simulator exposes exactly the observables and actions that the MeT
framework, the tiramola baseline and the manual strategies need:

* observables -- per-node system metrics (CPU, I/O wait, memory), per-node
  locality index, per-region read/write/scan counters, per-tenant
  throughput;
* actions -- add/remove nodes (with IaaS-like boot delays), reconfigure a
  node (drain + restart), move regions, trigger major compactions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.hbase.config import DEFAULT_HOMOGENEOUS, RegionServerConfig
from repro.simulation.clock import SimulationClock
from repro.simulation.hardware import MB, HardwareSpec
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.perfmodel import PerformanceModel, RegionLoadProfile
from repro.simulation.workload import WorkloadBinding

#: Time for a new virtual machine to boot and join the cluster (seconds).
DEFAULT_BOOT_SECONDS = 90.0
#: Time for a RegionServer restart during reconfiguration (seconds).
DEFAULT_RESTART_SECONDS = 35.0
#: Share of disk bandwidth a major compaction may consume.
COMPACTION_DISK_SHARE = 0.45
#: Locality of a region right after it is moved to a node that does not hold
#: its blocks (some blocks may still be cached or co-located by chance).
REMOTE_LOCALITY = 0.05

#: Node lifecycle states.
STATE_ONLINE = "online"
STATE_BOOTING = "booting"
STATE_RESTARTING = "restarting"
STATE_OFFLINE = "offline"


class SimulationError(RuntimeError):
    """Raised on invalid cluster operations (unknown node, bad move, ...)."""


@dataclass
class SimulatedRegion:
    """One data partition (an HBase Region) in the simulator."""

    region_id: str
    workload: str
    size_bytes: float
    record_size: int = 1024
    scan_length: int = 50
    hot_data_fraction: float = 0.40
    hot_request_fraction: float = 0.50
    node: str | None = None
    block_homes: set[str] = field(default_factory=set)
    reads: float = 0.0
    writes: float = 0.0
    scans: float = 0.0
    read_rate: float = 0.0
    write_rate: float = 0.0
    scan_rate: float = 0.0

    @property
    def locality(self) -> float:
        """1.0 when the hosting node also stores the region's blocks."""
        if self.node is None:
            return 0.0
        return 1.0 if self.node in self.block_homes else REMOTE_LOCALITY

    def reset_counters(self) -> None:
        """Zero the cumulative request counters (used between experiments)."""
        self.reads = 0.0
        self.writes = 0.0
        self.scans = 0.0


@dataclass
class SimulatedNode:
    """One RegionServer/DataNode pair in the simulator."""

    name: str
    hardware: HardwareSpec
    config: RegionServerConfig
    state: str = STATE_ONLINE
    state_until: float = 0.0
    profile_name: str = "default"
    pending_compaction_bytes: float = 0.0
    cpu_utilization: float = 0.0
    io_wait: float = 0.0
    memory_utilization: float = 0.0
    served_ops: float = 0.0

    @property
    def online(self) -> bool:
        """Whether the node currently serves requests."""
        return self.state == STATE_ONLINE


class ClusterSimulator:
    """Analytical simulation of an HBase cluster under closed-loop load."""

    def __init__(
        self,
        hardware: HardwareSpec | None = None,
        default_config: RegionServerConfig | None = None,
        boot_seconds: float = DEFAULT_BOOT_SECONDS,
        restart_seconds: float = DEFAULT_RESTART_SECONDS,
        tick_seconds: float = 5.0,
    ) -> None:
        self.hardware = hardware or HardwareSpec()
        self.default_config = (default_config or DEFAULT_HOMOGENEOUS).validate()
        self.boot_seconds = boot_seconds
        self.restart_seconds = restart_seconds
        self.clock = SimulationClock(tick_seconds=tick_seconds)
        self.metrics = MetricsRegistry()
        self.nodes: dict[str, SimulatedNode] = {}
        self.regions: dict[str, SimulatedRegion] = {}
        self.bindings: dict[str, WorkloadBinding] = {}
        self._node_counter = itertools.count(1)
        self._model_cache: dict[HardwareSpec, PerformanceModel] = {}
        self._binding_throughput: dict[str, float] = {}
        self.total_ops = 0.0

    # ------------------------------------------------------------------ #
    # topology management
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        name: str | None = None,
        config: RegionServerConfig | None = None,
        hardware: HardwareSpec | None = None,
        profile_name: str = "default",
        online: bool = True,
    ) -> str:
        """Add a node; ``online=False`` makes it boot asynchronously."""
        if name is None:
            name = f"rs-{next(self._node_counter)}"
        if name in self.nodes:
            raise SimulationError(f"node {name!r} already exists")
        node = SimulatedNode(
            name=name,
            hardware=hardware or self.hardware,
            config=(config or self.default_config).validate(),
            profile_name=profile_name,
        )
        if not online:
            node.state = STATE_BOOTING
            node.state_until = self.clock.now + self.boot_seconds
        self.nodes[name] = node
        return name

    def remove_node(self, name: str, reassign: bool = True) -> None:
        """Remove a node, reassigning its regions to the least-loaded nodes."""
        node = self._node(name)
        hosted = [r for r in self.regions.values() if r.node == name]
        del self.nodes[node.name]
        self.metrics.drop_entity(name)
        if not reassign:
            for region in hosted:
                region.node = None
            return
        for region in hosted:
            target = self._least_loaded_online_node(exclude={name})
            region.node = target
        # Blocks stored on the removed node are re-replicated elsewhere over
        # time; approximate by dropping it from every region's block homes.
        for region in self.regions.values():
            region.block_homes.discard(name)

    def add_region(
        self,
        region_id: str,
        workload: str,
        size_bytes: float,
        node: str | None = None,
        record_size: int = 1024,
        scan_length: int = 50,
        hot_data_fraction: float = 0.40,
        hot_request_fraction: float = 0.50,
    ) -> SimulatedRegion:
        """Create a region; its blocks are initially local to its node."""
        if region_id in self.regions:
            raise SimulationError(f"region {region_id!r} already exists")
        region = SimulatedRegion(
            region_id=region_id,
            workload=workload,
            size_bytes=size_bytes,
            record_size=record_size,
            scan_length=scan_length,
            hot_data_fraction=hot_data_fraction,
            hot_request_fraction=hot_request_fraction,
            node=node,
        )
        if node is not None:
            self._node(node)
            region.block_homes.add(node)
        self.regions[region_id] = region
        return region

    def move_region(self, region_id: str, node_name: str) -> None:
        """Reassign a region to another node (cheap metadata operation)."""
        region = self._region(region_id)
        node = self._node(node_name)
        region.node = node.name

    def reconfigure_node(
        self,
        name: str,
        config: RegionServerConfig,
        profile_name: str | None = None,
        drain: bool = True,
    ) -> list[str]:
        """Restart a node with a new configuration.

        When ``drain`` is true (the MeT actuator behaviour, Section 5), the
        node's regions are first redistributed across the remaining online
        nodes so data stays available during the restart.  Returns the ids of
        the drained regions so the caller can move them back afterwards.
        """
        node = self._node(name)
        drained: list[str] = []
        if drain:
            for region in self.regions.values():
                if region.node == name:
                    target = self._least_loaded_online_node(exclude={name})
                    if target is not None:
                        region.node = target
                    drained.append(region.region_id)
        node.config = config.validate()
        if profile_name is not None:
            node.profile_name = profile_name
        node.state = STATE_RESTARTING
        node.state_until = self.clock.now + self.restart_seconds
        return drained

    def major_compact(self, name: str) -> float:
        """Schedule a major compaction of the node's non-local regions.

        Returns the number of bytes that will be rewritten.  While the
        compaction runs it consumes part of the node's disk bandwidth; when
        it completes, the compacted regions become fully local to the node.
        """
        node = self._node(name)
        bytes_to_rewrite = sum(
            region.size_bytes
            for region in self.regions.values()
            if region.node == name and region.locality < 1.0
        )
        node.pending_compaction_bytes += bytes_to_rewrite
        return bytes_to_rewrite

    # ------------------------------------------------------------------ #
    # workload management
    # ------------------------------------------------------------------ #
    def attach_workload(self, binding: WorkloadBinding) -> None:
        """Attach a closed-loop client population."""
        for region_id in binding.regions():
            self._region(region_id)
        self.bindings[binding.name] = binding

    def detach_workload(self, name: str) -> None:
        """Remove a client population (e.g. a tenant leaving)."""
        self.bindings.pop(name, None)

    def set_workload_active(self, name: str, active: bool) -> None:
        """Activate or deactivate a tenant without removing it."""
        if name not in self.bindings:
            raise SimulationError(f"unknown workload {name!r}")
        self.bindings[name].active = active

    # ------------------------------------------------------------------ #
    # queries used by controllers and experiments
    # ------------------------------------------------------------------ #
    def online_nodes(self) -> list[SimulatedNode]:
        """Nodes currently serving requests."""
        return [node for node in self.nodes.values() if node.online]

    def regions_on(self, node_name: str) -> list[SimulatedRegion]:
        """Regions currently assigned to ``node_name``."""
        return [r for r in self.regions.values() if r.node == node_name]

    def node_locality_index(self, node_name: str) -> float:
        """Size-weighted locality of the regions hosted by a node."""
        hosted = self.regions_on(node_name)
        total = sum(r.size_bytes for r in hosted)
        if total <= 0:
            return 1.0
        return sum(r.locality * r.size_bytes for r in hosted) / total

    def assignment(self) -> dict[str, str | None]:
        """Mapping region id -> hosting node name."""
        return {rid: region.node for rid, region in self.regions.items()}

    def binding_throughput(self, name: str) -> float:
        """Most recent achieved throughput of a tenant (ops/s)."""
        return self._binding_throughput.get(name, 0.0)

    def cluster_throughput(self) -> float:
        """Most recent total achieved throughput (ops/s)."""
        return sum(self._binding_throughput.values())

    # ------------------------------------------------------------------ #
    # simulation loop
    # ------------------------------------------------------------------ #
    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds`` in whole ticks."""
        remaining = seconds
        while remaining > 1e-9:
            step = min(self.clock.tick_seconds, remaining)
            self.tick(step)
            remaining -= step

    def tick(self, seconds: float | None = None) -> None:
        """Advance the simulation by one tick."""
        dt = seconds if seconds is not None else self.clock.tick_seconds
        self._advance_node_states()
        compaction_bg = self._progress_compactions(dt)
        throughputs, node_results, region_rates = self._solve_fixed_point(compaction_bg)
        self._apply_tick_results(dt, throughputs, node_results, region_rates)
        self.clock.advance(dt)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _node(self, name: str) -> SimulatedNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def _region(self, region_id: str) -> SimulatedRegion:
        try:
            return self.regions[region_id]
        except KeyError:
            raise SimulationError(f"unknown region {region_id!r}") from None

    def _model_for(self, node: SimulatedNode) -> PerformanceModel:
        if node.hardware not in self._model_cache:
            self._model_cache[node.hardware] = PerformanceModel(node.hardware)
        return self._model_cache[node.hardware]

    def _least_loaded_online_node(self, exclude: set[str]) -> str | None:
        candidates = [n for n in self.online_nodes() if n.name not in exclude]
        if not candidates:
            candidates = [
                n
                for n in self.nodes.values()
                if n.name not in exclude and n.state != STATE_OFFLINE
            ]
        if not candidates:
            return None
        counts = {
            node.name: len(self.regions_on(node.name)) for node in candidates
        }
        return min(candidates, key=lambda node: counts[node.name]).name

    def _advance_node_states(self) -> None:
        for node in self.nodes.values():
            if node.state in (STATE_BOOTING, STATE_RESTARTING):
                if self.clock.now >= node.state_until:
                    node.state = STATE_ONLINE
                    node.state_until = 0.0

    def _progress_compactions(self, dt: float) -> dict[str, float]:
        """Advance compactions; return per-node background disk bytes/s."""
        background: dict[str, float] = {}
        for node in self.nodes.values():
            if node.pending_compaction_bytes <= 0 or not node.online:
                continue
            rate = node.hardware.disk_mb_per_second * MB * COMPACTION_DISK_SHARE
            done = min(node.pending_compaction_bytes, rate * dt)
            node.pending_compaction_bytes -= done
            background[node.name] = rate
            if node.pending_compaction_bytes <= 1e-6:
                node.pending_compaction_bytes = 0.0
                for region in self.regions_on(node.name):
                    region.block_homes = {node.name}
        return background

    def _region_profiles(
        self, node: SimulatedNode, offered: dict[str, dict[str, float]]
    ) -> list[RegionLoadProfile]:
        profiles: list[RegionLoadProfile] = []
        for region in self.regions_on(node.name):
            rates = offered.get(region.region_id, {})
            profiles.append(
                RegionLoadProfile(
                    region_id=region.region_id,
                    size_bytes=region.size_bytes,
                    locality=region.locality,
                    record_size=region.record_size,
                    scan_length=region.scan_length,
                    hot_data_fraction=region.hot_data_fraction,
                    hot_request_fraction=region.hot_request_fraction,
                    read_rate=rates.get("read", 0.0),
                    update_rate=rates.get("update", 0.0),
                    insert_rate=rates.get("insert", 0.0),
                    scan_rate=rates.get("scan", 0.0),
                    rmw_rate=rates.get("read_modify_write", 0.0),
                )
            )
        return profiles

    def _offered_rates(self, throughputs: dict[str, float]) -> dict[str, dict[str, float]]:
        """Per-region offered rates implied by per-binding throughputs."""
        offered: dict[str, dict[str, float]] = {}
        for name, binding in self.bindings.items():
            for load in binding.offered_loads(throughputs.get(name, 0.0)):
                bucket = offered.setdefault(load.region_id, {})
                for op, rate in load.rates.items():
                    bucket[op] = bucket.get(op, 0.0) + rate
        return offered

    def _evaluate_nodes(
        self,
        offered: dict[str, dict[str, float]],
        compaction_bg: dict[str, float],
    ) -> tuple[dict[str, object], dict[str, dict[str, float]], dict[str, float]]:
        """Evaluate online nodes; returns results, region latencies and scales."""
        node_results: dict[str, object] = {}
        region_latencies: dict[str, dict[str, float]] = {}
        region_scale: dict[str, float] = {}
        for node in self.nodes.values():
            if not node.online:
                continue
            profiles = self._region_profiles(node, offered)
            result = self._model_for(node).evaluate_node(
                node.config, profiles, compaction_bg.get(node.name, 0.0)
            )
            node_results[node.name] = result
            scale = 1.0 if result.utilization <= 1.0 else 1.0 / result.utilization
            for profile in profiles:
                region_latencies[profile.region_id] = result.per_op_latency_ms
                region_scale[profile.region_id] = scale
        return node_results, region_latencies, region_scale

    def _solve_fixed_point(
        self, compaction_bg: dict[str, float], iterations: int = 10
    ) -> tuple[dict[str, float], dict[str, object], dict[str, dict[str, float]]]:
        """Solve the closed-loop throughput fixed point for this tick.

        Returns the per-binding *achieved* throughput, the per-node model
        results and the per-region achieved rates.  Achieved throughput is
        work-conserving: offered load on a node is clamped to the node's
        capacity (utilisation 1.0).
        """
        throughputs = {
            name: self._binding_throughput.get(name, binding.threads * 50.0)
            for name, binding in self.bindings.items()
        }
        region_latencies: dict[str, dict[str, float]] = {}
        for _ in range(iterations):
            offered = self._offered_rates(throughputs)
            _, region_latencies, _ = self._evaluate_nodes(offered, compaction_bg)
            new_throughputs: dict[str, float] = {}
            for name, binding in self.bindings.items():
                latency = binding.mean_latency(region_latencies)
                target = binding.max_throughput(latency)
                previous = throughputs[name]
                new_throughputs[name] = 0.5 * previous + 0.5 * target
            throughputs = new_throughputs

        offered = self._offered_rates(throughputs)
        node_results, region_latencies, region_scale = self._evaluate_nodes(
            offered, compaction_bg
        )
        achieved: dict[str, float] = {}
        region_rates: dict[str, dict[str, float]] = {}
        for name, binding in self.bindings.items():
            total = 0.0
            for load in binding.offered_loads(throughputs.get(name, 0.0)):
                scale = region_scale.get(load.region_id, 0.0)
                bucket = region_rates.setdefault(load.region_id, {})
                for op, rate in load.rates.items():
                    bucket[op] = bucket.get(op, 0.0) + rate * scale
                total += load.total * scale
            achieved[name] = total
        return achieved, node_results, region_rates

    def _apply_tick_results(
        self,
        dt: float,
        throughputs: dict[str, float],
        node_results: dict[str, object],
        region_rates: dict[str, dict[str, float]],
    ) -> None:
        now = self.clock.now + dt
        # Reset per-region rates before accumulating this tick's load.
        for region in self.regions.values():
            region.read_rate = 0.0
            region.write_rate = 0.0
            region.scan_rate = 0.0

        total = 0.0
        for name in self.bindings:
            throughput = throughputs.get(name, 0.0)
            self._binding_throughput[name] = throughput
            total += throughput
            self.metrics.record(f"workload:{name}", "throughput", now, throughput)

        for region_id, rates in region_rates.items():
            region = self._region(region_id)
            reads = rates.get("read", 0.0) + rates.get("read_modify_write", 0.0)
            writes = (
                rates.get("update", 0.0)
                + rates.get("insert", 0.0)
                + rates.get("read_modify_write", 0.0)
            )
            scans = rates.get("scan", 0.0)
            region.reads += reads * dt
            region.writes += writes * dt
            region.scans += scans * dt
            region.read_rate += reads
            region.write_rate += writes
            region.scan_rate += scans
            region.size_bytes += rates.get("insert", 0.0) * dt * region.record_size

        self.total_ops += total * dt
        self.metrics.record("cluster", "throughput", now, total)
        self.metrics.record("cluster", "operations", now, total * dt)
        self.metrics.record("cluster", "nodes", now, float(len(self.online_nodes())))

        for node in self.nodes.values():
            result = node_results.get(node.name)
            if result is None:
                node.cpu_utilization = 0.0
                node.io_wait = 0.0
                node.memory_utilization = 0.0
                node.served_ops = 0.0
            else:
                node.cpu_utilization = min(1.0, result.cpu_utilization)
                node.io_wait = min(1.0, result.io_wait)
                node.memory_utilization = min(1.0, result.memory_utilization)
                node.served_ops = sum(
                    region.read_rate + region.write_rate + region.scan_rate
                    for region in self.regions_on(node.name)
                )
            self.metrics.record(node.name, "cpu", now, node.cpu_utilization)
            self.metrics.record(node.name, "io_wait", now, node.io_wait)
            self.metrics.record(node.name, "memory", now, node.memory_utilization)
            self.metrics.record(node.name, "requests", now, node.served_ops)
            self.metrics.record(
                node.name, "locality", now, self.node_locality_index(node.name)
            )
