"""Time-stepped cluster simulator.

:class:`ClusterSimulator` is the analytical substitute for the paper's
physical HBase/HDFS deployment.  It tracks RegionServers (with their
heterogeneous configurations), data partitions (Regions), and the closed-loop
client populations, and advances them in fixed ticks.

The simulator exposes exactly the observables and actions that the MeT
framework, the tiramola baseline and the manual strategies need:

* observables -- per-node system metrics (CPU, I/O wait, memory), per-node
  locality index, per-region read/write/scan counters, per-tenant
  throughput;
* actions -- add/remove nodes (with IaaS-like boot delays), reconfigure a
  node (drain + restart), move regions, trigger major compactions.

Three kernels solve the per-tick closed-loop fixed point (implemented as
solver strategies in :mod:`repro.simulation.solvers`):

* ``kernel="fast"`` (the default) keeps an incremental ``node -> regions``
  index, reuses :class:`~repro.simulation.perfmodel.RegionLoadProfile`
  objects and offered-rate dicts across fixed-point iterations, evaluates
  nodes through memoised tick-constant
  :class:`~repro.simulation.perfmodel.NodeEvaluator` contexts, and stops
  iterating as soon as per-binding throughputs converge below
  ``fixed_point_tolerance``;
* ``kernel="reference"`` preserves the original seed behaviour -- full
  region scans, fresh allocations and a fixed iteration count -- and exists
  as the baseline for ``scripts/bench_kernel.py`` and the kernel
  equivalence regression test;
* ``kernel="event"`` builds on the fast kernel: a tick-stable, insert-free
  fixed point is *reused* across ticks until any mutation dirties it, an
  internal :class:`~repro.simulation.events.EventLoop` bounds how far a
  quiescent stretch may be fast-forwarded in one macro-tick, and real
  solves run through a vectorised (numpy) per-region hot loop at scale.
  Opt-in because fast remains the golden-trace kernel.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.hbase.config import DEFAULT_HOMOGENEOUS, RegionServerConfig
from repro.util.rng import make_rng
from repro.simulation.clock import SimulationClock
from repro.simulation.events import (
    EVENT_COMPACTION_DONE,
    EVENT_NODE_ONLINE,
    EventLoop,
    KernelStats,
    SimulationEvent,
)
from repro.simulation.hardware import MB, HardwareSpec
from repro.simulation.metrics import MetricsRegistry
from repro.simulation.perfmodel import PerformanceModel
from repro.simulation.solvers import (
    KERNEL_EVENT,
    KERNEL_FAST,
    KERNEL_REFERENCE,
    KERNELS,
    make_solver,
)
from repro.simulation.workload import WorkloadBinding

#: Time for a new virtual machine to boot and join the cluster (seconds).
DEFAULT_BOOT_SECONDS = 90.0
#: Time for a RegionServer restart during reconfiguration (seconds).
DEFAULT_RESTART_SECONDS = 35.0
#: Share of disk bandwidth a major compaction may consume.
COMPACTION_DISK_SHARE = 0.45
#: Locality of a region right after it is moved to a node that does not hold
#: its blocks (some blocks may still be cached or co-located by chance).
REMOTE_LOCALITY = 0.05

#: Node lifecycle states.
STATE_ONLINE = "online"
STATE_BOOTING = "booting"
STATE_RESTARTING = "restarting"
STATE_OFFLINE = "offline"

#: Default relative tolerance at which the adaptive fixed point stops
#: iterating; tight enough that fast and reference kernels agree to well
#: within 1e-6 relative on per-binding throughput series.
DEFAULT_FIXED_POINT_TOLERANCE = 1e-8
#: Iteration cap of the fixed-point solver (the seed always ran this many).
DEFAULT_FIXED_POINT_ITERATIONS = 10

#: Safety margin (ticks) by which compaction-completion events are
#: scheduled early: the ticks between the event and the actual completion
#: are simulated for real (cheap -- the cached solution is still reused),
#: which keeps macro-tick spans strictly clear of the completion tick.
_COMPACTION_EVENT_MARGIN_TICKS = 2.0


class SimulationError(RuntimeError):
    """Raised on invalid cluster operations (unknown node, bad move, ...)."""


@dataclass
class SimulatedRegion:
    """One data partition (an HBase Region) in the simulator."""

    region_id: str
    workload: str
    size_bytes: float
    record_size: int = 1024
    scan_length: int = 50
    hot_data_fraction: float = 0.40
    hot_request_fraction: float = 0.50
    node: str | None = None
    block_homes: set[str] = field(default_factory=set)
    reads: float = 0.0
    writes: float = 0.0
    scans: float = 0.0
    read_rate: float = 0.0
    write_rate: float = 0.0
    scan_rate: float = 0.0

    def __setattr__(self, name: str, value) -> None:
        # Keep the owning simulator's node->regions index coherent even when
        # callers assign ``region.node`` directly (placement plans and test
        # fixtures do); regions created outside a simulator have no owner.
        if name == "node":
            old = getattr(self, "node", None)
            object.__setattr__(self, name, value)
            owner = getattr(self, "_owner", None)
            if owner is not None and old != value:
                owner._reindex_region(self, old, value)
            return
        object.__setattr__(self, name, value)
        if name == "block_homes":
            # Replacing the block-home set changes locality, which the event
            # kernel's cached solution depends on (compaction completions and
            # placement plans assign it directly).
            owner = getattr(self, "_owner", None)
            if owner is not None:
                owner._mark_structure()

    @property
    def locality(self) -> float:
        """1.0 when the hosting node also stores the region's blocks."""
        if self.node is None:
            return 0.0
        return 1.0 if self.node in self.block_homes else REMOTE_LOCALITY

    def reset_counters(self) -> None:
        """Zero the cumulative request counters (used between experiments)."""
        self.reads = 0.0
        self.writes = 0.0
        self.scans = 0.0


@dataclass
class SimulatedNode:
    """One RegionServer/DataNode pair in the simulator."""

    name: str
    hardware: HardwareSpec
    config: RegionServerConfig
    state: str = STATE_ONLINE
    state_until: float = 0.0
    profile_name: str = "default"
    pending_compaction_bytes: float = 0.0
    cpu_utilization: float = 0.0
    io_wait: float = 0.0
    memory_utilization: float = 0.0
    served_ops: float = 0.0

    @property
    def online(self) -> bool:
        """Whether the node currently serves requests."""
        return self.state == STATE_ONLINE


class ClusterSimulator:
    """Analytical simulation of an HBase cluster under closed-loop load."""

    def __init__(
        self,
        hardware: HardwareSpec | None = None,
        default_config: RegionServerConfig | None = None,
        boot_seconds: float = DEFAULT_BOOT_SECONDS,
        restart_seconds: float = DEFAULT_RESTART_SECONDS,
        tick_seconds: float = 5.0,
        kernel: str = KERNEL_FAST,
        fixed_point_tolerance: float = DEFAULT_FIXED_POINT_TOLERANCE,
        fixed_point_max_iterations: int = DEFAULT_FIXED_POINT_ITERATIONS,
        seed: int | random.Random = 0,
        vectorize: bool | None = None,
        record_latency_distributions: bool = True,
    ) -> None:
        if kernel not in KERNELS:
            raise SimulationError(f"unknown kernel {kernel!r}")
        #: The run's randomness stream.  The simulator itself is fully
        #: deterministic; this generator is what scenario components
        #: (balancers, fault injectors, arriving-tenant placement) share so
        #: a whole run replays bit-identically from one seed.
        self.rng = make_rng(seed)
        self.hardware = hardware or HardwareSpec()
        self.default_config = (default_config or DEFAULT_HOMOGENEOUS).validate()
        self.boot_seconds = boot_seconds
        self.restart_seconds = restart_seconds
        self.clock = SimulationClock(tick_seconds=tick_seconds)
        self.metrics = MetricsRegistry()
        self.nodes: dict[str, SimulatedNode] = {}
        self.regions: dict[str, SimulatedRegion] = {}
        self.bindings: dict[str, WorkloadBinding] = {}
        self.kernel = kernel
        self.fixed_point_tolerance = fixed_point_tolerance
        self.fixed_point_max_iterations = fixed_point_max_iterations
        self._node_counter = itertools.count(1)
        self._region_seq = itertools.count()
        self._model_cache: dict[HardwareSpec, PerformanceModel] = {}
        self._binding_throughput: dict[str, float] = {}
        #: Most recent per-binding mean request latency (ms), from the same
        #: final fixed-point state as the achieved throughputs.
        self._binding_latency_ms: dict[str, float] = {}
        #: Whether solvers build -- and the tick loop records -- per-binding
        #: latency distribution summaries alongside the scalar means.  On by
        #: default; pure-throughput sweeps can turn it off (PERFORMANCE.md).
        self.record_latency_distributions = record_latency_distributions
        #: Most recent per-binding latency summary (same solve as the means).
        self._binding_latency_summary: dict[str, object] = {}
        #: Incremental node -> {region_id -> region} index (``None`` bucket
        #: holds unassigned regions); kept coherent by SimulatedRegion's
        #: ``node`` setter hook.
        self._regions_by_node: dict[str | None, dict[str, SimulatedRegion]] = {}
        #: Per-node counters bumped whenever a region enters/leaves a node.
        self._assignment_versions: dict[str | None, int] = {}
        #: Per-node (version, creation-ordered regions) cache for regions_on.
        self._sorted_regions_cache: dict[str, tuple[int, list[SimulatedRegion]]] = {}
        #: Regions whose rate fields were written last tick (cheap reset).
        self._rated_regions: list[SimulatedRegion] = []
        #: Bumped on attach/detach; invalidates the cached rate context.
        self._workloads_version = 0
        #: Bumped on any topology/config/hardware/assignment/locality change;
        #: together with the workload version it forms the signature the
        #: event kernel's cached solution and vector context are keyed on.
        self._structure_version = 0
        #: Pre-fault hardware of degraded nodes (see degrade_node).
        self._base_hardware: dict[str, HardwareSpec] = {}
        self.total_ops = 0.0
        #: Internal event queue bounding event-kernel fast-forwards (boot /
        #: restart / compaction completions).  Unused by the other kernels.
        self.events = EventLoop()
        #: Tick/solve/skip counters (benchmark + regression instrumentation).
        self.stats = KernelStats()
        self._solver = make_solver(kernel, self, vectorize=vectorize)

    # ------------------------------------------------------------------ #
    # topology management
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        name: str | None = None,
        config: RegionServerConfig | None = None,
        hardware: HardwareSpec | None = None,
        profile_name: str = "default",
        online: bool = True,
    ) -> str:
        """Add a node; ``online=False`` makes it boot asynchronously."""
        if name is None:
            name = f"rs-{next(self._node_counter)}"
        if name in self.nodes:
            raise SimulationError(f"node {name!r} already exists")
        node = SimulatedNode(
            name=name,
            hardware=hardware or self.hardware,
            config=(config or self.default_config).validate(),
            profile_name=profile_name,
        )
        if not online:
            node.state = STATE_BOOTING
            node.state_until = self.clock.now + self.boot_seconds
        self.nodes[name] = node
        self._mark_structure()
        if self.kernel == KERNEL_EVENT and not online:
            self.events.schedule(
                node.state_until, EVENT_NODE_ONLINE, (name, node.state_until)
            )
        return name

    def remove_node(self, name: str, reassign: bool = True) -> None:
        """Remove a node, reassigning its regions to the least-loaded nodes."""
        node = self._node(name)
        hosted = self.regions_on(name)
        del self.nodes[node.name]
        self.metrics.drop_entity(name)
        self._solver.forget_node(name)
        self._base_hardware.pop(name, None)
        self._mark_structure()
        if not reassign:
            for region in hosted:
                region.node = None
            self._regions_by_node.pop(name, None)
            self._assignment_versions.pop(name, None)
            self._sorted_regions_cache.pop(name, None)
            return
        counts, candidates = self._drain_counts(exclude_name=name)
        for region in hosted:
            target = _pick_least_loaded(counts, candidates)
            region.node = target
            if target is not None:
                counts[target] += 1
        self._regions_by_node.pop(name, None)
        self._assignment_versions.pop(name, None)
        self._sorted_regions_cache.pop(name, None)
        # Blocks stored on the removed node are re-replicated elsewhere over
        # time; approximate by dropping it from every region's block homes.
        for region in self.regions.values():
            region.block_homes.discard(name)

    def add_region(
        self,
        region_id: str,
        workload: str,
        size_bytes: float,
        node: str | None = None,
        record_size: int = 1024,
        scan_length: int = 50,
        hot_data_fraction: float = 0.40,
        hot_request_fraction: float = 0.50,
    ) -> SimulatedRegion:
        """Create a region; its blocks are initially local to its node."""
        if region_id in self.regions:
            raise SimulationError(f"region {region_id!r} already exists")
        region = SimulatedRegion(
            region_id=region_id,
            workload=workload,
            size_bytes=size_bytes,
            record_size=record_size,
            scan_length=scan_length,
            hot_data_fraction=hot_data_fraction,
            hot_request_fraction=hot_request_fraction,
            node=node,
        )
        if node is not None:
            self._node(node)
            region.block_homes.add(node)
        self.regions[region_id] = region
        region._seq = next(self._region_seq)
        self._regions_by_node.setdefault(node, {})[region_id] = region
        self._assignment_versions[node] = self._assignment_versions.get(node, 0) + 1
        region._owner = self
        self._mark_structure()
        return region

    def move_region(self, region_id: str, node_name: str) -> None:
        """Reassign a region to another node (cheap metadata operation)."""
        region = self._region(region_id)
        node = self._node(node_name)
        region.node = node.name

    def reconfigure_node(
        self,
        name: str,
        config: RegionServerConfig,
        profile_name: str | None = None,
        drain: bool = True,
    ) -> list[str]:
        """Restart a node with a new configuration.

        When ``drain`` is true (the MeT actuator behaviour, Section 5), the
        node's regions are first redistributed across the remaining online
        nodes so data stays available during the restart.  Returns the ids of
        the drained regions so the caller can move them back afterwards.
        """
        node = self._node(name)
        drained: list[str] = []
        if drain:
            hosted = self.regions_on(name)
            if hosted:
                counts, candidates = self._drain_counts(exclude_name=name)
                for region in hosted:
                    target = _pick_least_loaded(counts, candidates)
                    if target is not None:
                        region.node = target
                        counts[target] += 1
                    drained.append(region.region_id)
        node.config = config.validate()
        if profile_name is not None:
            node.profile_name = profile_name
        node.state = STATE_RESTARTING
        node.state_until = self.clock.now + self.restart_seconds
        self._mark_structure()
        if self.kernel == KERNEL_EVENT:
            self.events.schedule(
                node.state_until, EVENT_NODE_ONLINE, (name, node.state_until)
            )
        return drained

    def major_compact(self, name: str) -> float:
        """Schedule a major compaction of the node's non-local regions.

        Returns the number of bytes that will be rewritten.  While the
        compaction runs it consumes part of the node's disk bandwidth; when
        it completes, the compacted regions become fully local to the node.
        """
        node = self._node(name)
        bytes_to_rewrite = sum(
            region.size_bytes
            for region in self.regions_on(name)
            if region.locality < 1.0
        )
        node.pending_compaction_bytes += bytes_to_rewrite
        self._mark_dirty()
        self._schedule_compaction_event(node)
        return bytes_to_rewrite

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #
    def fail_node(self, name: str) -> list[str]:
        """Crash a node: it disappears and its regions are reassigned.

        Unlike a controller-initiated :meth:`remove_node` the crash is not
        graceful, but the observable aftermath is the same as in HBase once
        the master notices the dead RegionServer: regions reopen on the
        remaining nodes with remote blocks (locality loss) and the crashed
        node's block replicas are re-replicated elsewhere.  Returns the ids
        of the regions that were reassigned.
        """
        node = self._node(name)
        displaced = [region.region_id for region in self.regions_on(node.name)]
        self.remove_node(node.name, reassign=True)
        return displaced

    def degrade_node(
        self,
        name: str,
        factor: float = 1.0,
        cpu: float | None = None,
        disk: float | None = None,
        network: float | None = None,
    ) -> None:
        """Slow a node down: scale its resource budgets.

        ``factor`` scales every budget; the per-resource overrides replace it
        for one resource, so partial faults can be modelled -- e.g. a
        congested or partially partitioned link is ``network=0.15`` with CPU
        and disk untouched, a failing disk is ``disk=0.3``.  ``disk`` scales
        both the IOPS and the sequential-bandwidth budgets.

        Models a straggler VM (noisy neighbour, failing disk).  The original
        hardware is remembered so :meth:`restore_node` can undo the fault.
        Degradations do not compose: a second call rescales the *original*
        spec, so ``degrade_node(n, 1.0)`` is a restore.
        """
        cpu_factor = factor if cpu is None else cpu
        disk_factor = factor if disk is None else disk
        network_factor = factor if network is None else network
        for label, value in (
            ("cpu", cpu_factor), ("disk", disk_factor), ("network", network_factor)
        ):
            if not 0.0 < value <= 1.0:
                raise SimulationError(
                    f"{label} degradation factor must be in (0, 1], got {value!r}"
                )
        node = self._node(name)
        base = self._base_hardware.setdefault(name, node.hardware)
        node.hardware = HardwareSpec(
            cpu_millis_per_second=base.cpu_millis_per_second * cpu_factor,
            disk_iops=base.disk_iops * disk_factor,
            disk_mb_per_second=base.disk_mb_per_second * disk_factor,
            network_mb_per_second=base.network_mb_per_second * network_factor,
            memory_bytes=base.memory_bytes,
            heap_bytes=base.heap_bytes,
        )
        self._mark_structure()
        # A changed disk budget changes the compaction drain rate; schedule a
        # fresh conservative completion event (stale ones are harmless).
        self._schedule_compaction_event(node)

    def base_hardware(self, name: str) -> HardwareSpec | None:
        """A node's pre-degradation hardware (its current spec if healthy).

        ``None`` for unknown nodes; fault tooling uses this to repair a
        crashed straggler at full health.
        """
        node = self.nodes.get(name)
        if node is None:
            return None
        return self._base_hardware.get(name, node.hardware)

    def restore_node(self, name: str) -> None:
        """Undo a :meth:`degrade_node` fault.

        No-op if the node is healthy or no longer exists -- a scheduled
        recovery may fire after a controller (or a crash) removed the
        straggler, and that must not abort the run.
        """
        base = self._base_hardware.pop(name, None)
        node = self.nodes.get(name)
        if node is not None and base is not None:
            node.hardware = base
            self._mark_structure()
            self._schedule_compaction_event(node)

    # ------------------------------------------------------------------ #
    # workload management
    # ------------------------------------------------------------------ #
    def attach_workload(self, binding: WorkloadBinding) -> None:
        """Attach a closed-loop client population."""
        for region_id in binding.regions():
            self._region(region_id)
        self.bindings[binding.name] = binding
        self._workloads_version += 1
        self._mark_dirty()

    def detach_workload(self, name: str) -> None:
        """Remove a client population (e.g. a tenant leaving)."""
        self.bindings.pop(name, None)
        # Drop the last achieved throughput too: a departed tenant must not
        # linger in cluster_throughput(), and a later binding reusing the
        # name must seed the fixed point fresh.
        self._binding_throughput.pop(name, None)
        self._binding_latency_ms.pop(name, None)
        self._binding_latency_summary.pop(name, None)
        self._workloads_version += 1
        self._mark_dirty()

    def set_workload_active(self, name: str, active: bool) -> None:
        """Activate or deactivate a tenant without removing it."""
        if name not in self.bindings:
            raise SimulationError(f"unknown workload {name!r}")
        self.bindings[name].active = active
        # ``active`` is consulted live by max_throughput -- no version bump,
        # but any cached event-kernel solution is now wrong.
        self._mark_dirty()

    def update_workload(
        self,
        name: str,
        op_mix: dict[str, float] | None = None,
        target_ops_per_second: float | None | str = "unchanged",
        threads: int | None = None,
    ) -> None:
        """Mutate a live tenant (mix shifts, load curves, thread scaling).

        The fast kernel caches per-region unit rates keyed on the workload
        version, so any change to the op mix (or the region weights) must go
        through here -- mutating the binding directly would leave the kernel
        serving the stale mix.  Throughput targets are consulted live and
        need no invalidation, but routing them here keeps one entry point.
        """
        binding = self.bindings.get(name)
        if binding is None:
            raise SimulationError(f"unknown workload {name!r}")
        previous = (binding.op_mix, binding.target_ops_per_second, binding.threads)
        if op_mix is not None:
            binding.op_mix = dict(op_mix)
        if target_ops_per_second != "unchanged":
            binding.target_ops_per_second = target_ops_per_second
        if threads is not None:
            binding.threads = threads
        try:
            binding.validate()
        except ValueError:
            # Leave the binding as it was: a rejected update must not leak
            # an invalid mix into a simulator that keeps ticking.
            binding.op_mix, binding.target_ops_per_second, binding.threads = previous
            raise
        if op_mix is not None:
            self.notify_workload_changed()
        else:
            # Target/thread changes are consulted live but still invalidate
            # any cached event-kernel solution.
            self._mark_dirty()

    def notify_workload_changed(self) -> None:
        """Invalidate caches derived from binding mixes/weights."""
        self._workloads_version += 1
        self._mark_dirty()

    # ------------------------------------------------------------------ #
    # queries used by controllers and experiments
    # ------------------------------------------------------------------ #
    def online_nodes(self) -> list[SimulatedNode]:
        """Nodes currently serving requests."""
        return [node for node in self.nodes.values() if node.online]

    def online_node_count(self) -> int:
        """Number of nodes currently serving requests (no list allocation)."""
        return sum(1 for node in self.nodes.values() if node.online)

    def regions_on(self, node_name: str) -> list[SimulatedRegion]:
        """Regions currently assigned to ``node_name``.

        Returned in global region-creation order (the order the seed's full
        scan produced).  The fast/event kernels answer from the incremental
        index; the reference kernel keeps the seed's O(regions) scan.
        """
        return self._solver.regions_on(node_name)

    def node_locality_index(self, node_name: str) -> float:
        """Size-weighted locality of the regions hosted by a node."""
        return _size_weighted_locality(self.regions_on(node_name))

    def assignment(self) -> dict[str, str | None]:
        """Mapping region id -> hosting node name."""
        return {rid: region.node for rid, region in self.regions.items()}

    def binding_throughput(self, name: str) -> float:
        """Most recent achieved throughput of a tenant (ops/s)."""
        return self._binding_throughput.get(name, 0.0)

    def binding_latency_ms(self, name: str) -> float:
        """Most recent mean request latency of a tenant (milliseconds).

        The request-weighted per-op mean the closed loop solved against on
        the last tick -- the tenant-visible quality signal the SLA layer
        turns into SLO verdicts.  0.0 before the first tick or for unknown
        tenants.
        """
        return self._binding_latency_ms.get(name, 0.0)

    def binding_latency_summary(self, name: str):
        """Most recent latency distribution summary of a tenant.

        The :class:`~repro.simulation.latency.LatencySummary` the solver
        built at the last tick's fixed point -- the distribution whose
        weighted mean is :meth:`binding_latency_ms`.  ``None`` before the
        first tick, for unknown tenants, or when distribution recording is
        disabled.
        """
        return self._binding_latency_summary.get(name)

    def cluster_throughput(self) -> float:
        """Most recent total achieved throughput (ops/s)."""
        return sum(self._binding_throughput.values())

    # ------------------------------------------------------------------ #
    # simulation loop
    # ------------------------------------------------------------------ #
    def run(self, seconds: float) -> None:
        """Advance the simulation by ``seconds`` in whole ticks.

        The event kernel fast-forwards quiescent stretches in macro-ticks
        (bounded by :meth:`quiescent_ticks`); the other kernels -- and any
        trailing partial tick -- advance tick by tick.
        """
        remaining = seconds
        dt = self.clock.tick_seconds
        event_kernel = self.kernel == KERNEL_EVENT
        while remaining > 1e-9:
            if event_kernel and remaining >= 2.0 * dt - 1e-9:
                budget = int((remaining + 1e-9) // dt)
                skip = self.quiescent_ticks(budget)
                if skip >= 2:
                    self.macro_tick(skip)
                    remaining -= skip * dt
                    continue
            step = min(dt, remaining)
            self.tick(step)
            remaining -= step

    def tick(self, seconds: float | None = None) -> None:
        """Advance the simulation by one tick."""
        dt = seconds if seconds is not None else self.clock.tick_seconds
        self._advance_node_states()
        compaction_bg = self._progress_compactions(dt)
        stats = self.stats
        stats.ticks += 1
        results = self._solver.reuse(compaction_bg)
        if results is None:
            results = self._solver.solve(compaction_bg)
            stats.solves += 1
        else:
            stats.reused_ticks += 1
        throughputs, node_results, region_rates, latencies, summaries = results
        self._apply_tick_results(
            dt, throughputs, node_results, region_rates, latencies, summaries
        )
        self.clock.advance(dt)

    # ------------------------------------------------------------------ #
    # event kernel: quiescence detection and fast-forward
    # ------------------------------------------------------------------ #
    def steady_horizon(self) -> float:
        """Earliest simulated time at which a tick could differ from the
        cached fixed point.

        Returns ``clock.now`` when the next tick must be simulated for real
        (no reusable solution, or a live event is already due), the earliest
        live event / lifecycle deadline when one lies ahead, and ``inf``
        when nothing internal bounds a fast-forward.  Callers combine this
        with their own bounds (scenario schedules, controller wake-ups,
        sampling cadences) before skipping.
        """
        now = self.clock.now
        if self.kernel != KERNEL_EVENT or not self._solver.reuse_ready():
            return now
        horizon = self.events.horizon(now, self._event_stale)
        if horizon <= now:
            return now
        # Belt and braces: node lifecycle deadlines bound the horizon even
        # if a state was mutated without going through a scheduling mutator.
        for node in self.nodes.values():
            if node.state in (STATE_BOOTING, STATE_RESTARTING):
                until = node.state_until
                if until <= now:
                    return now
                if until < horizon:
                    horizon = until
        return horizon

    def quiescent_ticks(self, max_ticks: int) -> int:
        """Number of immediately-upcoming ticks that can be fast-forwarded.

        0 unless the event kernel has a reusable solution covering at least
        the next two ticks.  Every returned tick starts strictly before the
        steady horizon, so the first tick at (or after) the horizon is
        always simulated for real.
        """
        if self.kernel != KERNEL_EVENT or max_ticks < 2:
            return 0
        now = self.clock.now
        dt = self.clock.tick_seconds
        horizon = self.steady_horizon()
        if horizon <= now + dt:
            return 0
        if horizon == float("inf"):
            return max_ticks
        ticks = int((horizon - now - 1e-9) // dt) + 1
        return min(ticks, max_ticks)

    def macro_tick(self, ticks: int) -> None:
        """Fast-forward ``ticks`` ticks by replaying the cached fixed point.

        Only valid for spans vetted by :meth:`quiescent_ticks`: no node
        lifecycle transition or compaction completion may fall inside the
        span.  Metric samples, counters and the clock history advance
        exactly as ``ticks`` individual ticks would; if the cached solution
        turns out not to cover the span (background I/O drifted), the span
        is simulated tick by tick instead.
        """
        dt = self.clock.tick_seconds
        background: dict[str, float] = {}
        compacting: list[tuple[SimulatedNode, float]] = []
        for node in self.nodes.values():
            if node.pending_compaction_bytes <= 0 or not node.online:
                continue
            rate = node.hardware.disk_mb_per_second * MB * COMPACTION_DISK_SHARE
            background[node.name] = rate
            compacting.append((node, rate))
        results = self._solver.reuse(background)
        if results is None:
            for _ in range(ticks):
                self.tick(dt)
            return
        # No completion can occur in-span (the compaction event's margin
        # guarantees pending stays positive), so the per-tick decrement
        # collapses to one multiply.
        for node, rate in compacting:
            node.pending_compaction_bytes -= rate * dt * ticks
        throughputs, node_results, region_rates, latencies, summaries = results
        self._apply_tick_results_batch(
            dt, ticks, throughputs, node_results, region_rates, latencies, summaries
        )
        stats = self.stats
        stats.ticks += ticks
        stats.skipped_ticks += ticks
        stats.macro_batches += 1
        clock = self.clock
        for _ in range(ticks):
            clock.advance(dt)

    def invalidate_solution(self) -> None:
        """Force the event kernel to re-solve on the next tick.

        External code that mutates simulator state directly (placement
        plans, test fixtures) must call this; the simulator's own mutators
        do so automatically.
        """
        self._mark_structure()

    def dispose(self) -> None:
        """Sever the simulator's internal reference cycles; terminal.

        A discarded simulator (``run_scenario(keep_simulator=False)``, sweep
        workers looping over thousands of runs) would otherwise linger until
        a *cyclic* gc pass: every region holds an ``_owner`` back-reference
        and the solver strategy points back at the simulator.  Disposal
        breaks those cycles so plain reference counting reclaims the whole
        object graph the moment the last external reference drops.  The
        simulator cannot be ticked afterwards.
        """
        for region in self.regions.values():
            object.__setattr__(region, "_owner", None)
        self._solver = None
        self.events.clear()
        self._sorted_regions_cache.clear()
        self._rated_regions = []

    def _mark_dirty(self) -> None:
        """A mutation invalidated the cached fixed-point solution."""
        self._solver.invalidate()

    def _mark_structure(self) -> None:
        """A mutation changed topology/config/assignment/locality state."""
        self._structure_version += 1
        self._solver.invalidate()

    def _event_stale(self, event: SimulationEvent) -> bool:
        """Whether a queued event no longer refers to live simulator state."""
        kind = event.kind
        if kind == EVENT_NODE_ONLINE:
            name, until = event.payload
            node = self.nodes.get(name)
            return (
                node is None
                or node.state not in (STATE_BOOTING, STATE_RESTARTING)
                or node.state_until != until
            )
        if kind == EVENT_COMPACTION_DONE:
            (name,) = event.payload
            node = self.nodes.get(name)
            return node is None or node.pending_compaction_bytes <= 0.0
        return False

    def _schedule_compaction_event(self, node: SimulatedNode) -> None:
        """Queue a conservative completion marker for a node's compaction."""
        if self.kernel != KERNEL_EVENT or node.pending_compaction_bytes <= 0:
            return
        rate = node.hardware.disk_mb_per_second * MB * COMPACTION_DISK_SHARE
        eta = (
            self.clock.now
            + node.pending_compaction_bytes / rate
            - _COMPACTION_EVENT_MARGIN_TICKS * self.clock.tick_seconds
        )
        self.events.schedule(
            max(self.clock.now, eta), EVENT_COMPACTION_DONE, (node.name,)
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _node(self, name: str) -> SimulatedNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise SimulationError(f"unknown node {name!r}") from None

    def _region(self, region_id: str) -> SimulatedRegion:
        try:
            return self.regions[region_id]
        except KeyError:
            raise SimulationError(f"unknown region {region_id!r}") from None

    def _model_for(self, node: SimulatedNode) -> PerformanceModel:
        if node.hardware not in self._model_cache:
            self._model_cache[node.hardware] = PerformanceModel(node.hardware)
        return self._model_cache[node.hardware]

    def _reindex_region(
        self, region: SimulatedRegion, old_node: str | None, new_node: str | None
    ) -> None:
        """Move a region between index buckets (called from the node setter)."""
        bucket = self._regions_by_node.get(old_node)
        if bucket is not None:
            bucket.pop(region.region_id, None)
        self._regions_by_node.setdefault(new_node, {})[region.region_id] = region
        versions = self._assignment_versions
        versions[old_node] = versions.get(old_node, 0) + 1
        versions[new_node] = versions.get(new_node, 0) + 1
        self._mark_structure()

    def _hosted_count(self, node_name: str) -> int:
        bucket = self._regions_by_node.get(node_name)
        return len(bucket) if bucket else 0

    def _drain_counts(
        self, exclude_name: str
    ) -> tuple[dict[str, int], list[str]]:
        """Per-candidate hosted-region counts for an incremental drain.

        Replicates repeated ``_least_loaded_online_node`` calls: candidates
        are the online nodes (falling back to any non-offline node), in node
        insertion order, and the caller bumps a count after each placement
        instead of rescanning every region per drained region.
        """
        candidates = [
            node.name
            for node in self.nodes.values()
            if node.online and node.name != exclude_name
        ]
        if not candidates:
            candidates = [
                node.name
                for node in self.nodes.values()
                if node.name != exclude_name and node.state != STATE_OFFLINE
            ]
        counts = {name: self._hosted_count(name) for name in candidates}
        return counts, candidates

    def _advance_node_states(self) -> None:
        changed = False
        for node in self.nodes.values():
            if node.state in (STATE_BOOTING, STATE_RESTARTING):
                if self.clock.now >= node.state_until:
                    node.state = STATE_ONLINE
                    node.state_until = 0.0
                    changed = True
        if changed:
            self._mark_structure()

    def _progress_compactions(self, dt: float) -> dict[str, float]:
        """Advance compactions; return per-node background disk bytes/s."""
        background: dict[str, float] = {}
        for node in self.nodes.values():
            if node.pending_compaction_bytes <= 0 or not node.online:
                continue
            rate = node.hardware.disk_mb_per_second * MB * COMPACTION_DISK_SHARE
            done = min(node.pending_compaction_bytes, rate * dt)
            node.pending_compaction_bytes -= done
            background[node.name] = rate
            if node.pending_compaction_bytes <= 1e-6:
                node.pending_compaction_bytes = 0.0
                for region in self.regions_on(node.name):
                    region.block_homes = {node.name}
        return background

    # ------------------------------------------------------------------ #
    # fixed-point solver -- delegated to the kernel's strategy
    # ------------------------------------------------------------------ #
    def _solve_fixed_point(
        self, compaction_bg: dict[str, float]
    ) -> tuple[
        dict[str, float],
        dict[str, object],
        dict[str, dict[str, float]],
        dict[str, float],
        dict[str, object],
    ]:
        """Solve the closed-loop throughput fixed point for this tick.

        Returns the per-binding *achieved* throughput, the per-node model
        results, the per-region achieved rates, the per-binding mean
        request latency (ms) and the per-binding latency distribution
        summaries at the final state.  Achieved throughput is
        work-conserving: offered load on a node is clamped to the node's
        capacity (utilisation 1.0).  The actual implementation lives in the
        kernel's :class:`~repro.simulation.solvers.SolverStrategy`.
        """
        return self._solver.solve(compaction_bg)

    def _apply_tick_results(
        self,
        dt: float,
        throughputs: dict[str, float],
        node_results: dict[str, object],
        region_rates: dict[str, dict[str, float]],
        binding_latencies: dict[str, float] | None = None,
        binding_summaries: dict[str, object] | None = None,
    ) -> None:
        now = self.clock.now + dt
        # Reset per-region rates before accumulating this tick's load; only
        # regions rated last tick can hold stale values.  Counter updates go
        # through __dict__ to skip the node-indexing __setattr__ hook (these
        # fields never affect the index).
        for region in self._rated_regions:
            fields = region.__dict__
            fields["read_rate"] = 0.0
            fields["write_rate"] = 0.0
            fields["scan_rate"] = 0.0
        rated = self._rated_regions = []

        samples: list[tuple[str, str, float]] = []
        latencies = binding_latencies or {}
        total = 0.0
        for name in self.bindings:
            throughput = throughputs.get(name, 0.0)
            latency = latencies.get(name, 0.0)
            self._binding_throughput[name] = throughput
            self._binding_latency_ms[name] = latency
            total += throughput
            entity = f"workload:{name}"
            samples.append((entity, "throughput", throughput))
            samples.append((entity, "latency_ms", latency))

        regions = self.regions
        for region_id, rates in region_rates.items():
            region = regions.get(region_id)
            if region is None:
                raise SimulationError(f"unknown region {region_id!r}")
            rated.append(region)
            get = rates.get
            rmw = get("read_modify_write", 0.0)
            reads = get("read", 0.0) + rmw
            inserts = get("insert", 0.0)
            writes = get("update", 0.0) + inserts + rmw
            scans = get("scan", 0.0)
            fields = region.__dict__
            fields["reads"] += reads * dt
            fields["writes"] += writes * dt
            fields["scans"] += scans * dt
            fields["read_rate"] += reads
            fields["write_rate"] += writes
            fields["scan_rate"] += scans
            fields["size_bytes"] += inserts * dt * region.record_size

        self.total_ops += total * dt
        samples.append(("cluster", "throughput", total))
        samples.append(("cluster", "operations", total * dt))
        samples.append(("cluster", "nodes", float(self.online_node_count())))

        for node in self.nodes.values():
            hosted = self.regions_on(node.name)
            result = node_results.get(node.name)
            if result is None:
                node.cpu_utilization = 0.0
                node.io_wait = 0.0
                node.memory_utilization = 0.0
                node.served_ops = 0.0
            else:
                node.cpu_utilization = min(1.0, result.cpu_utilization)
                node.io_wait = min(1.0, result.io_wait)
                node.memory_utilization = min(1.0, result.memory_utilization)
                served = 0.0
                for region in hosted:
                    served += region.read_rate + region.write_rate + region.scan_rate
                node.served_ops = served
            locality = _size_weighted_locality(hosted)
            samples.append((node.name, "cpu", node.cpu_utilization))
            samples.append((node.name, "io_wait", node.io_wait))
            samples.append((node.name, "memory", node.memory_utilization))
            samples.append((node.name, "requests", node.served_ops))
            samples.append((node.name, "locality", locality))
        self.metrics.record_many(now, samples)
        if binding_summaries and self.record_latency_distributions:
            self._binding_latency_summary = binding_summaries
            self.metrics.record_distributions(
                now,
                [
                    (f"workload:{name}", "latency_ms", summary)
                    for name, summary in binding_summaries.items()
                ],
            )

    def _apply_tick_results_batch(
        self,
        dt: float,
        ticks: int,
        throughputs: dict[str, float],
        node_results: dict[str, object],
        region_rates: dict[str, dict[str, float]],
        binding_latencies: dict[str, float] | None = None,
        binding_summaries: dict[str, object] | None = None,
    ) -> None:
        """Apply one cached tick result ``ticks`` times in one pass.

        Every *rate* observable (throughputs, per-node utilisation, metric
        sample values) is constant across the span, so the per-tick sample
        list is built once and recorded at each tick's timestamp -- the
        timestamps replicate :meth:`SimulationClock.advance`'s float
        accumulation bit-exactly, so the recorded series is byte-identical
        to ``ticks`` individual ticks.  Cumulative counters advance by
        ``rate * dt * ticks`` (a fused multiply instead of ``ticks``
        repeated additions; the difference is ~1e-16 relative).
        """
        span = dt * ticks
        for region in self._rated_regions:
            fields = region.__dict__
            fields["read_rate"] = 0.0
            fields["write_rate"] = 0.0
            fields["scan_rate"] = 0.0
        rated = self._rated_regions = []

        samples: list[tuple[str, str, float]] = []
        latencies = binding_latencies or {}
        total = 0.0
        for name in self.bindings:
            throughput = throughputs.get(name, 0.0)
            latency = latencies.get(name, 0.0)
            self._binding_throughput[name] = throughput
            self._binding_latency_ms[name] = latency
            total += throughput
            entity = f"workload:{name}"
            samples.append((entity, "throughput", throughput))
            samples.append((entity, "latency_ms", latency))

        regions = self.regions
        for region_id, rates in region_rates.items():
            region = regions.get(region_id)
            if region is None:
                raise SimulationError(f"unknown region {region_id!r}")
            rated.append(region)
            get = rates.get
            rmw = get("read_modify_write", 0.0)
            reads = get("read", 0.0) + rmw
            inserts = get("insert", 0.0)
            writes = get("update", 0.0) + inserts + rmw
            scans = get("scan", 0.0)
            fields = region.__dict__
            fields["reads"] += reads * span
            fields["writes"] += writes * span
            fields["scans"] += scans * span
            fields["read_rate"] += reads
            fields["write_rate"] += writes
            fields["scan_rate"] += scans
            # Reusable solutions are insert-free (data growth is a dirty
            # flag); keep the term so a future relaxation cannot silently
            # stop growing regions.
            fields["size_bytes"] += inserts * span * region.record_size

        self.total_ops += total * span
        samples.append(("cluster", "throughput", total))
        samples.append(("cluster", "operations", total * dt))
        samples.append(("cluster", "nodes", float(self.online_node_count())))

        for node in self.nodes.values():
            hosted = self.regions_on(node.name)
            result = node_results.get(node.name)
            if result is None:
                node.cpu_utilization = 0.0
                node.io_wait = 0.0
                node.memory_utilization = 0.0
                node.served_ops = 0.0
            else:
                node.cpu_utilization = min(1.0, result.cpu_utilization)
                node.io_wait = min(1.0, result.io_wait)
                node.memory_utilization = min(1.0, result.memory_utilization)
                served = 0.0
                for region in hosted:
                    served += region.read_rate + region.write_rate + region.scan_rate
                node.served_ops = served
            locality = _size_weighted_locality(hosted)
            samples.append((node.name, "cpu", node.cpu_utilization))
            samples.append((node.name, "io_wait", node.io_wait))
            samples.append((node.name, "memory", node.memory_utilization))
            samples.append((node.name, "requests", node.served_ops))
            samples.append((node.name, "locality", locality))

        # Reproduce clock.advance's float sequence: per-tick apply records
        # at ``clock.now + dt`` and the clock then accumulates ``+= dt``.
        timestamps: list[float] = []
        now = self.clock.now
        for _ in range(ticks):
            now = now + dt
            timestamps.append(now)
        self.metrics.record_many_repeated(timestamps, samples)
        if binding_summaries and self.record_latency_distributions:
            # The same frozen summary object is appended at every timestamp:
            # a window merge over the span adds its integer counts k times,
            # bit-identical to the k per-tick summaries individual ticks
            # would have recorded (see LatencySummary.scale).
            self._binding_latency_summary = binding_summaries
            self.metrics.record_distributions_repeated(
                timestamps,
                [
                    (f"workload:{name}", "latency_ms", summary)
                    for name, summary in binding_summaries.items()
                ],
            )


def _size_weighted_locality(hosted: list[SimulatedRegion]) -> float:
    """Size-weighted locality of a hosted-region list (1.0 when empty)."""
    total = 0.0
    weighted = 0.0
    for region in hosted:
        size = region.size_bytes
        total += size
        weighted += region.locality * size
    if total <= 0:
        return 1.0
    return weighted / total


def _pick_least_loaded(counts: dict[str, int], candidates: list[str]) -> str | None:
    """First candidate with the fewest hosted regions (stable, like min())."""
    best: str | None = None
    best_count = -1
    for name in candidates:
        count = counts[name]
        if best is None or count < best_count:
            best = name
            best_count = count
    return best
