"""Kernel benchmark machinery: synthetic scenarios and ticks/sec timing.

Shared by ``scripts/bench_kernel.py`` (which writes ``BENCH_kernel.json``)
and the tier-2 ``benchmarks/test_perf_kernel.py`` gate.  The synthetic
scenario is deterministic -- no RNG -- so the fast and reference kernels can
be timed on byte-identical inputs and compared for numerical equivalence.

Two scenario flavours exist per scale:

* the *mixed* scenario (default) cycles every tenant mix, including the
  insert-bearing ones, so all cost-model paths are exercised -- this is the
  input for the reference-vs-fast comparison;
* the *steady* scenario (``steady=True``) swaps inserts for updates (same
  write-cost path, no data growth), making the workload quiescent after the
  initial fixed-point settles -- this is the input for the event kernel's
  effective ticks/sec, where the win comes from fast-forwarding whole
  stretches rather than from a cheaper per-tick solve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.simulation.cluster import ClusterSimulator
from repro.simulation.workload import WorkloadBinding

#: Operation mixes cycled across tenants: read-heavy, update-heavy, scan and
#: insert tenants exercise every path of the cost model.
TENANT_MIXES: list[dict[str, float]] = [
    {"read": 0.95, "update": 0.05},
    {"read": 0.5, "update": 0.5},
    {"read": 0.95, "scan": 0.05},
    {"read": 0.9, "insert": 0.1},
    {"scan": 0.95, "insert": 0.05},
    {"read": 0.5, "read_modify_write": 0.5},
    {"read": 0.7, "update": 0.2, "scan": 0.1},
    {"update": 0.6, "insert": 0.4},
]

#: Benchmark scales: name -> (nodes, regions, tenants).  ``xlarge`` was
#: infeasible before the event kernel (sub-second effective throughput on
#: the reference kernel) and is routine with it.
SCALES: dict[str, tuple[int, int, int]] = {
    "small": (10, 100, 4),
    "medium": (25, 250, 6),
    "large": (50, 500, 8),
    "xlarge": (200, 2000, 12),
}


def _steady_mix(mix: dict[str, float]) -> dict[str, float]:
    """Insert-free variant of a tenant mix: inserts become updates.

    Inserts grow region sizes every tick, which drifts hit ratios and is
    therefore a permanent dirty flag for the event kernel's solution reuse.
    Swapping them for updates keeps the write cost path hot while making a
    steady scenario genuinely quiescent.
    """
    steady = dict(mix)
    inserts = steady.pop("insert", 0.0)
    if inserts:
        steady["update"] = steady.get("update", 0.0) + inserts
    return steady


@dataclass
class KernelBenchResult:
    """Ticks/sec of the kernels at one scale.

    ``reference``/``fast`` are timed tick-by-tick on the mixed scenario;
    ``fast_steady``/``event`` are timed on the steady scenario driven
    through :meth:`ClusterSimulator.run`, so the event figure is *effective*
    ticks/sec -- simulated ticks covered per wall-clock second, including
    the fast-forwarded ones.  ``steady_fraction`` is the fraction of the
    event kernel's ticks that needed no real fixed-point solve.
    """

    scale: str
    nodes: int
    regions: int
    tenants: int
    reference_ticks_per_sec: float
    fast_ticks_per_sec: float
    fast_steady_ticks_per_sec: float = 0.0
    event_ticks_per_sec: float = 0.0
    steady_fraction: float = 0.0

    @property
    def speedup(self) -> float:
        if self.reference_ticks_per_sec <= 0:
            return 0.0
        return self.fast_ticks_per_sec / self.reference_ticks_per_sec

    @property
    def event_speedup(self) -> float:
        """Event-kernel gain over the fast kernel on the steady scenario."""
        if self.fast_steady_ticks_per_sec <= 0:
            return 0.0
        return self.event_ticks_per_sec / self.fast_steady_ticks_per_sec

    def as_dict(self) -> dict:
        return {
            "scale": self.scale,
            "nodes": self.nodes,
            "regions": self.regions,
            "tenants": self.tenants,
            "reference_ticks_per_sec": round(self.reference_ticks_per_sec, 3),
            "fast_ticks_per_sec": round(self.fast_ticks_per_sec, 3),
            "fast_steady_ticks_per_sec": round(self.fast_steady_ticks_per_sec, 3),
            "event_ticks_per_sec": round(self.event_ticks_per_sec, 3),
            "steady_fraction": round(self.steady_fraction, 4),
            "speedup": round(self.speedup, 2),
            "event_speedup": round(self.event_speedup, 2),
        }


def build_synthetic_cluster(
    nodes: int, regions: int, tenants: int, kernel: str, steady: bool = False
) -> ClusterSimulator:
    """Deterministic multi-tenant cluster: regions round-robin and local.

    ``steady=True`` builds the insert-free variant (see :func:`_steady_mix`)
    used for the event kernel's steady-state measurements.
    """
    if nodes <= 0 or tenants <= 0 or regions < tenants:
        raise ValueError(
            f"need nodes > 0 and regions >= tenants > 0, got "
            f"nodes={nodes}, regions={regions}, tenants={tenants}"
        )
    sim = ClusterSimulator(kernel=kernel)
    node_names = [sim.add_node() for _ in range(nodes)]
    per_tenant = max(1, regions // tenants)
    created = 0
    for tenant in range(tenants):
        mix = TENANT_MIXES[tenant % len(TENANT_MIXES)]
        if steady:
            mix = _steady_mix(mix)
        count = per_tenant if tenant < tenants - 1 else regions - created
        region_ids = []
        for index in range(count):
            region_id = f"t{tenant}:r{index}"
            sim.add_region(
                region_id,
                workload=f"tenant-{tenant}",
                # Vary sizes deterministically so hit ratios differ per node.
                size_bytes=2e8 + 1e7 * ((created * 7) % 23),
                node=node_names[created % nodes],
                scan_length=50 + 10 * (tenant % 3),
            )
            region_ids.append(region_id)
            created += 1
        weight = 1.0 / len(region_ids)
        weights = {rid: weight for rid in region_ids}
        # Region weights must sum to exactly 1.0.
        last = region_ids[-1]
        weights[last] = 1.0 - weight * (len(region_ids) - 1)
        sim.attach_workload(
            WorkloadBinding(
                name=f"tenant-{tenant}",
                threads=40 + 5 * tenant,
                op_mix=mix,
                region_weights=weights,
            )
        )
    return sim


# repro: allow(D2, reason=bench harness measures wall-clock throughput; results feed BENCH_*.json reports only)
def measure_ticks_per_second(
    sim: ClusterSimulator, ticks: int, warmup_ticks: int = 3
) -> float:
    """Time ``ticks`` simulator ticks after a short warmup."""
    for _ in range(warmup_ticks):
        sim.tick()
    start = time.perf_counter()
    for _ in range(ticks):
        sim.tick()
    elapsed = time.perf_counter() - start
    return ticks / elapsed if elapsed > 0 else float("inf")


# repro: allow(D2, reason=bench harness measures wall-clock throughput; results feed BENCH_*.json reports only)
def measure_effective_ticks_per_second(
    sim: ClusterSimulator, ticks: int, warmup_ticks: int = 10
) -> tuple[float, float]:
    """Effective ticks/sec of a :meth:`ClusterSimulator.run`-driven stretch.

    The warmup lets the closed-loop fixed point settle (the event kernel
    needs a tick-stable solve before it may reuse or fast-forward), then
    ``ticks`` ticks' worth of simulated time is covered through ``run`` --
    macro-ticks included -- and divided by wall-clock time.  Returns
    ``(ticks_per_sec, steady_fraction)``; the fraction comes from
    :class:`~repro.simulation.events.KernelStats` over the timed window
    (0.0 on kernels that solve every tick).
    """
    dt = sim.clock.tick_seconds
    sim.run(warmup_ticks * dt)
    sim.stats.reset()
    start = time.perf_counter()
    sim.run(ticks * dt)
    elapsed = time.perf_counter() - start
    covered = sim.stats.ticks
    tps = covered / elapsed if elapsed > 0 else float("inf")
    return tps, sim.stats.steady_fraction


def run_scale(
    scale: str,
    reference_ticks: int = 20,
    fast_ticks: int = 100,
    event_ticks: int = 600,
) -> KernelBenchResult:
    """Benchmark every kernel at a named scale.

    ``reference_ticks=0`` skips the (slow) reference kernel -- the tier-2
    xlarge floor only gates the fast and event kernels.
    """
    nodes, regions, tenants = SCALES[scale]
    reference_tps = 0.0
    if reference_ticks > 0:
        reference = build_synthetic_cluster(nodes, regions, tenants, kernel="reference")
        reference_tps = measure_ticks_per_second(reference, reference_ticks)
    fast = build_synthetic_cluster(nodes, regions, tenants, kernel="fast")
    fast_tps = measure_ticks_per_second(fast, fast_ticks)
    fast_steady = build_synthetic_cluster(
        nodes, regions, tenants, kernel="fast", steady=True
    )
    fast_steady_tps, _ = measure_effective_ticks_per_second(
        fast_steady, min(fast_ticks, 60)
    )
    event = build_synthetic_cluster(
        nodes, regions, tenants, kernel="event", steady=True
    )
    event_tps, steady_fraction = measure_effective_ticks_per_second(event, event_ticks)
    return KernelBenchResult(
        scale=scale,
        nodes=nodes,
        regions=regions,
        tenants=tenants,
        reference_ticks_per_sec=reference_tps,
        fast_ticks_per_sec=fast_tps,
        fast_steady_ticks_per_sec=fast_steady_tps,
        event_ticks_per_sec=event_tps,
        steady_fraction=steady_fraction,
    )


def run_kernel_benchmark(
    scales: list[str] | None = None,
    reference_ticks: int = 20,
    fast_ticks: int = 100,
    event_ticks: int = 600,
) -> list[KernelBenchResult]:
    """Benchmark every requested scale (defaults to all)."""
    return [
        run_scale(
            scale,
            reference_ticks=reference_ticks,
            fast_ticks=fast_ticks,
            event_ticks=event_ticks,
        )
        for scale in (scales or list(SCALES))
    ]
