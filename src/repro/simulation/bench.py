"""Kernel benchmark machinery: synthetic scenarios and ticks/sec timing.

Shared by ``scripts/bench_kernel.py`` (which writes ``BENCH_kernel.json``)
and the tier-2 ``benchmarks/test_perf_kernel.py`` gate.  The synthetic
scenario is deterministic -- no RNG -- so the fast and reference kernels can
be timed on byte-identical inputs and compared for numerical equivalence.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.simulation.cluster import ClusterSimulator
from repro.simulation.workload import WorkloadBinding

#: Operation mixes cycled across tenants: read-heavy, update-heavy, scan and
#: insert tenants exercise every path of the cost model.
TENANT_MIXES: list[dict[str, float]] = [
    {"read": 0.95, "update": 0.05},
    {"read": 0.5, "update": 0.5},
    {"read": 0.95, "scan": 0.05},
    {"read": 0.9, "insert": 0.1},
    {"scan": 0.95, "insert": 0.05},
    {"read": 0.5, "read_modify_write": 0.5},
    {"read": 0.7, "update": 0.2, "scan": 0.1},
    {"update": 0.6, "insert": 0.4},
]

#: Benchmark scales: name -> (nodes, regions, tenants).
SCALES: dict[str, tuple[int, int, int]] = {
    "small": (10, 100, 4),
    "medium": (25, 250, 6),
    "large": (50, 500, 8),
}


@dataclass
class KernelBenchResult:
    """Ticks/sec of both kernels at one scale."""

    scale: str
    nodes: int
    regions: int
    tenants: int
    reference_ticks_per_sec: float
    fast_ticks_per_sec: float

    @property
    def speedup(self) -> float:
        if self.reference_ticks_per_sec <= 0:
            return 0.0
        return self.fast_ticks_per_sec / self.reference_ticks_per_sec

    def as_dict(self) -> dict:
        return {
            "scale": self.scale,
            "nodes": self.nodes,
            "regions": self.regions,
            "tenants": self.tenants,
            "reference_ticks_per_sec": round(self.reference_ticks_per_sec, 3),
            "fast_ticks_per_sec": round(self.fast_ticks_per_sec, 3),
            "speedup": round(self.speedup, 2),
        }


def build_synthetic_cluster(
    nodes: int, regions: int, tenants: int, kernel: str
) -> ClusterSimulator:
    """Deterministic multi-tenant cluster: regions round-robin and local."""
    if nodes <= 0 or tenants <= 0 or regions < tenants:
        raise ValueError(
            f"need nodes > 0 and regions >= tenants > 0, got "
            f"nodes={nodes}, regions={regions}, tenants={tenants}"
        )
    sim = ClusterSimulator(kernel=kernel)
    node_names = [sim.add_node() for _ in range(nodes)]
    per_tenant = max(1, regions // tenants)
    created = 0
    for tenant in range(tenants):
        mix = TENANT_MIXES[tenant % len(TENANT_MIXES)]
        count = per_tenant if tenant < tenants - 1 else regions - created
        region_ids = []
        for index in range(count):
            region_id = f"t{tenant}:r{index}"
            sim.add_region(
                region_id,
                workload=f"tenant-{tenant}",
                # Vary sizes deterministically so hit ratios differ per node.
                size_bytes=2e8 + 1e7 * ((created * 7) % 23),
                node=node_names[created % nodes],
                scan_length=50 + 10 * (tenant % 3),
            )
            region_ids.append(region_id)
            created += 1
        weight = 1.0 / len(region_ids)
        weights = {rid: weight for rid in region_ids}
        # Region weights must sum to exactly 1.0.
        last = region_ids[-1]
        weights[last] = 1.0 - weight * (len(region_ids) - 1)
        sim.attach_workload(
            WorkloadBinding(
                name=f"tenant-{tenant}",
                threads=40 + 5 * tenant,
                op_mix=mix,
                region_weights=weights,
            )
        )
    return sim


def measure_ticks_per_second(
    sim: ClusterSimulator, ticks: int, warmup_ticks: int = 3
) -> float:
    """Time ``ticks`` simulator ticks after a short warmup."""
    for _ in range(warmup_ticks):
        sim.tick()
    start = time.perf_counter()
    for _ in range(ticks):
        sim.tick()
    elapsed = time.perf_counter() - start
    return ticks / elapsed if elapsed > 0 else float("inf")


def run_scale(
    scale: str,
    reference_ticks: int = 20,
    fast_ticks: int = 100,
) -> KernelBenchResult:
    """Benchmark both kernels at a named scale."""
    nodes, regions, tenants = SCALES[scale]
    reference = build_synthetic_cluster(nodes, regions, tenants, kernel="reference")
    fast = build_synthetic_cluster(nodes, regions, tenants, kernel="fast")
    reference_tps = measure_ticks_per_second(reference, reference_ticks)
    fast_tps = measure_ticks_per_second(fast, fast_ticks)
    return KernelBenchResult(
        scale=scale,
        nodes=nodes,
        regions=regions,
        tenants=tenants,
        reference_ticks_per_sec=reference_tps,
        fast_ticks_per_sec=fast_tps,
    )


def run_kernel_benchmark(
    scales: list[str] | None = None,
    reference_ticks: int = 20,
    fast_ticks: int = 100,
) -> list[KernelBenchResult]:
    """Benchmark every requested scale (defaults to all)."""
    return [
        run_scale(scale, reference_ticks=reference_ticks, fast_ticks=fast_ticks)
        for scale in (scales or list(SCALES))
    ]
