"""The dirty-signature mutator inventory, as machine-checkable data.

The event kernel caches a fixed-point solution between ticks and only
recomputes it when the cluster's *dirty signature* changes (see
``ClusterSimulator.invalidate_solution`` and PERFORMANCE.md).  That
discipline is a contract: every method that mutates solver-feeding state
must either bump a dirty marker itself or write through an attribute
hook that does.  This module declares that contract as plain data so the
static pass (``python -m repro.analysis``, rule D4) can cross-reference
the declaration against the actual method bodies -- an undeclared
mutator or a declared mutator that forgets to invalidate fails lint, not
a soak.

Keep this file boring: sets of names only, no imports from the
simulation package (the linter loads it without executing simulation
code, and ``tests/test_invariants.py`` checks every name against the
live class).
"""

from __future__ import annotations

# Methods that change cluster *structure* (nodes joining/leaving/changing
# shape, regions moving).  Each must bump the structure version, directly
# via _mark_structure() / invalidate_solution() or through the hooked
# SimulatedRegion attributes below.
STRUCTURE_MUTATORS: frozenset[str] = frozenset(
    {
        "add_node",
        "remove_node",
        "add_region",
        "move_region",
        "reconfigure_node",
        "fail_node",
        "degrade_node",
        "restore_node",
        "_advance_node_states",
        "_reindex_region",
    }
)

# Methods that change *workload* bindings (what the tenants ask for).
# Each must set the workload-dirty flag via _mark_dirty() /
# notify_workload_changed() / invalidate_solution().
WORKLOAD_MUTATORS: frozenset[str] = frozenset(
    {
        "attach_workload",
        "detach_workload",
        "set_workload_active",
        "update_workload",
        "major_compact",
    }
)

# The invalidation entry points themselves.  A declared mutator
# discharges its obligation by calling one of these (or another declared
# mutator, which bottoms out here).
DIRTY_MARKERS: frozenset[str] = frozenset(
    {
        "invalidate_solution",
        "notify_workload_changed",
        "_mark_dirty",
        "_mark_structure",
    }
)

# SimulatedRegion attributes intercepted by __setattr__: assigning them
# re-indexes / bumps the structure version automatically, so plain
# ``region.node = ...`` is already safe and rule D4 treats such writes
# as discharged.
HOOKED_REGION_ATTRIBUTES: frozenset[str] = frozenset({"node", "block_homes"})

# SimulatedNode attributes the fixed-point solver reads.  Writing them
# outside a declared mutator (or without invalidating afterwards) leaves
# a stale cached solution.  ``profile_name`` is deliberately absent: it
# is a display label the solver never reads.
GUARDED_NODE_ATTRIBUTES: frozenset[str] = frozenset(
    {
        "config",
        "hardware",
        "state",
        "state_until",
        "pending_compaction_bytes",
    }
)

# WorkloadBinding attributes the solver reads.
GUARDED_BINDING_ATTRIBUTES: frozenset[str] = frozenset(
    {
        "op_mix",
        "target_ops_per_second",
        "threads",
        "active",
    }
)

# ClusterSimulator containers whose membership *is* the cluster shape:
# adding/removing/replacing entries is a structural mutation.
SOLVER_STATE_CONTAINERS: frozenset[str] = frozenset({"nodes", "regions", "bindings"})

# Tick machinery: methods that advance simulated time and apply solver
# output back onto the cluster.  They write guarded state by design
# (that is their job -- e.g. macro_tick draining pending compaction
# bytes, _apply_tick_results* committing drained counters) and manage
# the dirty signature explicitly, so rule D4 exempts them rather than
# demanding a declaration per write.
TICK_MACHINERY: frozenset[str] = frozenset(
    {
        "__init__",
        "tick",
        "run",
        "macro_tick",
        "_apply_tick_results",
        "_apply_tick_results_batch",
        "_progress_compactions",
        "dispose",
    }
)

# Set-valued region attributes whose raw iteration order is
# PYTHONHASHSEED-dependent: rule D3 flags unsorted iteration over them.
ORDER_SENSITIVE_SET_ATTRIBUTES: frozenset[str] = frozenset({"block_homes"})

DECLARED_MUTATORS: frozenset[str] = STRUCTURE_MUTATORS | WORKLOAD_MUTATORS

__all__ = [
    "STRUCTURE_MUTATORS",
    "WORKLOAD_MUTATORS",
    "DIRTY_MARKERS",
    "HOOKED_REGION_ATTRIBUTES",
    "GUARDED_NODE_ATTRIBUTES",
    "GUARDED_BINDING_ATTRIBUTES",
    "SOLVER_STATE_CONTAINERS",
    "TICK_MACHINERY",
    "ORDER_SENSITIVE_SET_ATTRIBUTES",
    "DECLARED_MUTATORS",
]
