"""Event queue and counters for the event-driven simulation kernel.

The event kernel (``ClusterSimulator(kernel="event")``) advances simulated
time directly to the next *meaningful* timestamp instead of re-solving an
identical closed-loop fixed point every tick.  Two pieces live here:

* :class:`EventLoop` -- a heapq-backed priority queue of internal simulator
  events (node boot/restart completions, major-compaction completions).
  Events are *horizon markers*: they bound how far the kernel may fast-
  forward a quiescent stretch.  The per-tick state machinery
  (``_advance_node_states`` / ``_progress_compactions``) still performs the
  actual transitions, so a stale or early event is harmless -- it merely
  forces an extra real solve -- while a *missing* event would let the kernel
  skip past a state change.  Every mutator that creates future work must
  therefore schedule an event at (or conservatively before) the first tick
  whose solve could differ.

* :class:`KernelStats` -- counters separating real fixed-point solves from
  reused and fast-forwarded ticks; the benchmark's steady-state-fraction
  column and the quiescence regression tests read these.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: Event kinds understood by the simulator's staleness checks.
EVENT_NODE_ONLINE = "node_online"
EVENT_COMPACTION_DONE = "compaction_done"


@dataclass(frozen=True)
class SimulationEvent:
    """One scheduled internal event.

    ``payload`` identifies the entity the event concerns (a node name plus,
    for lifecycle events, the ``state_until`` deadline it was scheduled
    against, so rescheduled restarts invalidate their stale predecessors).
    """

    time: float
    kind: str
    payload: tuple


class EventLoop:
    """Priority queue of :class:`SimulationEvent`, earliest first.

    Uses lazy invalidation: superseded events stay in the heap until a
    staleness predicate discards them during a :meth:`horizon` query.  Ties
    on time break by insertion order (a monotonic sequence number), so
    replays are deterministic.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, SimulationEvent]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, kind: str, payload: tuple = ()) -> SimulationEvent:
        """Queue an event at ``time`` and return it."""
        event = SimulationEvent(time=time, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, next(self._seq), event))
        return event

    def peek(self) -> SimulationEvent | None:
        """The earliest queued event, or ``None`` when empty."""
        return self._heap[0][2] if self._heap else None

    def pop(self) -> SimulationEvent | None:
        """Remove and return the earliest queued event."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()

    def horizon(
        self, now: float, stale: Callable[[SimulationEvent], bool]
    ) -> float:
        """Earliest live event time, pruning stale entries.

        Returns ``now`` when a live event is already due (the caller must
        solve the very next tick), the event's time when the earliest live
        event lies in the future, and ``inf`` when the queue drains -- the
        caller may then fast-forward bounded only by external constraints
        (schedules, samplers, controllers).
        """
        heap = self._heap
        while heap:
            event = heap[0][2]
            if stale(event):
                heapq.heappop(heap)
                continue
            if event.time > now + 1e-9:
                return event.time
            return now
        return float("inf")


@dataclass
class KernelStats:
    """How the kernel spent its simulated ticks.

    ``ticks`` counts every simulated tick; each tick is either a real
    ``solve``, a ``reused`` tick (cached fixed point replayed through a
    normal :meth:`ClusterSimulator.tick`), or a ``skipped`` tick covered by
    a fast-forwarded macro-tick (``macro_batches`` counts the batches).
    """

    ticks: int = 0
    solves: int = 0
    reused_ticks: int = 0
    skipped_ticks: int = 0
    macro_batches: int = 0
    #: Optional notes populated by instrumentation (tests only).
    extra: dict = field(default_factory=dict)

    @property
    def steady_fraction(self) -> float:
        """Fraction of ticks that did not need a real fixed-point solve."""
        if self.ticks <= 0:
            return 0.0
        return 1.0 - self.solves / self.ticks

    def reset(self) -> None:
        """Zero all counters (used between benchmark phases)."""
        self.ticks = 0
        self.solves = 0
        self.reused_ticks = 0
        self.skipped_ticks = 0
        self.macro_batches = 0
        self.extra.clear()
