"""Closed-loop client populations driving the simulated cluster.

Each :class:`WorkloadBinding` models one tenant (one YCSB workload or one
TPC-C client pool): a fixed number of client threads issuing operations with
zero think time against a set of data partitions, optionally capped at a
target throughput (the paper caps Workload D at 1 500 ops/s).

The achievable throughput of a binding is ``threads / latency`` where the
latency is the request-weighted average latency observed on the nodes hosting
its partitions, plus a fixed client-side overhead (network round trip and
client processing).  The cluster simulator solves the resulting fixed point
every tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulation.perfmodel import OP_TYPES

#: Client-side latency per operation (network RTT + YCSB client processing),
#: in milliseconds.  Bounds single-thread throughput even on an idle cluster.
CLIENT_OVERHEAD_MS = 1.2


@dataclass
class OfferedLoad:
    """Offered per-second rates for one region, split by operation type."""

    region_id: str
    rates: dict[str, float] = field(default_factory=dict)

    def rate(self, op: str) -> float:
        """Offered rate for one operation type."""
        return self.rates.get(op, 0.0)

    @property
    def total(self) -> float:
        """Total offered operations per second."""
        return sum(self.rates.values())


@dataclass
class WorkloadBinding:
    """A closed-loop client population bound to a set of regions.

    Attributes:
        name: tenant name, e.g. ``"workload-a"`` or ``"tpcc"``.
        threads: number of client threads (each issues one op at a time).
        op_mix: fractions per operation type; must sum to 1.
        region_weights: fraction of requests addressed to each region; must
            sum to 1 across the binding's regions.
        target_ops_per_second: optional throughput cap.
        record_size: value size in bytes.
        scan_length: records returned per scan operation.
        active: inactive bindings issue no requests (used for the phased
            shutdown in the Figure 6 experiment).
    """

    name: str
    threads: int
    op_mix: dict[str, float]
    region_weights: dict[str, float]
    target_ops_per_second: float | None = None
    record_size: int = 1024
    scan_length: int = 50
    active: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check mix and weight invariants."""
        if self.threads <= 0:
            raise ValueError(f"threads must be positive, got {self.threads!r}")
        unknown = set(self.op_mix) - set(OP_TYPES)
        if unknown:
            raise ValueError(f"unknown operation types in mix: {sorted(unknown)}")
        mix_total = sum(self.op_mix.values())
        if abs(mix_total - 1.0) > 1e-6:
            raise ValueError(f"op mix must sum to 1, got {mix_total!r}")
        if not self.region_weights:
            raise ValueError("a workload binding needs at least one region")
        weight_total = sum(self.region_weights.values())
        if abs(weight_total - 1.0) > 1e-6:
            raise ValueError(f"region weights must sum to 1, got {weight_total!r}")
        if any(weight < 0 for weight in self.region_weights.values()):
            raise ValueError("region weights must be non-negative")

    # ------------------------------------------------------------------ #
    # closed-loop throughput
    # ------------------------------------------------------------------ #
    def max_throughput(self, mean_latency_ms: float) -> float:
        """Throughput achievable by ``threads`` clients at the given latency."""
        if not self.active:
            return 0.0
        latency = max(mean_latency_ms, 0.01) + CLIENT_OVERHEAD_MS
        throughput = self.threads * 1000.0 / latency
        if self.target_ops_per_second is not None:
            throughput = min(throughput, self.target_ops_per_second)
        return throughput

    def offered_loads(self, throughput: float) -> list[OfferedLoad]:
        """Split ``throughput`` ops/s into per-region, per-op offered rates."""
        loads: list[OfferedLoad] = []
        for region_id, weight in self.region_weights.items():
            rates = {
                op: throughput * weight * fraction
                for op, fraction in self.op_mix.items()
                if fraction > 0
            }
            loads.append(OfferedLoad(region_id=region_id, rates=rates))
        return loads

    def unit_rates(self) -> list[tuple[str, list[tuple[str, float]]]]:
        """Per-region ``(op, rate)`` pairs at unit (1 op/s) throughput.

        :meth:`offered_loads` is linear in the throughput, so the loads for
        throughput ``t`` are exactly these rates scaled by ``t``.  The
        simulator's fast kernel precomputes them once per tick and scales
        them in place instead of rebuilding :class:`OfferedLoad` objects on
        every fixed-point iteration.
        """
        return [
            (
                region_id,
                [
                    (op, weight * fraction)
                    for op, fraction in self.op_mix.items()
                    if fraction > 0
                ],
            )
            for region_id, weight in self.region_weights.items()
        ]

    def mean_latency(self, per_region_latency_ms: dict[str, dict[str, float]]) -> float:
        """Request-weighted mean latency over the binding's regions.

        Args:
            per_region_latency_ms: mapping region id -> op type -> latency in
                milliseconds, as computed by the performance model for the
                node currently hosting each region.
        """
        total = 0.0
        for region_id, weight in self.region_weights.items():
            latencies = per_region_latency_ms.get(region_id)
            if not latencies:
                # Region currently unavailable (node restarting): requests
                # block and retry, modelled as a large latency.
                total += weight * 500.0
                continue
            region_latency = sum(
                fraction * latencies.get(op, 1.0)
                for op, fraction in self.op_mix.items()
            )
            total += weight * region_latency
        return total

    def regions(self) -> list[str]:
        """Region ids this binding addresses."""
        return list(self.region_weights)
