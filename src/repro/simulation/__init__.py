"""Deterministic, time-stepped cluster simulation kernel.

This package is the substitute for the paper's physical HBase testbed.  It
models nodes with finite hardware budgets, data partitions with per-operation
request rates, and a closed-loop client population, and it exposes the same
observables the MeT Monitor consumes (CPU utilisation, I/O wait, memory,
per-partition read/write/scan counters, locality index).
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.cluster import ClusterSimulator, SimulatedNode, SimulatedRegion
from repro.simulation.hardware import HardwareSpec
from repro.simulation.metrics import MetricSeries, MetricsRegistry
from repro.simulation.perfmodel import PerformanceModel, ServiceDemand
from repro.simulation.workload import OfferedLoad, WorkloadBinding

__all__ = [
    "SimulationClock",
    "ClusterSimulator",
    "SimulatedNode",
    "SimulatedRegion",
    "HardwareSpec",
    "MetricSeries",
    "MetricsRegistry",
    "PerformanceModel",
    "ServiceDemand",
    "OfferedLoad",
    "WorkloadBinding",
]
