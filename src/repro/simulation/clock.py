"""Simulation clock.

The simulator is time-stepped: the experiment harness advances the clock in
fixed ticks (default 5 simulated seconds).  Components that need wall-clock
style timestamps (metric samples, event traces, controller decisions) read
the shared clock instead of ``time.time`` so runs are deterministic and can
be replayed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ClockError(RuntimeError):
    """Raised when the clock is advanced by a non-positive amount."""


@dataclass
class SimulationClock:
    """A monotonically increasing simulated clock.

    Attributes:
        now: current simulated time in seconds.
        tick_seconds: default advance amount used by :meth:`tick`.
    """

    now: float = 0.0
    tick_seconds: float = 5.0
    _history: list[float] = field(default_factory=list, repr=False)

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds <= 0:
            raise ClockError(f"clock can only move forward, got {seconds!r}")
        self.now += seconds
        self._history.append(self.now)
        return self.now

    def tick(self) -> float:
        """Advance the clock by the default tick size."""
        return self.advance(self.tick_seconds)

    def reset(self) -> None:
        """Reset the clock to zero, clearing history."""
        self.now = 0.0
        self._history.clear()

    @property
    def minutes(self) -> float:
        """Current simulated time expressed in minutes."""
        return self.now / 60.0

    @property
    def ticks_elapsed(self) -> int:
        """Number of advances performed since the last reset."""
        return len(self._history)
