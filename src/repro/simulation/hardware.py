"""Hardware budgets for simulated nodes.

The paper's testbed nodes are Intel i3 machines at 3.1 GHz with 4 GB of RAM,
a single 7200 rpm SATA disk and a switched gigabit network (Section 3.2).
:class:`HardwareSpec` captures those capacities as per-second budgets that
the performance model spends when serving operations.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class HardwareSpec:
    """Per-second resource budgets of a node.

    Attributes:
        cpu_millis_per_second: CPU service-time budget.  A node with 4
            hardware threads can spend roughly 4000 ms of CPU time per second.
        disk_iops: random I/O operations per second the disk sustains.
        disk_mb_per_second: sequential disk bandwidth in MB/s.
        network_mb_per_second: network bandwidth in MB/s.
        memory_bytes: total physical memory.
        heap_bytes: Java heap granted to the RegionServer (3 GB in the paper).
    """

    cpu_millis_per_second: float = 4000.0
    disk_iops: float = 160.0
    disk_mb_per_second: float = 110.0
    network_mb_per_second: float = 110.0
    memory_bytes: int = 4 * GB
    heap_bytes: int = 3 * GB

    def validate(self) -> None:
        """Raise ``ValueError`` if any budget is non-positive."""
        for name in (
            "cpu_millis_per_second",
            "disk_iops",
            "disk_mb_per_second",
            "network_mb_per_second",
            "memory_bytes",
            "heap_bytes",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if self.heap_bytes > self.memory_bytes:
            raise ValueError("heap cannot exceed physical memory")


#: The node type used throughout the paper's evaluation.
PAPER_NODE = HardwareSpec()

#: A larger node type, used by tests exercising heterogeneous hardware.
LARGE_NODE = HardwareSpec(
    cpu_millis_per_second=8000.0,
    disk_iops=320.0,
    disk_mb_per_second=220.0,
    network_mb_per_second=110.0,
    memory_bytes=8 * GB,
    heap_bytes=6 * GB,
)
