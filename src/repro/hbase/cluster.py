"""A self-contained mini-HBase cluster (master + RegionServers + HDFS).

:class:`MiniHBaseCluster` wires the substrate pieces together and offers the
administrative operations MeT's actuator uses against a real deployment:
adding and removing RegionServers, moving Regions, restarting a server with a
new configuration, and triggering major compactions.
"""

from __future__ import annotations

import itertools

from repro.hbase.balancer import Balancer
from repro.hbase.client import HBaseClient
from repro.hbase.config import RegionServerConfig
from repro.hbase.errors import NoSuchRegionServerError
from repro.hbase.master import HMaster
from repro.hbase.regionserver import DEFAULT_HEAP_BYTES, RegionServer
from repro.hbase.table import HTableDescriptor
from repro.hdfs.namenode import NameNode


class MiniHBaseCluster:
    """Master, RegionServers and the HDFS namenode in one object."""

    def __init__(
        self,
        initial_servers: int = 1,
        config: RegionServerConfig | None = None,
        replication: int = 2,
        balancer: Balancer | None = None,
        heap_bytes: int = DEFAULT_HEAP_BYTES,
        seed: int | None = 0,
    ) -> None:
        self.namenode = NameNode(replication=replication, seed=seed)
        self.master = HMaster(balancer=balancer)
        self.default_config = (config or RegionServerConfig()).validate()
        self.heap_bytes = heap_bytes
        self._server_counter = itertools.count(1)
        for _ in range(initial_servers):
            self.add_regionserver()

    # ------------------------------------------------------------------ #
    # cluster administration
    # ------------------------------------------------------------------ #
    def add_regionserver(
        self,
        name: str | None = None,
        config: RegionServerConfig | None = None,
        profile_name: str = "default",
    ) -> RegionServer:
        """Start a new RegionServer (and its co-located DataNode)."""
        if name is None:
            name = f"regionserver-{next(self._server_counter)}"
        server = RegionServer(
            name=name,
            namenode=self.namenode,
            config=config or self.default_config,
            heap_bytes=self.heap_bytes,
            profile_name=profile_name,
        )
        self.master.register_server(server)
        return server

    def remove_regionserver(self, name: str) -> None:
        """Decommission a RegionServer; its regions move elsewhere."""
        self.master.unregister_server(name, reassign=True)
        self.namenode.decommission_datanode(name)

    def regionserver(self, name: str) -> RegionServer:
        """Look up a RegionServer by name."""
        try:
            return self.master.servers[name]
        except KeyError:
            raise NoSuchRegionServerError(f"unknown RegionServer {name!r}") from None

    def regionservers(self) -> list[RegionServer]:
        """All RegionServers."""
        return list(self.master.servers.values())

    def restart_regionserver(
        self,
        name: str,
        config: RegionServerConfig | None = None,
        profile_name: str | None = None,
    ) -> None:
        """Restart a server, optionally with a new configuration.

        Mirrors the paper's incremental reconfiguration: the server's regions
        are drained to the other servers, the server restarts with the new
        configuration (losing its block cache), and the caller is then free
        to move regions back.
        """
        server = self.regionserver(name)
        others = [s for s in self.regionservers() if s.name != name and s.online]
        for region in list(server.hosted_regions()):
            server.flush_region(region)
            if others:
                target = min(others, key=lambda s: len(s.regions))
                self.master.move_region(region.name, target.name)
        server.online = False
        server.apply_config(config or server.config, profile_name)
        server.online = True

    def major_compact_server(self, name: str) -> int:
        """Major-compact every region on a server; returns regions compacted."""
        server = self.regionserver(name)
        count = 0
        for region in list(server.hosted_regions()):
            server.major_compact(region.name)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def create_table(
        self,
        name: str,
        column_families: tuple[str, ...] = ("cf",),
        split_keys: list[str] | None = None,
    ) -> HTableDescriptor:
        """Create a (pre-split) table."""
        descriptor = HTableDescriptor(name=name, column_families=column_families)
        self.master.create_table(descriptor, split_keys)
        return descriptor

    def client(self) -> HBaseClient:
        """A client connected to this cluster."""
        return HBaseClient(self.master)

    def locality_report(self) -> dict[str, float]:
        """Locality index per RegionServer."""
        return {server.name: server.locality_index() for server in self.regionservers()}

    def region_counters(self) -> dict[str, dict[str, int]]:
        """Read/write/scan counters for every region in the cluster."""
        counters: dict[str, dict[str, int]] = {}
        for server in self.regionservers():
            counters.update(server.request_counters())
        return counters
