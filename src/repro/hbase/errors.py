"""Exceptions raised by the mini-HBase substrate."""


class HBaseError(RuntimeError):
    """Base class for all HBase substrate errors."""


class NoSuchTableError(HBaseError):
    """The requested table does not exist."""


class NoSuchRegionError(HBaseError):
    """No region covers the requested key, or the region id is unknown."""


class NoSuchColumnFamilyError(HBaseError):
    """The requested column family is not declared by the table."""


class RegionOfflineError(HBaseError):
    """The region is temporarily unavailable (its server is restarting)."""


class NoSuchRegionServerError(HBaseError):
    """The requested RegionServer is not part of the cluster."""
