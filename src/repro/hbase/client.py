"""The key-value client API: put, get, delete and scan (Section 2.1)."""

from __future__ import annotations

from repro.hbase.master import HMaster


class HBaseClient:
    """Routes operations to the RegionServer hosting the target row."""

    def __init__(self, master: HMaster) -> None:
        self.master = master

    def put(self, table: str, row: str, column: str, value: bytes | str) -> None:
        """Write one cell; writes are atomic and immediately visible."""
        if isinstance(value, str):
            value = value.encode()
        _, server = self.master.locate(table, row)
        server.put(table, row, column, value)

    def put_row(self, table: str, row: str, values: dict[str, bytes | str]) -> None:
        """Write several columns of one row."""
        _, server = self.master.locate(table, row)
        for column, value in values.items():
            if isinstance(value, str):
                value = value.encode()
            server.put(table, row, column, value)

    def get(self, table: str, row: str) -> dict[str, bytes]:
        """Read all columns of a row (empty dict when the row is absent)."""
        _, server = self.master.locate(table, row)
        return server.get(table, row)

    def delete(self, table: str, row: str, column: str | None = None) -> None:
        """Delete a column, or the whole row when ``column`` is None."""
        _, server = self.master.locate(table, row)
        server.delete(table, row, column)

    def scan(
        self,
        table: str,
        start_row: str = "",
        stop_row: str | None = None,
        limit: int = 100,
    ) -> list[tuple[str, dict[str, bytes]]]:
        """Return up to ``limit`` rows with ``start_row <= row < stop_row``."""
        results: list[tuple[str, dict[str, bytes]]] = []
        for server in self.master.servers_for_range(table, start_row, stop_row):
            remaining = limit - len(results)
            if remaining <= 0:
                break
            results.extend(server.scan(table, start_row, stop_row, remaining))
        results.sort(key=lambda item: item[0])
        return results[:limit]

    def read_modify_write(
        self, table: str, row: str, column: str, transform
    ) -> bytes:
        """Read a cell, apply ``transform`` to its value, write it back."""
        current = self.get(table, row).get(column, b"")
        new_value = transform(current)
        if isinstance(new_value, str):
            new_value = new_value.encode()
        self.put(table, row, column, new_value)
        return new_value
