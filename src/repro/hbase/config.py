"""RegionServer configuration parameters.

Section 2.1 of the paper singles out the parameters that most affect HBase
performance and that MeT tunes per node:

* ``block cache size`` -- fraction of the Java heap used to cache blocks read
  from Regions (favours reads).
* ``memstore size`` -- fraction of the heap buffering updates before they are
  flushed to disk (favours writes).
* ``block size`` -- size of the blocks in the block cache; small blocks
  favour random reads, large blocks favour scans.
* ``handler count`` -- number of RPC handler threads.

The paper notes the sum of the block cache and memstore fractions should not
exceed 65% of the heap; :meth:`RegionServerConfig.validate` enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024

#: HBase constraint: block cache + memstore must not exceed this heap share.
MAX_HEAP_SHARE = 0.65


class ConfigError(ValueError):
    """Raised when a RegionServer configuration violates HBase constraints."""


@dataclass(frozen=True)
class RegionServerConfig:
    """Tunable configuration of one RegionServer.

    Attributes:
        block_cache_fraction: share of the heap given to the block cache.
        memstore_fraction: share of the heap given to memstores.
        block_size_bytes: block size used by the block cache.
        handler_count: RPC handler threads available to serve requests.
        region_split_size_bytes: size at which a region is automatically
            split (250 MB by default, Section 2.1).
    """

    block_cache_fraction: float = 0.25
    memstore_fraction: float = 0.40
    block_size_bytes: int = 64 * KB
    handler_count: int = 10
    region_split_size_bytes: int = 250 * 1024 * KB

    def validate(self) -> "RegionServerConfig":
        """Check HBase's configuration constraints and return ``self``."""
        if not 0.0 < self.block_cache_fraction < 1.0:
            raise ConfigError(
                f"block cache fraction must be in (0, 1), got {self.block_cache_fraction!r}"
            )
        if not 0.0 < self.memstore_fraction < 1.0:
            raise ConfigError(
                f"memstore fraction must be in (0, 1), got {self.memstore_fraction!r}"
            )
        total = self.block_cache_fraction + self.memstore_fraction
        if total > MAX_HEAP_SHARE + 1e-9:
            raise ConfigError(
                "block cache + memstore fractions must not exceed "
                f"{MAX_HEAP_SHARE:.0%} of the heap, got {total:.0%}"
            )
        if self.block_size_bytes <= 0:
            raise ConfigError(f"block size must be positive, got {self.block_size_bytes!r}")
        if self.handler_count <= 0:
            raise ConfigError(f"handler count must be positive, got {self.handler_count!r}")
        if self.region_split_size_bytes <= 0:
            raise ConfigError(
                f"region split size must be positive, got {self.region_split_size_bytes!r}"
            )
        return self

    def block_cache_bytes(self, heap_bytes: int) -> int:
        """Absolute block-cache capacity for a given heap size."""
        return int(self.block_cache_fraction * heap_bytes)

    def memstore_bytes(self, heap_bytes: int) -> int:
        """Absolute memstore capacity for a given heap size."""
        return int(self.memstore_fraction * heap_bytes)

    def with_overrides(self, **overrides: float | int) -> "RegionServerConfig":
        """Return a copy with the given fields replaced (and validated)."""
        return replace(self, **overrides).validate()


#: The Random-Homogeneous configuration used in Section 3.3: 60% of the heap
#: for reads and 40% for writes would violate the 65% rule, so the paper's
#: direct mapping is interpreted as a 60/40 split of the allowed share.
DEFAULT_HOMOGENEOUS = RegionServerConfig(
    block_cache_fraction=0.39,
    memstore_fraction=0.26,
    block_size_bytes=64 * KB,
    handler_count=10,
)

#: The TPC-C Manual-Homogeneous baseline of Section 6.3 (50% cache, 15%
#: memstore, 32 KB blocks).
TPCC_HOMOGENEOUS = RegionServerConfig(
    block_cache_fraction=0.50,
    memstore_fraction=0.15,
    block_size_bytes=32 * KB,
    handler_count=10,
)
