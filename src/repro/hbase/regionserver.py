"""RegionServers: serve Regions, own a memstore budget and an LRU block cache."""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass

from repro.hbase.config import RegionServerConfig
from repro.hbase.errors import NoSuchRegionError
from repro.hbase.region import Region
from repro.hbase.storefile import StoreFile, StoreFileBlock
from repro.hdfs.namenode import NameNode

#: Default Java heap of a RegionServer in the paper's testbed (3 GB).
DEFAULT_HEAP_BYTES = 3 * 1024 * 1024 * 1024


@dataclass
class CacheStats:
    """Block-cache hit/miss and locality counters."""

    hits: int = 0
    misses: int = 0
    local_reads: int = 0
    remote_reads: int = 0

    @property
    def hit_ratio(self) -> float:
        """Cache hit ratio (1.0 when no reads were performed)."""
        total = self.hits + self.misses
        return 1.0 if total == 0 else self.hits / total

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.local_reads = 0
        self.remote_reads = 0


class BlockCache:
    """A size-bounded LRU cache of store-file blocks."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = max(capacity_bytes, 0)
        self.used_bytes = 0
        self._entries: OrderedDict[tuple[str, int], int] = OrderedDict()

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def touch(self, key: tuple[str, int]) -> bool:
        """Mark ``key`` as recently used; returns True when it was cached."""
        if key not in self._entries:
            return False
        self._entries.move_to_end(key)
        return True

    def insert(self, key: tuple[str, int], size_bytes: int) -> None:
        """Insert a block, evicting least-recently-used blocks as needed."""
        if size_bytes > self.capacity_bytes:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        while self.used_bytes + size_bytes > self.capacity_bytes and self._entries:
            _, evicted_size = self._entries.popitem(last=False)
            self.used_bytes -= evicted_size
        self._entries[key] = size_bytes
        self.used_bytes += size_bytes

    def evict_file(self, path: str) -> None:
        """Drop every cached block belonging to ``path``."""
        for key in [key for key in self._entries if key[0] == path]:
            self.used_bytes -= self._entries.pop(key)

    def clear(self) -> None:
        """Empty the cache (a RegionServer restart loses its cache)."""
        self._entries.clear()
        self.used_bytes = 0

    def resize(self, capacity_bytes: int) -> None:
        """Change the capacity, evicting as needed."""
        self.capacity_bytes = max(capacity_bytes, 0)
        while self.used_bytes > self.capacity_bytes and self._entries:
            _, evicted_size = self._entries.popitem(last=False)
            self.used_bytes -= evicted_size


class RegionServer:
    """Serves a set of Regions with one configuration (Table 1 profile)."""

    def __init__(
        self,
        name: str,
        namenode: NameNode,
        config: RegionServerConfig | None = None,
        heap_bytes: int = DEFAULT_HEAP_BYTES,
        profile_name: str = "default",
    ) -> None:
        self.name = name
        self.namenode = namenode
        self.config = (config or RegionServerConfig()).validate()
        self.heap_bytes = heap_bytes
        self.profile_name = profile_name
        self.regions: dict[str, Region] = {}
        self.block_cache = BlockCache(self.config.block_cache_bytes(heap_bytes))
        self.cache_stats = CacheStats()
        self.online = True
        self._flush_counter = itertools.count(1)
        self.namenode.register_datanode(self.name)

    # ------------------------------------------------------------------ #
    # region hosting
    # ------------------------------------------------------------------ #
    def open_region(self, region: Region) -> None:
        """Start serving ``region``."""
        self.regions[region.name] = region

    def close_region(self, region_name: str) -> Region:
        """Stop serving a region and return it (for reassignment)."""
        try:
            return self.regions.pop(region_name)
        except KeyError:
            raise NoSuchRegionError(
                f"region {region_name!r} is not served by {self.name}"
            ) from None

    def hosted_regions(self) -> list[Region]:
        """Regions currently served."""
        return list(self.regions.values())

    # ------------------------------------------------------------------ #
    # configuration / restart
    # ------------------------------------------------------------------ #
    def apply_config(self, config: RegionServerConfig, profile_name: str | None = None) -> None:
        """Apply a new configuration.

        HBase has no online reconfiguration (Section 5): applying a config is
        modelled as a restart, which empties the block cache.
        """
        self.config = config.validate()
        if profile_name is not None:
            self.profile_name = profile_name
        self.block_cache = BlockCache(self.config.block_cache_bytes(self.heap_bytes))
        self.cache_stats.reset()

    # ------------------------------------------------------------------ #
    # memstore management
    # ------------------------------------------------------------------ #
    @property
    def memstore_limit_bytes(self) -> int:
        """Global memstore budget for this server."""
        return self.config.memstore_bytes(self.heap_bytes)

    @property
    def memstore_used_bytes(self) -> int:
        """Bytes currently buffered across hosted regions."""
        return sum(region.memstore.size_bytes for region in self.regions.values())

    def region_flush_threshold(self) -> int:
        """Per-region flush threshold given the hosted region count."""
        hosted = max(len(self.regions), 1)
        return max(self.memstore_limit_bytes // hosted, 1)

    def maybe_flush(self, region: Region) -> bool:
        """Flush ``region`` if its memstore exceeds the per-region threshold."""
        if region.memstore.size_bytes < self.region_flush_threshold():
            return False
        self.flush_region(region)
        return True

    def flush_region(self, region: Region) -> None:
        """Flush a region's memstore into a new store file on HDFS."""
        path = f"/hbase/{region.table.name}/{region.name}/flush-{next(self._flush_counter)}"
        store_file = region.flush(path, self.config.block_size_bytes)
        if store_file is None:
            return
        self.namenode.create_file(
            path, store_file.size_bytes, preferred_datanode=self.name
        )

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #
    def _region_for_key(self, table: str, row: str) -> Region:
        for region in self.regions.values():
            if region.table.name == table and region.contains(row):
                return region
        raise NoSuchRegionError(f"{self.name} serves no region of {table!r} covering {row!r}")

    def _read_block(self, store_file: StoreFile, block: StoreFileBlock) -> None:
        """Account a block access: cache hit/miss and HDFS locality."""
        key = (store_file.path, block.index)
        if self.block_cache.touch(key):
            self.cache_stats.hits += 1
            return
        self.cache_stats.misses += 1
        if self.namenode.exists(store_file.path) and self.namenode.is_local(
            store_file.path, self.name
        ):
            self.cache_stats.local_reads += 1
        else:
            self.cache_stats.remote_reads += 1
        self.block_cache.insert(key, block.size_bytes)

    def put(self, table: str, row: str, column: str, value: bytes) -> None:
        """Write one cell."""
        region = self._region_for_key(table, row)
        region.put(row, column, value)
        self.maybe_flush(region)

    def get(self, table: str, row: str) -> dict[str, bytes]:
        """Read one row (all columns)."""
        region = self._region_for_key(table, row)
        region.counters.reads += 1
        return region.read_row(row, block_reader=self._read_block)

    def delete(self, table: str, row: str, column: str | None = None) -> None:
        """Delete a column or a whole row."""
        region = self._region_for_key(table, row)
        region.delete(row, column)
        self.maybe_flush(region)

    def scan(
        self, table: str, start_row: str, stop_row: str | None, limit: int
    ) -> list[tuple[str, dict[str, bytes]]]:
        """Scan rows across the hosted regions of ``table``."""
        results: list[tuple[str, dict[str, bytes]]] = []
        regions = sorted(
            (r for r in self.regions.values() if r.table.name == table),
            key=lambda r: r.start_key,
        )
        for region in regions:
            if stop_row is not None and region.start_key and region.start_key >= stop_row:
                break
            region.counters.scans += 1
            remaining = limit - len(results)
            if remaining <= 0:
                break
            results.extend(
                region.scan_rows(start_row, stop_row, remaining, self._read_block)
            )
        return results[:limit]

    # ------------------------------------------------------------------ #
    # compaction / locality
    # ------------------------------------------------------------------ #
    def major_compact(self, region_name: str) -> None:
        """Run a major compaction of one region, restoring data locality."""
        region = self.regions.get(region_name)
        if region is None:
            raise NoSuchRegionError(f"region {region_name!r} is not served by {self.name}")
        old_paths = region.store_file_paths
        self.flush_region(region)
        old_paths = list(dict.fromkeys(old_paths + region.store_file_paths))
        path = f"/hbase/{region.table.name}/{region.name}/compact-{next(self._flush_counter)}"
        merged = region.compact(path, self.config.block_size_bytes)
        for old_path in old_paths:
            self.block_cache.evict_file(old_path)
            self.namenode.delete_file(old_path)
        if merged is not None:
            self.namenode.create_file(
                path, merged.size_bytes, preferred_datanode=self.name
            )

    def locality_index(self) -> float:
        """Fraction of hosted data stored on the co-located DataNode."""
        paths = [
            path for region in self.regions.values() for path in region.store_file_paths
        ]
        return self.namenode.locality_index(paths, self.name)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def request_counters(self) -> dict[str, dict[str, int]]:
        """Per-region read/write/scan counters."""
        return {name: region.counters.snapshot() for name, region in self.regions.items()}

    def total_requests(self) -> int:
        """Total requests served across hosted regions."""
        return sum(region.counters.total for region in self.regions.values())
