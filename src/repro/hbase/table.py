"""Table schema and cell model.

HBase's data model is a multi-dimensional sorted map indexed by row key,
column (grouped into column families) and timestamp (Section 2.1).  A
:class:`Cell` is one versioned value; :class:`HTableDescriptor` declares a
table and its column families.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Cell:
    """One versioned value of a row/column pair."""

    row: str
    column: str
    timestamp: int
    value: bytes = field(compare=False)

    @property
    def family(self) -> str:
        """Column family part of the column name (``family:qualifier``)."""
        return self.column.split(":", 1)[0]

    @property
    def qualifier(self) -> str:
        """Qualifier part of the column name."""
        parts = self.column.split(":", 1)
        return parts[1] if len(parts) > 1 else ""

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint of the cell."""
        return len(self.row) + len(self.column) + 8 + len(self.value)


@dataclass(frozen=True)
class HTableDescriptor:
    """Declaration of a table and its column families."""

    name: str
    column_families: tuple[str, ...] = ("cf",)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("table name must not be empty")
        if not self.column_families:
            raise ValueError("a table needs at least one column family")

    def has_family(self, family: str) -> bool:
        """Whether the table declares ``family``."""
        return family in self.column_families

    def validate_column(self, column: str) -> str:
        """Check a ``family:qualifier`` column name against the schema."""
        family = column.split(":", 1)[0]
        if not self.has_family(family):
            raise ValueError(
                f"table {self.name!r} has no column family {family!r} "
                f"(declared: {', '.join(self.column_families)})"
            )
        return column


def region_name(table: str, start_key: str, sequence: int) -> str:
    """Build the canonical region name used across the substrate."""
    start = start_key if start_key else "-inf"
    return f"{table},{start},{sequence}"
