"""A functional mini-HBase.

This package implements the NoSQL substrate the paper builds on, at the
fidelity MeT needs: a multi-dimensional sorted map (HTable) horizontally
partitioned into Regions served by RegionServers, with a put/get/delete/scan
client API, memstores, an LRU block cache, store files kept in the HDFS
substrate (:mod:`repro.hdfs`), automatic region splits, pluggable balancers,
major compactions and per-Region request counters (including the scan counter
the paper had to add to HBase).

It is a real, usable key-value store for in-memory data sets; the large-scale
experiments use the analytical :mod:`repro.simulation` substrate instead (see
DESIGN.md, section 2).
"""

from repro.hbase.client import HBaseClient
from repro.hbase.cluster import MiniHBaseCluster
from repro.hbase.config import (
    DEFAULT_HOMOGENEOUS,
    TPCC_HOMOGENEOUS,
    ConfigError,
    RegionServerConfig,
)
from repro.hbase.errors import NoSuchRegionError, NoSuchTableError, RegionOfflineError
from repro.hbase.master import HMaster
from repro.hbase.region import Region
from repro.hbase.regionserver import RegionServer
from repro.hbase.table import HTableDescriptor

__all__ = [
    "HBaseClient",
    "MiniHBaseCluster",
    "RegionServerConfig",
    "ConfigError",
    "DEFAULT_HOMOGENEOUS",
    "TPCC_HOMOGENEOUS",
    "HMaster",
    "Region",
    "RegionServer",
    "HTableDescriptor",
    "NoSuchTableError",
    "NoSuchRegionError",
    "RegionOfflineError",
]
