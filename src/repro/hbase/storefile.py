"""Immutable store files (HFiles) backing a Region.

A store file is produced by flushing a memstore or by compaction.  It keeps
its cells sorted by row and is divided into fixed-size blocks: the block is
the unit of caching in the RegionServer's block cache and the unit of I/O
accounting, which is how the block-size configuration parameter influences
random-read and scan performance.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.hbase.table import Cell


@dataclass
class StoreFileBlock:
    """One block of a store file: a contiguous run of rows."""

    index: int
    first_row: str
    size_bytes: int
    rows: list[str] = field(default_factory=list)


class StoreFile:
    """An immutable, sorted collection of cells divided into blocks."""

    def __init__(self, path: str, cells: list[Cell], block_size_bytes: int) -> None:
        if block_size_bytes <= 0:
            raise ValueError(f"block size must be positive, got {block_size_bytes!r}")
        self.path = path
        self.block_size_bytes = block_size_bytes
        # Latest cell wins for identical (row, column, timestamp); keep all
        # versions otherwise, newest first per column.
        self._by_row: dict[str, dict[str, Cell]] = {}
        for cell in sorted(cells, key=lambda c: (c.row, c.column, -c.timestamp)):
            columns = self._by_row.setdefault(cell.row, {})
            columns.setdefault(cell.column, cell)
        self._rows = sorted(self._by_row)
        self.blocks: list[StoreFileBlock] = []
        self._block_first_rows: list[str] = []
        self._build_blocks()

    def _build_blocks(self) -> None:
        current_rows: list[str] = []
        current_size = 0
        for row in self._rows:
            row_size = sum(cell.size_bytes for cell in self._by_row[row].values())
            if current_rows and current_size + row_size > self.block_size_bytes:
                self._append_block(current_rows, current_size)
                current_rows = []
                current_size = 0
            current_rows.append(row)
            current_size += row_size
        if current_rows:
            self._append_block(current_rows, current_size)

    def _append_block(self, rows: list[str], size: int) -> None:
        block = StoreFileBlock(
            index=len(self.blocks),
            first_row=rows[0],
            size_bytes=size,
            rows=list(rows),
        )
        self.blocks.append(block)
        self._block_first_rows.append(rows[0])

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def size_bytes(self) -> int:
        """Total file size."""
        return sum(block.size_bytes for block in self.blocks)

    @property
    def row_count(self) -> int:
        """Number of distinct rows."""
        return len(self._rows)

    def block_for_row(self, row: str) -> StoreFileBlock | None:
        """The block that would contain ``row`` (None for an empty file)."""
        if not self.blocks:
            return None
        index = bisect_right(self._block_first_rows, row) - 1
        if index < 0:
            index = 0
        return self.blocks[index]

    def get(self, row: str) -> dict[str, Cell]:
        """Cells of ``row`` in this file (empty dict when absent)."""
        return dict(self._by_row.get(row, {}))

    def rows_in_range(self, start_row: str, stop_row: str | None) -> list[str]:
        """Rows with ``start_row <= row < stop_row`` in sorted order."""
        result = []
        for row in self._rows:
            if row < start_row:
                continue
            if stop_row is not None and row >= stop_row:
                break
            result.append(row)
        return result

    def blocks_for_range(self, start_row: str, stop_row: str | None) -> list[StoreFileBlock]:
        """Blocks overlapping the given row range."""
        touched: list[StoreFileBlock] = []
        for block in self.blocks:
            last_row = block.rows[-1]
            if last_row < start_row:
                continue
            if stop_row is not None and block.first_row >= stop_row:
                break
            touched.append(block)
        return touched

    def all_cells(self) -> list[Cell]:
        """Every cell in the file (used by compaction)."""
        cells: list[Cell] = []
        for row in self._rows:
            cells.extend(self._by_row[row].values())
        return cells
