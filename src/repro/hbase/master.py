"""The HMaster: table catalog, region assignment and cluster rebalancing."""

from __future__ import annotations

from repro.hbase.balancer import Balancer, RandomBalancer
from repro.hbase.errors import (
    NoSuchRegionError,
    NoSuchRegionServerError,
    NoSuchTableError,
    RegionOfflineError,
)
from repro.hbase.region import Region
from repro.hbase.regionserver import RegionServer
from repro.hbase.table import HTableDescriptor


class HMaster:
    """Coordinates RegionServers: catalog, assignment, moves and splits."""

    def __init__(self, balancer: Balancer | None = None) -> None:
        self.balancer = balancer or RandomBalancer(seed=0)
        self.tables: dict[str, HTableDescriptor] = {}
        self.regions: dict[str, Region] = {}
        self.servers: dict[str, RegionServer] = {}
        self.assignment: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def register_server(self, server: RegionServer) -> None:
        """Add a RegionServer to the cluster."""
        self.servers[server.name] = server

    def unregister_server(self, name: str, reassign: bool = True) -> list[str]:
        """Remove a RegionServer, reassigning its regions elsewhere."""
        server = self._server(name)
        hosted = [region.name for region in server.hosted_regions()]
        del self.servers[name]
        if not reassign:
            for region_name in hosted:
                self.assignment.pop(region_name, None)
            return hosted
        for region_name in hosted:
            region = server.close_region(region_name)
            target = self._least_loaded_server()
            if target is None:
                self.assignment.pop(region_name, None)
                continue
            target.open_region(region)
            self.assignment[region_name] = target.name
        return hosted

    def _server(self, name: str) -> RegionServer:
        try:
            return self.servers[name]
        except KeyError:
            raise NoSuchRegionServerError(f"unknown RegionServer {name!r}") from None

    def _least_loaded_server(self) -> RegionServer | None:
        online = [s for s in self.servers.values() if s.online]
        if not online:
            return None
        return min(online, key=lambda s: len(s.regions))

    # ------------------------------------------------------------------ #
    # catalog
    # ------------------------------------------------------------------ #
    def create_table(
        self, descriptor: HTableDescriptor, split_keys: list[str] | None = None
    ) -> list[Region]:
        """Create a table, pre-split at ``split_keys``, and assign its regions."""
        if descriptor.name in self.tables:
            raise ValueError(f"table {descriptor.name!r} already exists")
        if not self.servers:
            raise NoSuchRegionServerError("cannot create a table with no RegionServers")
        self.tables[descriptor.name] = descriptor
        boundaries = sorted(set(split_keys or []))
        starts = [""] + boundaries
        ends: list[str | None] = boundaries + [None]
        regions = [
            Region(descriptor, start_key=start, end_key=end)
            for start, end in zip(starts, ends)
        ]
        for region in regions:
            self.regions[region.name] = region
        self._assign_regions([region.name for region in regions])
        return regions

    def drop_table(self, table_name: str) -> None:
        """Remove a table and all its regions."""
        if table_name not in self.tables:
            raise NoSuchTableError(f"unknown table {table_name!r}")
        del self.tables[table_name]
        doomed = [name for name, region in self.regions.items() if region.table.name == table_name]
        for region_name in doomed:
            server_name = self.assignment.pop(region_name, None)
            if server_name and server_name in self.servers:
                self.servers[server_name].close_region(region_name)
            del self.regions[region_name]

    def table_regions(self, table_name: str) -> list[Region]:
        """Regions of a table ordered by start key."""
        if table_name not in self.tables:
            raise NoSuchTableError(f"unknown table {table_name!r}")
        regions = [r for r in self.regions.values() if r.table.name == table_name]
        return sorted(regions, key=lambda r: r.start_key)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def locate(self, table_name: str, row: str) -> tuple[Region, RegionServer]:
        """Find the region covering ``row`` and the server hosting it."""
        for region in self.table_regions(table_name):
            if region.contains(row):
                server_name = self.assignment.get(region.name)
                if server_name is None or server_name not in self.servers:
                    raise RegionOfflineError(f"region {region.name!r} is not assigned")
                server = self.servers[server_name]
                if not server.online:
                    raise RegionOfflineError(
                        f"region {region.name!r} is on restarting server {server_name!r}"
                    )
                return region, server
        raise NoSuchRegionError(f"no region of {table_name!r} covers {row!r}")

    def servers_for_range(
        self, table_name: str, start_row: str, stop_row: str | None
    ) -> list[RegionServer]:
        """Servers hosting regions that overlap the given row range."""
        servers: list[RegionServer] = []
        seen: set[str] = set()
        for region in self.table_regions(table_name):
            if stop_row is not None and region.start_key and region.start_key >= stop_row:
                continue
            if region.end_key is not None and region.end_key <= start_row:
                continue
            server_name = self.assignment.get(region.name)
            if server_name is None or server_name in seen:
                continue
            server = self.servers.get(server_name)
            if server is None or not server.online:
                raise RegionOfflineError(f"region {region.name!r} is unavailable")
            servers.append(server)
            seen.add(server_name)
        return servers

    # ------------------------------------------------------------------ #
    # assignment / moves / splits
    # ------------------------------------------------------------------ #
    def _assign_regions(self, region_names: list[str]) -> None:
        costs = {
            name: float(self.regions[name].counters.total) for name in region_names
        }
        plan = self.balancer.assign(region_names, list(self.servers), costs)
        for region_name, server_name in plan.items():
            self._place(region_name, server_name)

    def _place(self, region_name: str, server_name: str) -> None:
        region = self.regions[region_name]
        current = self.assignment.get(region_name)
        if current == server_name:
            return
        if current and current in self.servers:
            self.servers[current].close_region(region_name)
        self.servers[server_name].open_region(region)
        self.assignment[region_name] = server_name

    def move_region(self, region_name: str, server_name: str) -> None:
        """Move one region to a specific server."""
        if region_name not in self.regions:
            raise NoSuchRegionError(f"unknown region {region_name!r}")
        self._server(server_name)
        self._place(region_name, server_name)

    def balance(self) -> dict[str, str]:
        """Re-run the balancer over every region; returns the new assignment."""
        self._assign_regions(list(self.regions))
        return dict(self.assignment)

    def split_region(self, region_name: str) -> tuple[Region, Region] | None:
        """Split a region at its midpoint key (None when it cannot split)."""
        region = self.regions.get(region_name)
        if region is None:
            raise NoSuchRegionError(f"unknown region {region_name!r}")
        midpoint = region.midpoint_key()
        if midpoint is None:
            return None
        server_name = self.assignment.get(region_name)
        server = self.servers.get(server_name) if server_name else None
        cells = region.all_cells()
        low = Region(region.table, start_key=region.start_key, end_key=midpoint)
        high = Region(region.table, start_key=midpoint, end_key=region.end_key)
        for cell in cells:
            target = low if low.contains(cell.row) else high
            target.memstore.put(cell)
        if server is not None:
            server.close_region(region_name)
        del self.regions[region_name]
        self.assignment.pop(region_name, None)
        for child in (low, high):
            self.regions[child.name] = child
        target_server = server or self._least_loaded_server()
        if target_server is not None:
            for child in (low, high):
                target_server.open_region(child)
                self.assignment[child.name] = target_server.name
        return low, high

    def maybe_split(self, region_name: str) -> bool:
        """Split the region if it exceeds its configured split size."""
        region = self.regions.get(region_name)
        if region is None:
            return False
        server_name = self.assignment.get(region_name)
        if server_name is None:
            return False
        server = self.servers[server_name]
        if region.size_bytes < server.config.region_split_size_bytes:
            return False
        return self.split_region(region_name) is not None
