"""Region balancers.

HBase's out-of-the-box balancer randomly distributes Regions so that every
RegionServer serves the same *number* of Regions, regardless of how hot each
Region is -- the behaviour the paper's Random-Homogeneous strategy captures.
The StochasticLoadBalancer (mentioned in the paper's conclusion as upcoming
work in HBase) additionally weighs request counts but stays
configuration-oblivious.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.util.rng import make_rng


class Balancer(ABC):
    """Computes an assignment of regions to servers."""

    @abstractmethod
    def assign(
        self,
        region_names: list[str],
        server_names: list[str],
        region_costs: dict[str, float] | None = None,
    ) -> dict[str, str]:
        """Return a mapping region name -> server name."""


class RandomBalancer(Balancer):
    """The default HBase placement: even region *counts*, random choice."""

    def __init__(self, seed: int | random.Random | None = None) -> None:
        self._rng = make_rng(seed)

    def assign(
        self,
        region_names: list[str],
        server_names: list[str],
        region_costs: dict[str, float] | None = None,
    ) -> dict[str, str]:
        if not server_names:
            raise ValueError("cannot balance onto an empty server list")
        shuffled = list(region_names)
        self._rng.shuffle(shuffled)
        assignment: dict[str, str] = {}
        per_server = {server: 0 for server in server_names}
        quota = -(-len(region_names) // len(server_names))  # ceil division
        for region in shuffled:
            candidates = [s for s in server_names if per_server[s] < quota]
            server = self._rng.choice(candidates)
            assignment[region] = server
            per_server[server] += 1
        return assignment


class StochasticLoadBalancer(Balancer):
    """A request-count-aware balancer (greedy least-loaded placement)."""

    def __init__(self, seed: int | random.Random | None = None) -> None:
        self._rng = make_rng(seed)

    def assign(
        self,
        region_names: list[str],
        server_names: list[str],
        region_costs: dict[str, float] | None = None,
    ) -> dict[str, str]:
        if not server_names:
            raise ValueError("cannot balance onto an empty server list")
        costs = region_costs or {}
        # Sort by decreasing cost, breaking ties randomly but reproducibly.
        ordered = sorted(
            region_names, key=lambda r: (-costs.get(r, 0.0), self._rng.random())
        )
        load = {server: 0.0 for server in server_names}
        counts = {server: 0 for server in server_names}
        quota = -(-len(region_names) // len(server_names))
        assignment: dict[str, str] = {}
        for region in ordered:
            candidates = [s for s in server_names if counts[s] < quota] or server_names
            server = min(candidates, key=lambda s: load[s])
            assignment[region] = server
            load[server] += costs.get(region, 1.0)
            counts[server] += 1
        return assignment
