"""Regions: horizontal partitions of an HTable.

A Region covers a contiguous row-key range ``[start_key, end_key)``.  Writes
go to its memstore and are flushed into immutable store files (HFiles) kept
in HDFS; reads consult the memstore first and then the store files from
newest to oldest, going through the hosting RegionServer's block cache.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.hbase.storefile import StoreFile
from repro.hbase.table import Cell, HTableDescriptor

#: Sentinel value stored for deletes; filtered out of reads and compactions.
TOMBSTONE = b"\x00__tombstone__"


@dataclass
class RegionRequestCounters:
    """Per-region request counters exported to the monitor.

    The scan counter is the metric the paper added to HBase (Section 5).
    """

    reads: int = 0
    writes: int = 0
    scans: int = 0

    def snapshot(self) -> dict[str, int]:
        """Dictionary view of the counters."""
        return {"reads": self.reads, "writes": self.writes, "scans": self.scans}

    def reset(self) -> None:
        """Zero all counters."""
        self.reads = 0
        self.writes = 0
        self.scans = 0

    @property
    def total(self) -> int:
        """Total requests."""
        return self.reads + self.writes + self.scans


@dataclass
class MemStore:
    """In-memory write buffer of a region."""

    cells: dict[str, dict[str, Cell]] = field(default_factory=dict)
    size_bytes: int = 0

    def put(self, cell: Cell) -> None:
        """Insert or overwrite a cell."""
        columns = self.cells.setdefault(cell.row, {})
        previous = columns.get(cell.column)
        if previous is not None:
            self.size_bytes -= previous.size_bytes
        columns[cell.column] = cell
        self.size_bytes += cell.size_bytes

    def get(self, row: str) -> dict[str, Cell]:
        """Cells buffered for ``row``."""
        return dict(self.cells.get(row, {}))

    def rows(self) -> list[str]:
        """Buffered rows in sorted order."""
        return sorted(self.cells)

    def drain(self) -> list[Cell]:
        """Return all buffered cells and clear the memstore."""
        cells = [cell for columns in self.cells.values() for cell in columns.values()]
        self.cells.clear()
        self.size_bytes = 0
        return cells


class Region:
    """One horizontal partition of a table."""

    _sequence = itertools.count(1)

    def __init__(
        self,
        table: HTableDescriptor,
        start_key: str = "",
        end_key: str | None = None,
        name: str | None = None,
    ) -> None:
        self.table = table
        self.start_key = start_key
        self.end_key = end_key
        seq = next(Region._sequence)
        start = start_key if start_key else "-inf"
        self.name = name or f"{table.name},{start},{seq}"
        self.memstore = MemStore()
        self.store_files: list[StoreFile] = []
        self.counters = RegionRequestCounters()
        self._timestamp = itertools.count(1)

    # ------------------------------------------------------------------ #
    # key range
    # ------------------------------------------------------------------ #
    def contains(self, row: str) -> bool:
        """Whether ``row`` falls in this region's key range."""
        if row < self.start_key:
            return False
        if self.end_key is not None and row >= self.end_key:
            return False
        return True

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    @property
    def store_file_bytes(self) -> int:
        """Bytes held in store files."""
        return sum(sf.size_bytes for sf in self.store_files)

    @property
    def size_bytes(self) -> int:
        """Total region size (memstore + store files)."""
        return self.memstore.size_bytes + self.store_file_bytes

    @property
    def store_file_paths(self) -> list[str]:
        """HDFS paths of the region's store files."""
        return [sf.path for sf in self.store_files]

    # ------------------------------------------------------------------ #
    # data operations (called by the RegionServer)
    # ------------------------------------------------------------------ #
    def next_timestamp(self) -> int:
        """Monotonically increasing timestamp for new cells."""
        return next(self._timestamp)

    def put(self, row: str, column: str, value: bytes) -> Cell:
        """Buffer a write in the memstore."""
        self.table.validate_column(column)
        cell = Cell(row=row, column=column, timestamp=self.next_timestamp(), value=value)
        self.memstore.put(cell)
        self.counters.writes += 1
        return cell

    def delete(self, row: str, column: str | None = None) -> None:
        """Delete a column of a row, or the whole row when column is None."""
        self.counters.writes += 1
        timestamp = self.next_timestamp()
        if column is not None:
            self.memstore.put(Cell(row=row, column=column, timestamp=timestamp, value=TOMBSTONE))
            return
        for existing_column in self._columns_of(row):
            self.memstore.put(
                Cell(row=row, column=existing_column, timestamp=timestamp, value=TOMBSTONE)
            )

    def _columns_of(self, row: str) -> set[str]:
        columns = set(self.memstore.get(row))
        for store_file in self.store_files:
            columns.update(store_file.get(row))
        return columns

    def read_row(self, row: str, block_reader) -> dict[str, bytes]:
        """Merge the row's cells from memstore and store files.

        ``block_reader(store_file, block)`` is called for every store-file
        block touched so the RegionServer can account cache hits/misses and
        HDFS locality.
        """
        merged: dict[str, Cell] = dict(self.memstore.get(row))
        for store_file in self.store_files:
            block = store_file.block_for_row(row)
            file_cells = store_file.get(row)
            if file_cells and block is not None:
                block_reader(store_file, block)
            for column, cell in file_cells.items():
                current = merged.get(column)
                if current is None or cell.timestamp > current.timestamp:
                    merged[column] = cell
        return {
            column: cell.value
            for column, cell in merged.items()
            if cell.value != TOMBSTONE
        }

    def scan_rows(
        self, start_row: str, stop_row: str | None, limit: int, block_reader
    ) -> list[tuple[str, dict[str, bytes]]]:
        """Rows in ``[start_row, stop_row)`` clipped to this region's range."""
        effective_start = max(start_row, self.start_key)
        effective_stop = stop_row
        if self.end_key is not None:
            effective_stop = (
                self.end_key if stop_row is None else min(stop_row, self.end_key)
            )
        candidate_rows: set[str] = {
            row
            for row in self.memstore.rows()
            if row >= effective_start
            and (effective_stop is None or row < effective_stop)
        }
        for store_file in self.store_files:
            candidate_rows.update(store_file.rows_in_range(effective_start, effective_stop))
            for block in store_file.blocks_for_range(effective_start, effective_stop):
                block_reader(store_file, block)
        results: list[tuple[str, dict[str, bytes]]] = []
        for row in sorted(candidate_rows):
            values = self.read_row(row, block_reader=lambda *_: None)
            if values:
                results.append((row, values))
            if len(results) >= limit:
                break
        return results

    # ------------------------------------------------------------------ #
    # flush / compaction / split
    # ------------------------------------------------------------------ #
    def flush(self, path: str, block_size_bytes: int) -> StoreFile | None:
        """Flush the memstore into a new store file (None when empty)."""
        cells = self.memstore.drain()
        if not cells:
            return None
        store_file = StoreFile(path=path, cells=cells, block_size_bytes=block_size_bytes)
        self.store_files.insert(0, store_file)
        return store_file

    def compact(self, path: str, block_size_bytes: int) -> StoreFile | None:
        """Merge every store file into one, dropping tombstones and old versions."""
        if not self.store_files:
            return None
        latest: dict[tuple[str, str], Cell] = {}
        for store_file in self.store_files:
            for cell in store_file.all_cells():
                key = (cell.row, cell.column)
                current = latest.get(key)
                if current is None or cell.timestamp > current.timestamp:
                    latest[key] = cell
        survivors = [cell for cell in latest.values() if cell.value != TOMBSTONE]
        self.store_files = []
        if not survivors:
            return None
        merged = StoreFile(path=path, cells=survivors, block_size_bytes=block_size_bytes)
        self.store_files = [merged]
        return merged

    def midpoint_key(self) -> str | None:
        """A row key that splits the region roughly in half (None if tiny)."""
        rows = set(self.memstore.rows())
        for store_file in self.store_files:
            rows.update(store_file.rows_in_range(self.start_key, self.end_key))
        ordered = sorted(rows)
        if len(ordered) < 2:
            return None
        midpoint = ordered[len(ordered) // 2]
        if midpoint == self.start_key:
            return None
        return midpoint

    def all_cells(self) -> list[Cell]:
        """Every live cell (memstore + store files), newest version per column."""
        latest: dict[tuple[str, str], Cell] = {}
        sources = [cell for columns in self.memstore.cells.values() for cell in columns.values()]
        for store_file in self.store_files:
            sources.extend(store_file.all_cells())
        for cell in sources:
            key = (cell.row, cell.column)
            current = latest.get(key)
            if current is None or cell.timestamp > current.timestamp:
                latest[key] = cell
        return [cell for cell in latest.values() if cell.value != TOMBSTONE]
