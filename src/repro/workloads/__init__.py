"""Workload generators: YCSB core workloads A-F and a TPC-C (PyTPCC) port."""

from repro.workloads.ycsb.workloads import CORE_WORKLOADS, YCSBWorkload
from repro.workloads.tpcc.driver import TPCCDriver

__all__ = ["CORE_WORKLOADS", "YCSBWorkload", "TPCCDriver"]
