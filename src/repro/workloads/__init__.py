"""Workload generators: YCSB core workloads A-F and a TPC-C (PyTPCC) port.

Both expose scenario-tenant adapters (:class:`YCSBTenant`,
:class:`TPCCTenant`) implementing the :class:`TenantWorkload` protocol the
scenario engine speaks, so heterogeneous tenants compose in one scenario.
"""

from repro.workloads.tenant import TenantRegionSpec, TenantWorkload, as_tenant
from repro.workloads.tpcc.driver import TPCCDriver
from repro.workloads.tpcc.tenant import TPCCTenant
from repro.workloads.ycsb.tenant import YCSBTenant
from repro.workloads.ycsb.workloads import CORE_WORKLOADS, YCSBWorkload

__all__ = [
    "CORE_WORKLOADS",
    "TPCCDriver",
    "TPCCTenant",
    "TenantRegionSpec",
    "TenantWorkload",
    "YCSBTenant",
    "YCSBWorkload",
    "as_tenant",
]
