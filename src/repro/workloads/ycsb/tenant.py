"""The YCSB implementation of the scenario tenant protocol.

A thin frozen adapter: every semantic -- partitions, hotspot weights,
nominal-rate estimate, binding construction -- delegates to the existing
YCSB workload machinery unchanged, so scenario behaviour is identical to
when the engine spoke :class:`YCSBWorkload` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.workloads.tenant import TenantRegionSpec, TenantWorkload
from repro.workloads.ycsb.scenario import binding_for, binding_name
from repro.workloads.ycsb.workloads import YCSBWorkload, partition_specs

__all__ = ["YCSBTenant"]


@dataclass(frozen=True)
class YCSBTenant(TenantWorkload):
    """One YCSB tenant (the key-value side of a heterogeneous scenario)."""

    workload: YCSBWorkload

    unit_label = "ops/s"
    supports_mix_shift = True

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def binding_name(self) -> str:
        return binding_name(self.workload.name)

    @property
    def target_ops_per_second(self) -> float | None:
        return self.workload.target_ops_per_second

    @property
    def nominal_ops_per_second(self) -> float:
        return self.workload.nominal_ops_per_second

    @property
    def op_mix(self) -> dict[str, float]:
        return self.workload.op_mix

    def with_target(self, target_ops: float | None) -> "YCSBTenant":
        if target_ops == self.workload.target_ops_per_second:
            return self
        return YCSBTenant(replace(self.workload, target_ops_per_second=target_ops))

    def binding(self):
        return binding_for(self.workload)

    def region_specs(self) -> list[TenantRegionSpec]:
        workload = self.workload
        return [
            TenantRegionSpec(
                region_id=spec.partition_id,
                size_bytes=spec.size_bytes,
                weight=spec.weight,
                record_size=workload.record_size,
                scan_length=workload.scan_length,
            )
            for spec in partition_specs(workload)
        ]
