"""The multi-tenant YCSB scenario of Sections 3.1/3.2 and 6.

``build_paper_scenario`` materialises the six simultaneously running YCSB
workloads in the analytical simulator: it creates the data partitions (four
equally sized partitions per workload, one for Workload D), attaches one
closed-loop client population per workload (50 threads each, 5 threads and a
1 500 ops/s cap for Workload D), and exposes the expected per-partition
request mixes the manual strategies need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elasticity.strategies import PartitionWorkload
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.workload import WorkloadBinding
from repro.workloads.ycsb.workloads import (
    CORE_WORKLOADS,
    WorkloadPartitionSpec,
    YCSBWorkload,
    partition_specs,
)


@dataclass
class MultiTenantScenario:
    """The partitions and client bindings of a multi-tenant YCSB run."""

    workloads: dict[str, YCSBWorkload] = field(default_factory=dict)
    partitions: list[WorkloadPartitionSpec] = field(default_factory=list)
    bindings: list[WorkloadBinding] = field(default_factory=list)

    def partition_ids(self) -> list[str]:
        """Ids of every partition across all tenants."""
        return [spec.partition_id for spec in self.partitions]

    def binding_names(self) -> list[str]:
        """Names of every client binding."""
        return [binding.name for binding in self.bindings]

    def expected_partition_workloads(
        self, window_seconds: float = 60.0
    ) -> list[PartitionWorkload]:
        """Expected per-partition request mixes, for the manual strategies.

        The manual strategies of Section 3.3 balance partitions using the
        observed request counts of each workload; here the counts are derived
        from each workload's :attr:`~repro.workloads.ycsb.workloads.YCSBWorkload.nominal_ops_per_second`
        estimate over a nominal ``window_seconds`` window.
        """
        expected: list[PartitionWorkload] = []
        for spec in self.partitions:
            counts = spec.expected_requests(
                spec.workload.nominal_ops_per_second * window_seconds
            )
            expected.append(
                PartitionWorkload(
                    partition_id=spec.partition_id,
                    reads=counts["reads"],
                    writes=counts["writes"],
                    scans=counts["scans"],
                    size_bytes=spec.size_bytes,
                )
            )
        return expected


def binding_name(workload_name: str) -> str:
    """Binding name of a tenant given its workload name (``"A"`` -> ``"workload-A"``).

    The single source of the naming convention: region labels, client
    bindings and the scenario engine's tenant lookups all go through it.
    """
    return f"workload-{workload_name}"


def binding_for(workload: YCSBWorkload) -> WorkloadBinding:
    """Build the closed-loop client binding for one workload."""
    specs = partition_specs(workload)
    return WorkloadBinding(
        name=binding_name(workload.name),
        threads=workload.threads,
        op_mix=workload.op_mix,
        region_weights={spec.partition_id: spec.weight for spec in specs},
        target_ops_per_second=workload.target_ops_per_second,
        record_size=workload.record_size,
        scan_length=workload.scan_length,
    )


def build_paper_scenario(
    simulator: ClusterSimulator,
    workloads: dict[str, YCSBWorkload] | None = None,
    initial_node: str | None = None,
) -> MultiTenantScenario:
    """Create the paper's six-tenant scenario inside ``simulator``.

    Partitions are created unassigned (or all on ``initial_node`` when
    given); the caller applies a placement plan or lets a controller
    distribute them.
    """
    workloads = dict(workloads or CORE_WORKLOADS)
    scenario = MultiTenantScenario(workloads=workloads)
    for workload in workloads.values():
        specs = partition_specs(workload)
        scenario.partitions.extend(specs)
        for spec in specs:
            simulator.add_region(
                region_id=spec.partition_id,
                workload=binding_name(workload.name),
                size_bytes=spec.size_bytes,
                node=initial_node,
                record_size=workload.record_size,
                scan_length=workload.scan_length,
            )
        binding = binding_for(workload)
        scenario.bindings.append(binding)
        simulator.attach_workload(binding)
    return scenario
