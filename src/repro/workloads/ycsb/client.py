"""A YCSB client that executes operations against the functional mini-HBase.

Used by the examples and by integration tests to exercise the real data path
(put/get/scan through RegionServers, memstores, block cache and HDFS).  The
large-scale experiments use the analytical simulator instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hbase.client import HBaseClient
from repro.util.rng import make_rng
from repro.workloads.ycsb.distributions import HotspotChooser, KeyChooser
from repro.workloads.ycsb.workloads import YCSBWorkload


def format_key(index: int) -> str:
    """YCSB-style zero-padded row key (keeps lexicographic == numeric order)."""
    return f"user{index:012d}"


@dataclass
class YCSBResult:
    """Operation counts of one client run."""

    operations: int = 0
    reads: int = 0
    updates: int = 0
    inserts: int = 0
    scans: int = 0
    read_modify_writes: int = 0
    read_misses: int = 0
    per_op_counts: dict[str, int] = field(default_factory=dict)

    def record(self, op: str) -> None:
        """Count one executed operation."""
        self.operations += 1
        self.per_op_counts[op] = self.per_op_counts.get(op, 0) + 1


class YCSBClient:
    """Executes a YCSB workload against an :class:`HBaseClient`."""

    def __init__(
        self,
        client: HBaseClient,
        workload: YCSBWorkload,
        table: str | None = None,
        chooser: KeyChooser | None = None,
        seed: int | random.Random = 0,
        field_count: int = 10,
    ) -> None:
        self.client = client
        self.workload = workload
        self.table = table or workload.table_name
        self._rng = make_rng(seed)
        self.chooser = chooser or HotspotChooser(
            workload.record_count,
            hot_set_fraction=0.4,
            hot_operation_fraction=0.5,
            seed=self._rng,
        )
        self.field_count = field_count
        self.inserted = workload.record_count
        self.result = YCSBResult()

    # ------------------------------------------------------------------ #
    # load phase
    # ------------------------------------------------------------------ #
    def load(self, record_count: int | None = None) -> int:
        """Insert the initial records (the YCSB load phase)."""
        count = record_count if record_count is not None else self.workload.record_count
        value_size = max(1, self.workload.record_size // self.field_count)
        for index in range(count):
            row = format_key(index)
            values = {
                f"cf:field{field}": self._random_value(value_size)
                for field in range(self.field_count)
            }
            self.client.put_row(self.table, row, values)
        self.inserted = count
        self.chooser.extend(count)
        return count

    # ------------------------------------------------------------------ #
    # run phase
    # ------------------------------------------------------------------ #
    def run(self, operations: int) -> YCSBResult:
        """Execute ``operations`` operations following the workload mix."""
        ops, weights = zip(*self.workload.op_mix.items())
        for _ in range(operations):
            op = self._rng.choices(ops, weights=weights)[0]
            self._execute(op)
        return self.result

    def _execute(self, op: str) -> None:
        if op == "read":
            self._do_read()
        elif op == "update":
            self._do_update()
        elif op == "insert":
            self._do_insert()
        elif op == "scan":
            self._do_scan()
        elif op == "read_modify_write":
            self._do_rmw()
        else:  # pragma: no cover - mix validation prevents this
            raise ValueError(f"unknown operation {op!r}")
        self.result.record(op)

    def _do_read(self) -> None:
        row = format_key(self.chooser.next_index())
        values = self.client.get(self.table, row)
        if not values:
            self.result.read_misses += 1
        self.result.reads += 1

    def _do_update(self) -> None:
        row = format_key(self.chooser.next_index())
        field = self._rng.randrange(self.field_count)
        value_size = max(1, self.workload.record_size // self.field_count)
        self.client.put(self.table, row, f"cf:field{field}", self._random_value(value_size))
        self.result.updates += 1

    def _do_insert(self) -> None:
        row = format_key(self.inserted)
        self.inserted += 1
        self.chooser.extend(self.inserted)
        value_size = max(1, self.workload.record_size // self.field_count)
        values = {
            f"cf:field{field}": self._random_value(value_size)
            for field in range(self.field_count)
        }
        self.client.put_row(self.table, row, values)
        self.result.inserts += 1

    def _do_scan(self) -> None:
        start = format_key(self.chooser.next_index())
        self.client.scan(self.table, start_row=start, limit=self.workload.scan_length)
        self.result.scans += 1

    def _do_rmw(self) -> None:
        row = format_key(self.chooser.next_index())
        field = self._rng.randrange(self.field_count)
        value_size = max(1, self.workload.record_size // self.field_count)
        new_value = self._random_value(value_size)
        self.client.read_modify_write(
            self.table, row, f"cf:field{field}", lambda _current: new_value
        )
        self.result.read_modify_writes += 1

    def _random_value(self, size: int) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(min(size, 32))) * max(
            1, size // 32
        )
