"""YCSB: the Yahoo! Cloud Serving Benchmark workload generator.

The paper uses YCSB's six core workloads, re-configured as described in
Section 3.1 (Workload B turned into 100% updates, Workload D into 95%
inserts) so the aggregate read/write ratio is roughly 1.9:1, with keys drawn
from the hotspot distribution (50% of requests to 40% of the key space).
"""

from repro.workloads.ycsb.distributions import (
    HotspotChooser,
    KeyChooser,
    LatestChooser,
    UniformChooser,
    ZipfianChooser,
)
from repro.workloads.ycsb.workloads import (
    CORE_WORKLOADS,
    PAPER_WORKLOADS,
    YCSBWorkload,
    hotspot_partition_weights,
)
from repro.workloads.ycsb.client import YCSBClient, YCSBResult
from repro.workloads.ycsb.scenario import MultiTenantScenario, build_paper_scenario

__all__ = [
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "HotspotChooser",
    "LatestChooser",
    "YCSBWorkload",
    "CORE_WORKLOADS",
    "PAPER_WORKLOADS",
    "hotspot_partition_weights",
    "YCSBClient",
    "YCSBResult",
    "MultiTenantScenario",
    "build_paper_scenario",
]
