"""YCSB core workload definitions, configured as in the paper (Section 3.1).

* Workload A -- 50% read / 50% update (session store).
* Workload B -- 100% update (stocks management; modified from YCSB's 95/5).
* Workload C -- 100% read (user-profile cache).
* Workload D -- 5% read / 95% insert (logging/history; modified from 95/5),
  only 100 000 initial records, 5 client threads, capped at 1 500 ops/s.
* Workload E -- 95% scan / 5% insert (threaded conversations).
* Workload F -- 50% read / 50% read-modify-write (user database).

Every other workload starts with 1 000 000 records, runs 50 client threads
and is uncapped.  All workloads use the hotspot request distribution with
50% of the requests over 40% of the key space, which yields the paper's
per-partition request split of roughly 34/26/20/20 across 4 equally sized
partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default value size of a YCSB record (10 fields of 100 bytes).
RECORD_SIZE_BYTES = 1000

#: Request share of each of the 4 equally sized partitions under the paper's
#: hotspot distribution: one hotspot partition (34%), one intermediate (26%)
#: and two lightly loaded ones (20% each).
HOTSPOT_PARTITION_SHARES = (0.34, 0.26, 0.20, 0.20)


@dataclass(frozen=True)
class YCSBWorkload:
    """One YCSB workload configuration.

    Proportions must sum to 1.  ``partitions`` is the number of equally sized
    data partitions the workload's table is pre-split into.
    """

    name: str
    read_proportion: float = 0.0
    update_proportion: float = 0.0
    insert_proportion: float = 0.0
    scan_proportion: float = 0.0
    read_modify_write_proportion: float = 0.0
    record_count: int = 1_000_000
    partitions: int = 4
    threads: int = 50
    target_ops_per_second: float | None = None
    record_size: int = RECORD_SIZE_BYTES
    scan_length: int = 50
    description: str = ""

    def __post_init__(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.scan_proportion
            + self.read_modify_write_proportion
        )
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"workload {self.name!r} proportions sum to {total}, expected 1")
        if self.record_count <= 0:
            raise ValueError("record count must be positive")
        if self.partitions <= 0:
            raise ValueError("partitions must be positive")
        if self.threads <= 0:
            raise ValueError("threads must be positive")

    @property
    def op_mix(self) -> dict[str, float]:
        """Operation mix keyed by the simulator's operation types."""
        mix = {
            "read": self.read_proportion,
            "update": self.update_proportion,
            "insert": self.insert_proportion,
            "scan": self.scan_proportion,
            "read_modify_write": self.read_modify_write_proportion,
        }
        return {op: share for op, share in mix.items() if share > 0}

    @property
    def table_name(self) -> str:
        """Name of the HBase table backing this workload."""
        return f"usertable_{self.name.lower()}"

    @property
    def nominal_ops_per_second(self) -> float:
        """Rough expected request volume of this workload when unconstrained.

        The manual strategies of Section 3.3 balance partitions using the
        *observed* request counts of each workload; this estimate plays that
        role without requiring a profiling run.  It scales the thread count
        by how expensive the workload's operation mix is (the shared
        :data:`~repro.workloads.tenant.OP_RATE_FACTORS`, so heterogeneous
        tenants size on one scale) and applies the workload's target cap
        when one is configured.
        """
        from repro.workloads.tenant import nominal_rate_estimate

        estimate = nominal_rate_estimate(self.threads, self.op_mix)
        if self.target_ops_per_second is not None:
            estimate = min(estimate, self.target_ops_per_second)
        return estimate

    @property
    def initial_size_bytes(self) -> float:
        """Initial on-disk footprint of the workload's data."""
        return float(self.record_count * self.record_size)

    def partition_ids(self) -> list[str]:
        """Ids of the workload's data partitions."""
        return [f"{self.name}:part-{index}" for index in range(self.partitions)]


def hotspot_partition_weights(partitions: int) -> list[float]:
    """Per-partition request shares under the paper's hotspot distribution.

    For 4 partitions this is exactly the paper's 34/26/20/20 split; for other
    counts the hot 40% of the key space receives 50% of the requests and the
    remainder is spread uniformly.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    if partitions == 1:
        return [1.0]
    if partitions == 4:
        return list(HOTSPOT_PARTITION_SHARES)
    hot_fraction = 0.4
    hot_ops = 0.5
    weights = []
    for index in range(partitions):
        start = index / partitions
        end = (index + 1) / partitions
        hot_overlap = max(0.0, min(end, hot_fraction) - min(start, hot_fraction))
        cold_overlap = (end - start) - hot_overlap
        weight = hot_ops * (hot_overlap / hot_fraction) + (1 - hot_ops) * (
            cold_overlap / (1 - hot_fraction)
        )
        weights.append(weight)
    total = sum(weights)
    return [w / total for w in weights]


WORKLOAD_A = YCSBWorkload(
    name="A",
    read_proportion=0.5,
    update_proportion=0.5,
    description="Session store recording recent actions (read/write mix).",
)

WORKLOAD_B = YCSBWorkload(
    name="B",
    update_proportion=1.0,
    description="Stocks management (write only; modified from YCSB's default).",
)

WORKLOAD_C = YCSBWorkload(
    name="C",
    read_proportion=1.0,
    description="User profile cache built elsewhere (read only).",
)

WORKLOAD_D = YCSBWorkload(
    name="D",
    read_proportion=0.05,
    insert_proportion=0.95,
    record_count=100_000,
    partitions=1,
    threads=5,
    target_ops_per_second=1500.0,
    description="Logging/history: fast growing insert-mostly log.",
)

WORKLOAD_E = YCSBWorkload(
    name="E",
    scan_proportion=0.95,
    insert_proportion=0.05,
    description="Threaded conversations: scans of the posts in a thread.",
)

WORKLOAD_F = YCSBWorkload(
    name="F",
    read_proportion=0.5,
    read_modify_write_proportion=0.5,
    description="User database: records read and modified by the user.",
)

#: The six paper-configured core workloads keyed by letter.
CORE_WORKLOADS: dict[str, YCSBWorkload] = {
    w.name: w for w in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D, WORKLOAD_E, WORKLOAD_F)
}

#: Alias emphasising these are the paper's (modified) settings.
PAPER_WORKLOADS = CORE_WORKLOADS


@dataclass
class WorkloadPartitionSpec:
    """One partition of a workload with its expected request share."""

    partition_id: str
    workload: YCSBWorkload
    weight: float
    size_bytes: float = field(default=0.0)

    def expected_requests(self, total_requests: float) -> dict[str, float]:
        """Expected read/write/scan counts for ``total_requests`` operations."""
        share = total_requests * self.weight
        mix = self.workload.op_mix
        reads = share * (mix.get("read", 0.0) + mix.get("read_modify_write", 0.0))
        writes = share * (
            mix.get("update", 0.0)
            + mix.get("insert", 0.0)
            + mix.get("read_modify_write", 0.0)
        )
        scans = share * mix.get("scan", 0.0)
        return {"reads": reads, "writes": writes, "scans": scans}


def partition_specs(workload: YCSBWorkload) -> list[WorkloadPartitionSpec]:
    """Partition specs (ids, weights, sizes) for one workload."""
    weights = hotspot_partition_weights(workload.partitions)
    per_partition_bytes = workload.initial_size_bytes / workload.partitions
    return [
        WorkloadPartitionSpec(
            partition_id=partition_id,
            workload=workload,
            weight=weight,
            size_bytes=per_partition_bytes,
        )
        for partition_id, weight in zip(workload.partition_ids(), weights)
    ]
