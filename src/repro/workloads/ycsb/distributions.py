"""Key choosers: the request distributions YCSB supports.

The paper draws keys from YCSB's *hotspot* distribution with 50% of the
requests accessing a subset of keys covering 40% of the key space
(Section 3.1); the other distributions are provided for completeness and for
the property-based tests.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.util.rng import make_rng


class KeyChooser(ABC):
    """Chooses record indices in ``[0, record_count)``."""

    def __init__(self, record_count: int, seed: int | random.Random | None = None) -> None:
        if record_count <= 0:
            raise ValueError(f"record count must be positive, got {record_count!r}")
        self.record_count = record_count
        self._rng = make_rng(seed)

    @abstractmethod
    def next_index(self) -> int:
        """Return the next record index."""

    def extend(self, new_record_count: int) -> None:
        """Grow the key space (after inserts)."""
        if new_record_count > self.record_count:
            self.record_count = new_record_count


class UniformChooser(KeyChooser):
    """Every record is equally likely."""

    def next_index(self) -> int:
        return self._rng.randrange(self.record_count)


class HotspotChooser(KeyChooser):
    """A fraction of requests targets a "hot" prefix of the key space.

    With ``hot_operation_fraction=0.5`` and ``hot_set_fraction=0.4``, 50% of
    the requests go to the first 40% of the keys -- the paper's setting.
    """

    def __init__(
        self,
        record_count: int,
        hot_set_fraction: float = 0.4,
        hot_operation_fraction: float = 0.5,
        seed: int | random.Random | None = None,
    ) -> None:
        super().__init__(record_count, seed)
        if not 0.0 < hot_set_fraction <= 1.0:
            raise ValueError("hot set fraction must be in (0, 1]")
        if not 0.0 <= hot_operation_fraction <= 1.0:
            raise ValueError("hot operation fraction must be in [0, 1]")
        self.hot_set_fraction = hot_set_fraction
        self.hot_operation_fraction = hot_operation_fraction

    @property
    def hot_set_size(self) -> int:
        """Number of keys in the hot set (at least 1)."""
        return max(1, int(self.record_count * self.hot_set_fraction))

    def next_index(self) -> int:
        if self._rng.random() < self.hot_operation_fraction:
            return self._rng.randrange(self.hot_set_size)
        cold = self.record_count - self.hot_set_size
        if cold <= 0:
            return self._rng.randrange(self.record_count)
        return self.hot_set_size + self._rng.randrange(cold)


class ZipfianChooser(KeyChooser):
    """Zipfian-distributed access (YCSB's default for workloads A-C, F).

    ``extend`` grows the harmonic sum ``zetan`` incrementally from the old
    record count instead of recomputing it with an O(n) loop, so key-space
    growth under insert-heavy workloads costs O(new keys), not O(n) per
    insert.  ``_zeta_terms_computed`` counts the harmonic terms evaluated
    over the chooser's lifetime (used by the complexity regression test).
    """

    def __init__(
        self,
        record_count: int,
        theta: float = 0.99,
        seed: int | random.Random | None = None,
    ) -> None:
        super().__init__(record_count, seed)
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.theta = theta
        self._zeta_terms_computed = 0
        self._zetan = self._zeta_range(1, record_count)
        self._alpha = 1.0 / (1.0 - theta)
        self._refresh_eta()

    def _zeta_range(self, start: int, stop: int) -> float:
        """Sum of ``1 / i**theta`` for ``i`` in ``[start, stop]``."""
        self._zeta_terms_computed += max(0, stop - start + 1)
        theta = self.theta
        return sum(1.0 / (i ** theta) for i in range(start, stop + 1))

    def _refresh_eta(self) -> None:
        n = self.record_count
        zeta2 = 1.0 if n < 2 else 1.0 + 1.0 / (2 ** self.theta)
        denominator = 1.0 - zeta2 / self._zetan
        if denominator == 0.0:
            # n <= 2: zetan equals zeta2, and every draw resolves in the
            # first two branches of next_index, so eta is never consulted.
            self._eta = 0.0
            return
        self._eta = (1 - (2.0 / n) ** (1 - self.theta)) / denominator

    def extend(self, new_record_count: int) -> None:
        if new_record_count > self.record_count:
            old = self.record_count
            self.record_count = new_record_count
            # Folding each term into the accumulator continues the exact
            # left-to-right sum a full recompute would produce, at O(growth)
            # cost instead of O(n).
            theta = self.theta
            zetan = self._zetan
            for i in range(old + 1, new_record_count + 1):
                zetan += 1.0 / (i ** theta)
            self._zetan = zetan
            self._zeta_terms_computed += new_record_count - old
            self._refresh_eta()

    def next_index(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        index = int(
            self.record_count * (self._eta * u - self._eta + 1.0) ** self._alpha
        )
        return min(index, self.record_count - 1)


class LatestChooser(KeyChooser):
    """Skewed towards the most recently inserted records (workload D style)."""

    def __init__(
        self,
        record_count: int,
        theta: float = 0.99,
        seed: int | random.Random | None = None,
    ) -> None:
        super().__init__(record_count, seed)
        # Share the generator so one seed drives one reproducible stream.
        self._zipf = ZipfianChooser(record_count, theta=theta, seed=self._rng)

    def extend(self, new_record_count: int) -> None:
        super().extend(new_record_count)
        self._zipf.extend(new_record_count)

    def next_index(self) -> int:
        offset = self._zipf.next_index()
        return max(0, self.record_count - 1 - offset)


def partition_request_shares(
    chooser_factory,
    record_count: int,
    partitions: int,
    samples: int = 20000,
    seed: int | random.Random = 7,
) -> list[float]:
    """Share of requests landing on each equal-size partition.

    Used to derive per-partition weights from a key distribution, e.g. the
    34/26/20/20 split the paper reports for 4 partitions under the hotspot
    distribution.

    Uniform and hotspot distributions have closed-form shares, which are
    returned exactly (and ~20000x faster than sampling).  Zipfian/Latest
    (and any other chooser) fall back to drawing ``samples`` keys.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    chooser: KeyChooser = chooser_factory(record_count, seed=seed)
    boundary = math.ceil(record_count / partitions)
    analytic = _analytic_partition_shares(chooser, record_count, partitions, boundary)
    if analytic is not None:
        return analytic
    counts = [0] * partitions
    for _ in range(samples):
        index = chooser.next_index()
        counts[min(index // boundary, partitions - 1)] += 1
    total = sum(counts)
    return [count / total for count in counts]


def _analytic_partition_shares(
    chooser: KeyChooser, record_count: int, partitions: int, boundary: int
) -> list[float] | None:
    """Closed-form shares for uniform/hotspot choosers, else ``None``.

    Partition ``j`` covers indices ``[j * boundary, (j + 1) * boundary)``
    with the last partition absorbing the tail, mirroring the sampling
    loop's ``min(index // boundary, partitions - 1)`` bucketing.  Exact
    types only (subclasses may override ``next_index``).
    """

    def bounds(j: int) -> tuple[int, int]:
        lo = j * boundary
        hi = (j + 1) * boundary if j < partitions - 1 else record_count
        return min(lo, record_count), min(hi, record_count)

    if type(chooser) is UniformChooser:
        return [
            (hi - lo) / record_count for lo, hi in map(bounds, range(partitions))
        ]
    if type(chooser) is HotspotChooser:
        hot = chooser.hot_set_size
        hot_fraction = chooser.hot_operation_fraction
        cold = record_count - hot
        shares: list[float] = []
        for j in range(partitions):
            lo, hi = bounds(j)
            hot_overlap = max(0, min(hi, hot) - lo)
            share = hot_fraction * hot_overlap / hot
            if cold > 0:
                cold_overlap = max(0, hi - max(lo, hot))
                share += (1.0 - hot_fraction) * cold_overlap / cold
            else:
                # No cold keys: non-hot draws are uniform over the whole
                # key space (see HotspotChooser.next_index).
                share += (1.0 - hot_fraction) * (hi - lo) / record_count
            shares.append(share)
        return shares
    return None
