"""The TPC-C implementation of the scenario tenant protocol.

Maps a :class:`TPCCConfig` onto the scenario layer: warehouse-aligned
partitions (equal request weight each -- the standard uniform-warehouse
traffic assumption), the aggregate key-value operation mix of the standard
transaction mix, and tpmC as the native throughput unit (reported via
:func:`~repro.workloads.tpcc.driver.tpmc_from_ops`).

TPC-C's operation mix is *derived* from its transaction mix, not free data,
so ``supports_mix_shift`` is false: a :class:`~repro.scenarios.events.MixShift`
targeting a TPC-C tenant is a spec error, caught at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.workloads.tenant import (
    TenantRegionSpec,
    TenantWorkload,
    nominal_rate_estimate,
)
from repro.workloads.tpcc.driver import (
    TPCC_HOT_DATA_FRACTION,
    TPCC_HOT_REQUEST_FRACTION,
    TPCC_RECORD_SIZE,
    TPCC_SCAN_LENGTH,
    simulator_binding,
    tpmc_from_ops_rate,
)
from repro.workloads.tpcc.schema import TPCCConfig
from repro.workloads.tpcc.transactions import aggregate_operation_mix

__all__ = ["TPCCTenant"]


@dataclass(frozen=True)
class TPCCTenant(TenantWorkload):
    """One TPC-C tenant (the transactional side of a heterogeneous scenario).

    ``name`` doubles as the binding name and the partition-id prefix, so it
    must be unique per simulator.  ``target_ops`` caps the client population
    in simulator key-value ops/s (the unit load-shaping events modulate);
    tpmC is the *reporting* unit, converted via the transaction mix.
    """

    name: str = "tpcc"
    config: TPCCConfig = field(default_factory=TPCCConfig)
    target_ops: float | None = None

    unit_label = "tpmC"
    supports_mix_shift = False

    @property
    def binding_name(self) -> str:
        return self.name

    @property
    def target_ops_per_second(self) -> float | None:
        return self.target_ops

    @property
    def op_mix(self) -> dict[str, float]:
        return aggregate_operation_mix()

    @property
    def nominal_ops_per_second(self) -> float:
        """Expected unconstrained key-value rate of the client population.

        The shared estimator (:func:`~repro.workloads.tenant.nominal_rate_estimate`,
        the one YCSB uses), so manual placement weighs heterogeneous tenants
        consistently; capped by the configured target.
        """
        estimate = nominal_rate_estimate(self.config.clients, self.op_mix)
        if self.target_ops is not None:
            estimate = min(estimate, self.target_ops)
        return estimate

    @property
    def nominal_tpmc(self) -> float:
        """The nominal rate expressed in the tenant's native unit."""
        return tpmc_from_ops_rate(self.nominal_ops_per_second)

    def with_target(self, target_ops: float | None) -> "TPCCTenant":
        if target_ops == self.target_ops:
            return self
        return replace(self, target_ops=target_ops)

    def binding(self):
        return simulator_binding(
            self.config, name=self.name, target_ops_per_second=self.target_ops
        )

    def region_specs(self) -> list[TenantRegionSpec]:
        config = self.config
        partition_ids = config.partition_ids(prefix=self.name)
        per_partition_bytes = config.database_bytes() / config.partitions
        weight = 1.0 / len(partition_ids)
        return [
            TenantRegionSpec(
                region_id=partition_id,
                size_bytes=per_partition_bytes,
                weight=weight,
                record_size=TPCC_RECORD_SIZE,
                scan_length=TPCC_SCAN_LENGTH,
                hot_data_fraction=TPCC_HOT_DATA_FRACTION,
                hot_request_fraction=TPCC_HOT_REQUEST_FRACTION,
            )
            for partition_id in partition_ids
        ]

    def native_rate(self, ops_per_second: float) -> float:
        return tpmc_from_ops_rate(ops_per_second)
