"""TPC-C load phase: populate warehouses into the functional mini-HBase."""

from __future__ import annotations

import random

from repro.hbase.client import HBaseClient
from repro.workloads.tpcc.schema import (
    TPCC_TABLES,
    TPCCConfig,
    customer_key,
    district_key,
    item_key,
    order_key,
    order_line_key,
    stock_key,
    warehouse_key,
)

#: Single column family used by the PyTPCC HBase driver.
FAMILY = "cf"


class TPCCLoader:
    """Creates the TPC-C tables and populates them warehouse by warehouse."""

    def __init__(self, client: HBaseClient, config: TPCCConfig, seed: int = 0) -> None:
        self.client = client
        self.config = config
        self._rng = random.Random(seed)
        self.rows_loaded = 0

    # ------------------------------------------------------------------ #
    # schema
    # ------------------------------------------------------------------ #
    def create_tables(self, master) -> None:
        """Create the 9 TPC-C tables, pre-split by warehouse range."""
        from repro.hbase.table import HTableDescriptor

        split_keys = [
            warehouse_key(w)[:2] + f"{w:05d}"
            for w in range(
                self.config.warehouses_per_node + 1,
                self.config.warehouses + 1,
                self.config.warehouses_per_node,
            )
        ]
        for table in TPCC_TABLES:
            descriptor = HTableDescriptor(name=table, column_families=(FAMILY,))
            master.create_table(descriptor, split_keys=split_keys if table != "item" else None)

    # ------------------------------------------------------------------ #
    # population
    # ------------------------------------------------------------------ #
    def load_items(self) -> int:
        """Populate the ITEM table (shared across warehouses)."""
        for i_id in range(1, self.config.items + 1):
            self.client.put_row(
                "item",
                item_key(i_id),
                {
                    f"{FAMILY}:name": f"item-{i_id}",
                    f"{FAMILY}:price": str(round(self._rng.uniform(1.0, 100.0), 2)),
                    f"{FAMILY}:data": "x" * 32,
                },
            )
            self.rows_loaded += 1
        return self.config.items

    def load_warehouse(self, w_id: int) -> int:
        """Populate one warehouse and everything hanging off it."""
        loaded = 0
        self.client.put_row(
            "warehouse",
            warehouse_key(w_id),
            {f"{FAMILY}:name": f"wh-{w_id}", f"{FAMILY}:ytd": "300000.00"},
        )
        loaded += 1
        for i_id in range(1, self.config.stock_per_warehouse + 1):
            self.client.put_row(
                "stock",
                stock_key(w_id, i_id),
                {f"{FAMILY}:quantity": str(self._rng.randint(10, 100)), f"{FAMILY}:ytd": "0"},
            )
            loaded += 1
        for d_id in range(1, self.config.districts_per_warehouse + 1):
            self.client.put_row(
                "district",
                district_key(w_id, d_id),
                {f"{FAMILY}:next_o_id": "1", f"{FAMILY}:ytd": "30000.00"},
            )
            loaded += 1
            for c_id in range(1, self.config.customers_per_district + 1):
                self.client.put_row(
                    "customer",
                    customer_key(w_id, d_id, c_id),
                    {
                        f"{FAMILY}:balance": "-10.00",
                        f"{FAMILY}:ytd_payment": "10.00",
                        f"{FAMILY}:last": f"name{c_id % 100}",
                    },
                )
                loaded += 1
                o_id = c_id
                self.client.put_row(
                    "orders",
                    order_key(w_id, d_id, o_id),
                    {f"{FAMILY}:c_id": str(c_id), f"{FAMILY}:carrier_id": "0"},
                )
                loaded += 1
                for line in range(1, self._rng.randint(5, 10) + 1):
                    self.client.put_row(
                        "orderline",
                        order_line_key(w_id, d_id, o_id, line),
                        {
                            f"{FAMILY}:i_id": str(self._rng.randint(1, self.config.items)),
                            f"{FAMILY}:amount": "0.00",
                        },
                    )
                    loaded += 1
        self.rows_loaded += loaded
        return loaded

    def load(self) -> int:
        """Populate items and every warehouse; returns total rows loaded."""
        self.load_items()
        for w_id in range(1, self.config.warehouses + 1):
            self.load_warehouse(w_id)
        return self.rows_loaded
