"""TPC-C workload (PyTPCC-style HBase port).

The paper uses PyTPCC, an HBase implementation of the TPC-C OLTP benchmark,
to show MeT copes with a substantially different, write-intensive workload
without any tuning (Section 6.3): 9 tables, 5 transaction types, a default
mix of roughly 8% read-only and 92% update transactions, results measured in
new-order transactions per minute (tpmC).

Two execution modes are provided:

* a functional driver that runs real transactions against the mini-HBase
  substrate (examples and integration tests);
* an analytical binding that maps the transaction mix onto per-operation
  rates for the cluster simulator (the Table 2 experiment).
"""

from repro.workloads.tpcc.driver import (
    TPCCDriver,
    TPCCResult,
    ops_rate_from_tpmc,
    simulator_binding,
    tpmc_from_ops,
    tpmc_from_ops_rate,
)
from repro.workloads.tpcc.loader import TPCCLoader
from repro.workloads.tpcc.schema import TPCC_TABLES, TPCCConfig
from repro.workloads.tpcc.tenant import TPCCTenant
from repro.workloads.tpcc.transactions import TRANSACTION_MIX, TransactionProfile

__all__ = [
    "TPCCDriver",
    "TPCCResult",
    "TPCCLoader",
    "TPCCConfig",
    "TPCCTenant",
    "TPCC_TABLES",
    "TRANSACTION_MIX",
    "TransactionProfile",
    "ops_rate_from_tpmc",
    "simulator_binding",
    "tpmc_from_ops",
    "tpmc_from_ops_rate",
]
