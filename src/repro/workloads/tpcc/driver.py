"""The TPC-C driver: run transactions and report tpmC.

Like PyTPCC, the driver picks transactions according to the standard mix and
reports throughput in new-order transactions per minute (tpmC).  The
``simulator_binding`` helper maps the same transaction mix onto the
analytical simulator: one closed-loop client population whose operation mix
is the aggregate key-value footprint of the transactions, addressed to the
warehouse-aligned partitions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.hbase.client import HBaseClient
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.workload import WorkloadBinding
from repro.workloads.tpcc.schema import TPCCConfig
from repro.workloads.tpcc.transactions import (
    TRANSACTION_MIX,
    TransactionExecutor,
    aggregate_operation_mix,
    operations_per_transaction,
)

#: Average row size used by the analytical binding (order lines dominate).
TPCC_RECORD_SIZE = 256
#: Rows touched by the scan of an Order-Status / Stock-Level transaction.
TPCC_SCAN_LENGTH = 20
#: TPC-C concentrates reads on a small working set of recently written rows
#: (open orders, popular stock); these describe that skew to the cost model.
TPCC_HOT_DATA_FRACTION = 0.05
TPCC_HOT_REQUEST_FRACTION = 0.95


@dataclass
class TPCCResult:
    """Outcome of a functional TPC-C run."""

    transactions: int = 0
    per_type: dict[str, int] = field(default_factory=dict)
    new_orders: int = 0
    duration_seconds: float = 0.0

    @property
    def tpmc(self) -> float:
        """New-order transactions per minute."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.new_orders * 60.0 / self.duration_seconds


class TPCCDriver:
    """Runs TPC-C transactions against the functional mini-HBase."""

    def __init__(self, client: HBaseClient, config: TPCCConfig, seed: int = 0) -> None:
        self.client = client
        self.config = config
        self.executor = TransactionExecutor(client, config, seed=seed)
        self._rng = random.Random(seed)
        self.result = TPCCResult()

    def run(self, transactions: int, assumed_tx_seconds: float = 0.02) -> TPCCResult:
        """Execute ``transactions`` transactions following the standard mix.

        ``assumed_tx_seconds`` converts the (instantaneous, in-memory) run
        into a nominal duration so tpmC can be reported.
        """
        names = list(TRANSACTION_MIX)
        weights = [TRANSACTION_MIX[name].weight for name in names]
        for _ in range(transactions):
            name = self._rng.choices(names, weights=weights)[0]
            self.executor.execute(name)
            self.result.transactions += 1
            self.result.per_type[name] = self.result.per_type.get(name, 0) + 1
            if name == "new_order":
                self.result.new_orders += 1
        self.result.duration_seconds += transactions * assumed_tx_seconds
        return self.result


# --------------------------------------------------------------------------- #
# analytical simulator binding
# --------------------------------------------------------------------------- #
def tpmc_from_ops_rate(ops_per_second: float) -> float:
    """Convert a key-value operation rate into tpmC.

    tpmC counts new-order transactions per minute; the transaction mix and
    the per-transaction operation footprints fix the conversion factor.
    """
    tx_per_second = ops_per_second / operations_per_transaction()
    new_order_share = TRANSACTION_MIX["new_order"].weight
    return tx_per_second * new_order_share * 60.0


#: Alias matching the "tpmC from ops" phrasing used around the repo.
tpmc_from_ops = tpmc_from_ops_rate


def ops_rate_from_tpmc(tpmc: float) -> float:
    """Convert a tpmC figure back into the key-value operation rate.

    Exact inverse of :func:`tpmc_from_ops_rate`; the SLA layer uses it to
    judge simulator ops/s series against throughput floors declared in a
    TPC-C tenant's native unit.
    """
    new_order_share = TRANSACTION_MIX["new_order"].weight
    tx_per_second = tpmc / (new_order_share * 60.0)
    return tx_per_second * operations_per_transaction()


def simulator_binding(
    config: TPCCConfig | None = None,
    name: str = "tpcc",
    target_ops_per_second: float | None = None,
) -> WorkloadBinding:
    """Closed-loop client binding for the analytical TPC-C experiment.

    ``name`` names the binding *and* prefixes the warehouse-aligned
    partition ids, so multiple TPC-C tenants can share a simulator;
    ``target_ops_per_second`` optionally caps the client population (in
    simulator key-value ops/s, as with YCSB bindings).
    """
    config = config or TPCCConfig()
    partition_ids = config.partition_ids(prefix=name)
    weight = 1.0 / len(partition_ids)
    return WorkloadBinding(
        name=name,
        threads=config.clients,
        op_mix=aggregate_operation_mix(),
        region_weights={partition_id: weight for partition_id in partition_ids},
        target_ops_per_second=target_ops_per_second,
        record_size=TPCC_RECORD_SIZE,
        scan_length=TPCC_SCAN_LENGTH,
    )


def build_tpcc_scenario(
    simulator: ClusterSimulator,
    config: TPCCConfig | None = None,
    initial_node: str | None = None,
) -> tuple[TPCCConfig, WorkloadBinding]:
    """Create the TPC-C partitions and client binding inside ``simulator``."""
    config = config or TPCCConfig()
    per_partition_bytes = config.database_bytes() / config.partitions
    for partition_id in config.partition_ids():
        simulator.add_region(
            region_id=partition_id,
            workload="tpcc",
            size_bytes=per_partition_bytes,
            node=initial_node,
            record_size=TPCC_RECORD_SIZE,
            scan_length=TPCC_SCAN_LENGTH,
            hot_data_fraction=TPCC_HOT_DATA_FRACTION,
            hot_request_fraction=TPCC_HOT_REQUEST_FRACTION,
        )
    binding = simulator_binding(config)
    simulator.attach_workload(binding)
    return config, binding
