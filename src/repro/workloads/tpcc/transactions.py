"""The five TPC-C transaction types and their operation footprints.

The default TPC-C traffic is a mixture of roughly 8% read-only transactions
(Order-Status and Stock-Level) and 92% update transactions (New-Order,
Payment and Delivery), making it a write-intensive benchmark (Section 6.3).

Two views of each transaction are provided:

* :class:`TransactionProfile` -- the *operation footprint* (how many
  key-value reads, writes and scans one execution issues against the HBase
  driver); used by the analytical simulator binding.  The footprints follow
  the PyTPCC HBase driver, where item/stock lookups are issued as batched
  multi-gets, so reads are counted per batch rather than per row.
* The ``execute_*`` functions -- real implementations against the functional
  mini-HBase client, offering HBase's record-level atomicity only (as the
  paper notes for the PyTPCC port).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.hbase.client import HBaseClient
from repro.workloads.tpcc.schema import (
    TPCCConfig,
    customer_key,
    district_key,
    history_key,
    item_key,
    new_order_key,
    order_key,
    order_line_key,
    stock_key,
    warehouse_key,
)

FAMILY = "cf"


@dataclass(frozen=True)
class TransactionProfile:
    """Mix weight and key-value operation footprint of one transaction type."""

    name: str
    weight: float
    reads: float
    writes: float
    scans: float
    read_only: bool = False

    @property
    def operations(self) -> float:
        """Total key-value operations per execution."""
        return self.reads + self.writes + self.scans


#: Standard TPC-C transaction mix with the PyTPCC/HBase operation footprints.
TRANSACTION_MIX: dict[str, TransactionProfile] = {
    "new_order": TransactionProfile(
        name="new_order", weight=0.45, reads=12.0, writes=23.0, scans=0.0
    ),
    "payment": TransactionProfile(
        name="payment", weight=0.43, reads=3.0, writes=4.0, scans=0.0
    ),
    "order_status": TransactionProfile(
        name="order_status", weight=0.04, reads=2.0, writes=0.0, scans=1.0, read_only=True
    ),
    "delivery": TransactionProfile(
        name="delivery", weight=0.04, reads=11.0, writes=21.0, scans=0.0
    ),
    "stock_level": TransactionProfile(
        name="stock_level", weight=0.04, reads=1.0, writes=0.0, scans=1.0, read_only=True
    ),
}


def aggregate_operation_mix() -> dict[str, float]:
    """Key-value operation mix implied by the transaction mix.

    Returns fractions over the simulator's operation types (reads map to
    ``read``, writes to ``update``, scans to ``scan``).
    """
    reads = sum(p.weight * p.reads for p in TRANSACTION_MIX.values())
    writes = sum(p.weight * p.writes for p in TRANSACTION_MIX.values())
    scans = sum(p.weight * p.scans for p in TRANSACTION_MIX.values())
    total = reads + writes + scans
    return {"read": reads / total, "update": writes / total, "scan": scans / total}


def operations_per_transaction() -> float:
    """Average key-value operations issued per transaction."""
    return sum(p.weight * p.operations for p in TRANSACTION_MIX.values())


def read_only_fraction() -> float:
    """Fraction of read-only transactions in the mix (≈ 8%)."""
    return sum(p.weight for p in TRANSACTION_MIX.values() if p.read_only)


# --------------------------------------------------------------------------- #
# functional transaction implementations
# --------------------------------------------------------------------------- #
class TransactionExecutor:
    """Executes real TPC-C transactions against the mini-HBase client."""

    def __init__(self, client: HBaseClient, config: TPCCConfig, seed: int = 0) -> None:
        self.client = client
        self.config = config
        self._rng = random.Random(seed)
        self._history_sequence = 0

    # -- helpers -------------------------------------------------------- #
    def _random_warehouse(self) -> int:
        return self._rng.randint(1, self.config.warehouses)

    def _random_district(self) -> int:
        return self._rng.randint(1, self.config.districts_per_warehouse)

    def _random_customer(self) -> int:
        return self._rng.randint(1, self.config.customers_per_district)

    def _random_item(self) -> int:
        return self._rng.randint(1, self.config.items)

    def _next_order_id(self, w_id: int, d_id: int) -> int:
        row = district_key(w_id, d_id)
        current = self.client.get("district", row).get(f"{FAMILY}:next_o_id", b"1")
        next_o_id = int(current.decode() or "1")
        self.client.put("district", row, f"{FAMILY}:next_o_id", str(next_o_id + 1))
        return next_o_id

    # -- the five transactions ------------------------------------------ #
    def new_order(self) -> dict[str, int]:
        """NEW-ORDER: place an order with 5-15 order lines."""
        w_id = self._random_warehouse()
        d_id = self._random_district()
        c_id = self._random_customer()
        line_count = self._rng.randint(5, 15)
        self.client.get("warehouse", warehouse_key(w_id))
        self.client.get("customer", customer_key(w_id, d_id, c_id))
        o_id = self._next_order_id(w_id, d_id)
        self.client.put_row(
            "orders",
            order_key(w_id, d_id, o_id),
            {f"{FAMILY}:c_id": str(c_id), f"{FAMILY}:carrier_id": "0"},
        )
        self.client.put("neworder", new_order_key(w_id, d_id, o_id), f"{FAMILY}:exists", "1")
        for line in range(1, line_count + 1):
            i_id = self._random_item()
            item = self.client.get("item", item_key(i_id))
            price = float(item.get(f"{FAMILY}:price", b"1.0").decode() or 1.0)
            stock_row = stock_key(w_id, i_id)
            stock = self.client.get("stock", stock_row)
            quantity = int(stock.get(f"{FAMILY}:quantity", b"50").decode() or 50)
            new_quantity = quantity - 1 if quantity > 10 else quantity + 91
            self.client.put("stock", stock_row, f"{FAMILY}:quantity", str(new_quantity))
            self.client.put_row(
                "orderline",
                order_line_key(w_id, d_id, o_id, line),
                {f"{FAMILY}:i_id": str(i_id), f"{FAMILY}:amount": f"{price:.2f}"},
            )
        return {"w_id": w_id, "d_id": d_id, "o_id": o_id, "lines": line_count}

    def payment(self) -> dict[str, int]:
        """PAYMENT: update warehouse, district and customer balances."""
        w_id = self._random_warehouse()
        d_id = self._random_district()
        c_id = self._random_customer()
        amount = round(self._rng.uniform(1.0, 5000.0), 2)
        self.client.read_modify_write(
            "warehouse", warehouse_key(w_id), f"{FAMILY}:ytd",
            lambda v: f"{float(v.decode() or 0) + amount:.2f}",
        )
        self.client.read_modify_write(
            "district", district_key(w_id, d_id), f"{FAMILY}:ytd",
            lambda v: f"{float(v.decode() or 0) + amount:.2f}",
        )
        self.client.read_modify_write(
            "customer", customer_key(w_id, d_id, c_id), f"{FAMILY}:balance",
            lambda v: f"{float(v.decode() or 0) - amount:.2f}",
        )
        self._history_sequence += 1
        self.client.put_row(
            "history",
            history_key(w_id, d_id, c_id, self._history_sequence),
            {f"{FAMILY}:amount": f"{amount:.2f}"},
        )
        return {"w_id": w_id, "d_id": d_id, "c_id": c_id}

    def order_status(self) -> dict[str, int]:
        """ORDER-STATUS: read a customer's most recent order and its lines."""
        w_id = self._random_warehouse()
        d_id = self._random_district()
        c_id = self._random_customer()
        self.client.get("customer", customer_key(w_id, d_id, c_id))
        prefix = order_line_key(w_id, d_id, c_id, 1)[:-3]
        lines = self.client.scan("orderline", start_row=prefix, limit=15)
        return {"w_id": w_id, "d_id": d_id, "c_id": c_id, "lines": len(lines)}

    def delivery(self) -> dict[str, int]:
        """DELIVERY: deliver the oldest new order of every district."""
        w_id = self._random_warehouse()
        delivered = 0
        for d_id in range(1, self.config.districts_per_warehouse + 1):
            pending = self.client.scan(
                "neworder", start_row=new_order_key(w_id, d_id, 0)[:-8], limit=1
            )
            if not pending:
                continue
            row, _ = pending[0]
            self.client.delete("neworder", row)
            o_id = int(row.rsplit("#", 1)[-1])
            self.client.put(
                "orders", order_key(w_id, d_id, o_id), f"{FAMILY}:carrier_id",
                str(self._rng.randint(1, 10)),
            )
            delivered += 1
        return {"w_id": w_id, "delivered": delivered}

    def stock_level(self) -> dict[str, int]:
        """STOCK-LEVEL: count recently sold items below a stock threshold."""
        w_id = self._random_warehouse()
        d_id = self._random_district()
        threshold = self._rng.randint(10, 20)
        prefix = order_line_key(w_id, d_id, 0, 1)[:12]
        lines = self.client.scan("orderline", start_row=prefix, limit=20)
        low = 0
        for _, columns in lines[:5]:
            i_id = int(columns.get(f"{FAMILY}:i_id", b"1").decode() or 1)
            stock = self.client.get("stock", stock_key(w_id, i_id))
            quantity = int(stock.get(f"{FAMILY}:quantity", b"50").decode() or 50)
            if quantity < threshold:
                low += 1
        return {"w_id": w_id, "d_id": d_id, "low_stock": low}

    def execute(self, name: str) -> dict[str, int]:
        """Execute one transaction by name."""
        handler = {
            "new_order": self.new_order,
            "payment": self.payment,
            "order_status": self.order_status,
            "delivery": self.delivery,
            "stock_level": self.stock_level,
        }.get(name)
        if handler is None:
            raise ValueError(f"unknown transaction {name!r}")
        return handler()
