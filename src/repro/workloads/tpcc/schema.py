"""TPC-C schema: the 9 tables and their HBase key encodings.

TPC-C models a wholesale supplier with geographically distributed sales
districts and associated warehouses.  Tables are horizontally partitioned by
warehouse (the usual setting for running TPC-C on distributed databases,
following Stonebraker et al.), so a partition holds every table's rows for a
contiguous range of warehouse ids.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The nine TPC-C tables.
TPCC_TABLES = (
    "warehouse",
    "district",
    "customer",
    "history",
    "neworder",
    "orders",
    "orderline",
    "item",
    "stock",
)

#: TPC-C cardinalities per warehouse (scaled-down values are configurable).
DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3000
ITEMS = 100_000
STOCK_PER_WAREHOUSE = 100_000
INITIAL_ORDERS_PER_DISTRICT = 3000

#: Physical-to-logical storage blow-up: HBase stores the full row key, column
#: name and timestamp with every cell, plus store-file and WAL overhead, so a
#: TPC-C database occupies several times its logical size (the paper reports
#: ~15 GB for 30 warehouses).
STORAGE_OVERHEAD = 6.5

#: Approximate logical bytes per row.
ROW_BYTES = {
    "warehouse": 100,
    "district": 110,
    "customer": 680,
    "history": 60,
    "neworder": 10,
    "orders": 30,
    "orderline": 60,
    "item": 90,
    "stock": 320,
}


@dataclass(frozen=True)
class TPCCConfig:
    """Scale parameters of a TPC-C database.

    The defaults mirror the paper: 30 warehouses (~15 GB), 5 warehouses per
    RegionServer and 50 clients per RegionServer (300 clients total).
    ``scale_factor`` shrinks per-warehouse cardinalities for the functional
    driver used in tests and examples.
    """

    warehouses: int = 30
    warehouses_per_node: int = 5
    clients: int = 300
    scale_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.warehouses <= 0:
            raise ValueError("warehouses must be positive")
        if self.warehouses_per_node <= 0:
            raise ValueError("warehouses per node must be positive")
        if self.clients <= 0:
            raise ValueError("clients must be positive")
        if not 0 < self.scale_factor <= 1.0:
            raise ValueError("scale factor must be in (0, 1]")

    @property
    def partitions(self) -> int:
        """Number of warehouse-aligned data partitions."""
        return -(-self.warehouses // self.warehouses_per_node)

    @property
    def districts_per_warehouse(self) -> int:
        """Scaled districts per warehouse (at least 1)."""
        return max(1, int(DISTRICTS_PER_WAREHOUSE * self.scale_factor))

    @property
    def customers_per_district(self) -> int:
        """Scaled customers per district (at least 1)."""
        return max(1, int(CUSTOMERS_PER_DISTRICT * self.scale_factor))

    @property
    def items(self) -> int:
        """Scaled item count (at least 1)."""
        return max(1, int(ITEMS * self.scale_factor))

    @property
    def stock_per_warehouse(self) -> int:
        """Scaled stock rows per warehouse (at least 1)."""
        return max(1, int(STOCK_PER_WAREHOUSE * self.scale_factor))

    def warehouse_bytes(self) -> float:
        """Approximate on-disk footprint of one warehouse."""
        per_warehouse = (
            ROW_BYTES["warehouse"]
            + self.districts_per_warehouse * ROW_BYTES["district"]
            + self.districts_per_warehouse
            * self.customers_per_district
            * (ROW_BYTES["customer"] + ROW_BYTES["history"])
            + self.districts_per_warehouse
            * self.customers_per_district
            * (ROW_BYTES["orders"] + ROW_BYTES["neworder"] + 10 * ROW_BYTES["orderline"])
            + self.stock_per_warehouse * ROW_BYTES["stock"]
        )
        return float(per_warehouse) * STORAGE_OVERHEAD

    def database_bytes(self) -> float:
        """Approximate total database size (items table counted once)."""
        return (
            self.warehouses * self.warehouse_bytes()
            + self.items * ROW_BYTES["item"] * STORAGE_OVERHEAD
        )

    def partition_ids(self, prefix: str = "tpcc") -> list[str]:
        """Ids of the warehouse-aligned partitions.

        ``prefix`` namespaces the ids per tenant so several TPC-C tenants
        (or a TPC-C tenant next to YCSB ones) can coexist in one simulator.
        """
        return [f"{prefix}:wpart-{index}" for index in range(self.partitions)]


# --------------------------------------------------------------------------- #
# key encodings (functional driver)
# --------------------------------------------------------------------------- #
def warehouse_key(w_id: int) -> str:
    """Row key of a WAREHOUSE row."""
    return f"W#{w_id:05d}"


def district_key(w_id: int, d_id: int) -> str:
    """Row key of a DISTRICT row."""
    return f"D#{w_id:05d}#{d_id:02d}"


def customer_key(w_id: int, d_id: int, c_id: int) -> str:
    """Row key of a CUSTOMER row."""
    return f"C#{w_id:05d}#{d_id:02d}#{c_id:05d}"


def item_key(i_id: int) -> str:
    """Row key of an ITEM row."""
    return f"I#{i_id:06d}"


def stock_key(w_id: int, i_id: int) -> str:
    """Row key of a STOCK row."""
    return f"S#{w_id:05d}#{i_id:06d}"


def order_key(w_id: int, d_id: int, o_id: int) -> str:
    """Row key of an ORDERS row."""
    return f"O#{w_id:05d}#{d_id:02d}#{o_id:07d}"


def new_order_key(w_id: int, d_id: int, o_id: int) -> str:
    """Row key of a NEW-ORDER row."""
    return f"NO#{w_id:05d}#{d_id:02d}#{o_id:07d}"


def order_line_key(w_id: int, d_id: int, o_id: int, number: int) -> str:
    """Row key of an ORDER-LINE row."""
    return f"OL#{w_id:05d}#{d_id:02d}#{o_id:07d}#{number:02d}"


def history_key(w_id: int, d_id: int, c_id: int, sequence: int) -> str:
    """Row key of a HISTORY row."""
    return f"H#{w_id:05d}#{d_id:02d}#{c_id:05d}#{sequence:07d}"
