"""The workload-agnostic tenant protocol the scenario layer speaks.

The scenario engine used to manipulate :class:`~repro.workloads.ycsb.workloads.YCSBWorkload`
objects directly, which hard-wired every tenant to YCSB semantics.  A
:class:`TenantWorkload` abstracts what the engine actually needs from a
tenant -- a name, a simulator binding factory, partition/region specs, the
nominal/target rate semantics the load-shaping events modulate, and the
tenant's native throughput unit -- so heterogeneous tenants (YCSB key-value
tenants next to TPC-C transactional tenants) compose in one scenario, the
heterogeneous-workload case the paper's data-placement argument is about.

Implementations:

* :class:`~repro.workloads.ycsb.tenant.YCSBTenant` adapts a YCSB workload
  unchanged (``ops/s`` unit, mix shifts allowed);
* :class:`~repro.workloads.tpcc.tenant.TPCCTenant` maps a TPC-C scale
  configuration onto warehouse-aligned partitions and reports in tpmC; its
  operation mix is transaction-derived, so mix shifts are rejected at
  scenario compile time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.elasticity.strategies import PartitionWorkload
from repro.simulation.workload import WorkloadBinding

__all__ = [
    "NOMINAL_OPS_PER_THREAD",
    "OP_RATE_FACTORS",
    "TenantRegionSpec",
    "TenantWorkload",
    "as_tenant",
    "nominal_rate_estimate",
]

#: Nominal ops/s one client thread sustains on a pure-read mix; the base of
#: every tenant's nominal-rate estimate.
NOMINAL_OPS_PER_THREAD = 320.0

#: Relative service rate of each operation type (scans are an order of
#: magnitude more expensive than point operations).  One copy shared by the
#: YCSB and TPC-C estimators so heterogeneous tenants are sized on one
#: scale -- manual placement weighs their partitions against each other.
OP_RATE_FACTORS = {
    "read": 1.0,
    "update": 0.9,
    "insert": 0.9,
    "scan": 0.12,
    "read_modify_write": 0.5,
}


def nominal_rate_estimate(threads: int, op_mix: dict[str, float]) -> float:
    """Expected unconstrained ops/s of ``threads`` clients issuing ``op_mix``."""
    factor = sum(share * OP_RATE_FACTORS[op] for op, share in op_mix.items())
    return threads * NOMINAL_OPS_PER_THREAD * factor


@dataclass(frozen=True)
class TenantRegionSpec:
    """One data partition of a tenant, as the simulator needs to create it.

    ``weight`` is the fraction of the tenant's requests addressed to the
    partition (weights sum to 1 across a tenant); the hot-set fractions are
    optional skew hints for the cost model (``None`` keeps the simulator's
    defaults).
    """

    region_id: str
    size_bytes: float
    weight: float
    record_size: int
    scan_length: int
    hot_data_fraction: float | None = None
    hot_request_fraction: float | None = None

    def create_in(self, simulator, workload: str, node: str | None = None):
        """Create this partition in ``simulator`` under the tenant's label.

        The single bridge from a region spec to ``simulator.add_region``,
        shared by run-start materialisation and mid-run arrivals so the two
        paths cannot drift apart; ``None`` hot-set fractions keep the
        simulator's defaults.
        """
        kwargs = {}
        if self.hot_data_fraction is not None:
            kwargs["hot_data_fraction"] = self.hot_data_fraction
        if self.hot_request_fraction is not None:
            kwargs["hot_request_fraction"] = self.hot_request_fraction
        return simulator.add_region(
            region_id=self.region_id,
            workload=workload,
            size_bytes=self.size_bytes,
            node=node,
            record_size=self.record_size,
            scan_length=self.scan_length,
            **kwargs,
        )


class TenantWorkload:
    """What the scenario layer needs to know about one tenant.

    Implementations are frozen dataclasses (scenario specs stay pure data).
    The contract:

    * ``name`` -- the tenant name scenario events reference (``"A"``,
      ``"tpcc"``);
    * ``binding_name`` -- the simulator client-binding name (also the label
      of the tenant's regions and its per-tenant metric series);
    * ``unit_label`` -- the tenant's native throughput unit (``"ops/s"``
      for key-value tenants, ``"tpmC"`` for TPC-C); SLO throughput floors
      may be declared in it (see :mod:`repro.sla.units`);
    * ``target_ops_per_second`` / ``nominal_ops_per_second`` -- the baseline
      the load-shaping events modulate: an explicit cap when set, else the
      nominal estimate;
    * ``supports_mix_shift`` -- whether the tenant's operation mix is free
      data (:class:`~repro.scenarios.events.MixShift` refuses tenants whose
      mix is derived, like TPC-C's transaction mix).
    """

    #: Native throughput unit of the tenant (overridden per implementation).
    unit_label: str = "ops/s"
    #: Whether MixShift events may target this tenant.
    supports_mix_shift: bool = True

    @property
    def name(self) -> str:
        raise NotImplementedError

    @property
    def binding_name(self) -> str:
        """Simulator binding / region-label name of this tenant."""
        raise NotImplementedError

    @property
    def target_ops_per_second(self) -> float | None:
        """Baseline throughput cap in simulator ops/s (``None`` = uncapped)."""
        raise NotImplementedError

    @property
    def nominal_ops_per_second(self) -> float:
        """Expected unconstrained request volume (the modulation base when
        the tenant has no explicit cap)."""
        raise NotImplementedError

    @property
    def op_mix(self) -> dict[str, float]:
        """Operation mix keyed by the simulator's operation types."""
        raise NotImplementedError

    def with_target(self, target_ops: float | None) -> "TenantWorkload":
        """A copy of this tenant with its baseline target replaced."""
        raise NotImplementedError

    def binding(self) -> WorkloadBinding:
        """Build the closed-loop client binding for this tenant."""
        raise NotImplementedError

    def region_specs(self) -> list[TenantRegionSpec]:
        """The tenant's data partitions, ready for ``simulator.add_region``."""
        raise NotImplementedError

    def partition_workloads(self, window_seconds: float = 60.0) -> list[PartitionWorkload]:
        """Expected per-partition request mixes over ``window_seconds``.

        The manual placement strategies (and MeT's initial layout) balance
        partitions by expected request counts; these derive from the
        tenant's nominal rate the same way a profiling run would.
        """
        specs = self.region_specs()
        total = self.nominal_ops_per_second * window_seconds
        mix = self.op_mix
        reads = mix.get("read", 0.0) + mix.get("read_modify_write", 0.0)
        writes = (
            mix.get("update", 0.0)
            + mix.get("insert", 0.0)
            + mix.get("read_modify_write", 0.0)
        )
        scans = mix.get("scan", 0.0)
        return [
            PartitionWorkload(
                partition_id=spec.region_id,
                reads=total * spec.weight * reads,
                writes=total * spec.weight * writes,
                scans=total * spec.weight * scans,
                size_bytes=spec.size_bytes,
            )
            for spec in specs
        ]

    def native_rate(self, ops_per_second: float) -> float:
        """Convert a simulator ops/s rate into the tenant's native unit."""
        return ops_per_second


def as_tenant(workload) -> TenantWorkload:
    """Coerce a workload object into a :class:`TenantWorkload`.

    Accepts an implementation unchanged; wraps a bare
    :class:`~repro.workloads.ycsb.workloads.YCSBWorkload` in its adapter so
    every existing spec (``TenantSpec(SMALL_A, ...)``) keeps working.
    """
    if isinstance(workload, TenantWorkload):
        return workload
    # Imported lazily: the YCSB adapter imports this module for the base class.
    from repro.workloads.ycsb.tenant import YCSBTenant
    from repro.workloads.ycsb.workloads import YCSBWorkload

    if isinstance(workload, YCSBWorkload):
        return YCSBTenant(workload)
    raise TypeError(
        f"cannot use {type(workload).__name__!r} as a scenario tenant; "
        "expected a TenantWorkload implementation or a YCSBWorkload"
    )
