"""Virtual machine instances."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.iaas.flavors import Flavor


class VMState(enum.Enum):
    """Lifecycle states of a virtual machine."""

    BUILDING = "building"
    ACTIVE = "active"
    SHUTOFF = "shutoff"
    ERROR = "error"
    DELETED = "deleted"


@dataclass
class VirtualMachine:
    """One instance managed by the IaaS provider."""

    instance_id: str
    name: str
    flavor: Flavor
    state: VMState = VMState.BUILDING
    launched_at: float = 0.0
    active_at: float = 0.0
    terminated_at: float | None = None

    @property
    def is_active(self) -> bool:
        """Whether the instance finished booting and is running."""
        return self.state == VMState.ACTIVE

    def uptime(self, now: float) -> float:
        """Seconds the instance has been active (0 while building)."""
        if self.state == VMState.BUILDING:
            return 0.0
        end = self.terminated_at if self.terminated_at is not None else now
        return max(0.0, end - self.active_at)
