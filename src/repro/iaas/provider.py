"""The OpenStack-like provider: launch, poll and terminate instances."""

from __future__ import annotations

import itertools

from repro.iaas.flavors import FLAVORS, Flavor
from repro.iaas.vm import VirtualMachine, VMState
from repro.simulation.clock import SimulationClock


class IaaSError(RuntimeError):
    """Raised on invalid instance operations."""


class QuotaExceededError(IaaSError):
    """Raised when launching would exceed the tenant's instance quota."""


class OpenStackProvider:
    """A minimal compute API: boot, describe, and terminate instances.

    Instances take ``boot_seconds`` of simulated time to become ACTIVE; the
    actuator polls :meth:`refresh` (or the simulator drives it) to observe
    the transition, mirroring how MeT waits for OpenStack VMs before starting
    the database process on them.
    """

    def __init__(
        self,
        clock: SimulationClock,
        quota: int = 32,
        boot_seconds: float = 90.0,
    ) -> None:
        self.clock = clock
        self.quota = quota
        self.boot_seconds = boot_seconds
        self.instances: dict[str, VirtualMachine] = {}
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # compute API
    # ------------------------------------------------------------------ #
    def launch(self, name: str, flavor: Flavor | str = "m1.medium") -> VirtualMachine:
        """Boot a new instance of the given flavor."""
        if isinstance(flavor, str):
            try:
                flavor = FLAVORS[flavor]
            except KeyError:
                raise IaaSError(f"unknown flavor {flavor!r}") from None
        if len(self.active_or_building()) >= self.quota:
            raise QuotaExceededError(
                f"quota of {self.quota} instances reached; terminate one first"
            )
        instance = VirtualMachine(
            instance_id=f"vm-{next(self._counter)}",
            name=name,
            flavor=flavor,
            launched_at=self.clock.now,
            active_at=self.clock.now + self.boot_seconds,
        )
        self.instances[instance.instance_id] = instance
        return instance

    def terminate(self, instance_id: str) -> None:
        """Terminate an instance."""
        instance = self._instance(instance_id)
        if instance.state == VMState.DELETED:
            return
        instance.state = VMState.DELETED
        instance.terminated_at = self.clock.now

    def inject_fault(self, instance_id: str) -> None:
        """Kill an instance ungracefully (hypervisor/host failure).

        The instance transitions to ERROR instead of DELETED -- the state an
        OpenStack instance shows after a host crash -- and stops accruing
        uptime.  It no longer counts against the quota, but stays in the
        inventory so experiments can report what failed and when.
        """
        instance = self._instance(instance_id)
        if instance.state in (VMState.DELETED, VMState.ERROR):
            return
        instance.state = VMState.ERROR
        instance.terminated_at = self.clock.now

    def describe(self, instance_id: str) -> VirtualMachine:
        """Return instance details after refreshing its state."""
        self.refresh()
        return self._instance(instance_id)

    def refresh(self) -> None:
        """Transition BUILDING instances whose boot time has elapsed."""
        for instance in self.instances.values():
            if instance.state == VMState.BUILDING and self.clock.now >= instance.active_at:
                instance.state = VMState.ACTIVE

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def active_or_building(self) -> list[VirtualMachine]:
        """Instances that count against the quota."""
        return [
            vm
            for vm in self.instances.values()
            if vm.state in (VMState.BUILDING, VMState.ACTIVE)
        ]

    def active(self) -> list[VirtualMachine]:
        """Instances currently ACTIVE."""
        self.refresh()
        return [vm for vm in self.instances.values() if vm.state == VMState.ACTIVE]

    def by_name(self, name: str) -> VirtualMachine | None:
        """Find the most recent non-deleted instance with ``name``."""
        matches = [
            vm
            for vm in self.instances.values()
            if vm.name == name and vm.state != VMState.DELETED
        ]
        return matches[-1] if matches else None

    def machine_hours(self) -> float:
        """Total machine-hours consumed (the resource-cost metric of §6.4)."""
        self.refresh()
        return sum(vm.uptime(self.clock.now) for vm in self.instances.values()) / 3600.0

    def machine_minutes_by_flavor(self) -> dict[str, float]:
        """Machine-minutes consumed per flavor -- the billing ledger.

        Every instance that ever became ACTIVE contributes its uptime under
        its flavor's name (ERROR/DELETED instances up to their termination),
        which is exactly what a :class:`~repro.sla.cost.PricingModel` turns
        into money.  Sorted by flavor name for deterministic serialisation.
        """
        self.refresh()
        ledger: dict[str, float] = {}
        for vm in self.instances.values():
            minutes = vm.uptime(self.clock.now) / 60.0
            if minutes > 0.0:
                name = vm.flavor.name
                ledger[name] = ledger.get(name, 0.0) + minutes
        return dict(sorted(ledger.items()))

    def _instance(self, instance_id: str) -> VirtualMachine:
        try:
            return self.instances[instance_id]
        except KeyError:
            raise IaaSError(f"unknown instance {instance_id!r}") from None
