"""VM flavors (instance types)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.hardware import GB, HardwareSpec


@dataclass(frozen=True)
class Flavor:
    """An instance type offered by the IaaS."""

    name: str
    vcpus: int
    memory_bytes: int
    disk_bytes: int

    def hardware(self, heap_bytes: int | None = None) -> HardwareSpec:
        """Hardware budgets of a node of this flavor."""
        heap = heap_bytes if heap_bytes is not None else int(self.memory_bytes * 0.75)
        return HardwareSpec(
            cpu_millis_per_second=1000.0 * self.vcpus,
            memory_bytes=self.memory_bytes,
            heap_bytes=heap,
        )


#: Flavors mirroring the paper's evaluation nodes (3-4 GB RAM VMs) plus a
#: couple of generic sizes.
FLAVORS: dict[str, Flavor] = {
    "m1.small": Flavor(name="m1.small", vcpus=2, memory_bytes=2 * GB, disk_bytes=40 * GB),
    "m1.medium": Flavor(name="m1.medium", vcpus=4, memory_bytes=4 * GB, disk_bytes=80 * GB),
    "m1.large": Flavor(name="m1.large", vcpus=8, memory_bytes=8 * GB, disk_bytes=160 * GB),
}

#: Flavor used for RegionServer VMs in the elasticity experiments (3 GB RAM).
REGIONSERVER_FLAVOR = Flavor(
    name="met.regionserver", vcpus=4, memory_bytes=3 * GB, disk_bytes=80 * GB
)
