"""OpenStack-like IaaS substrate.

MeT leverages an existing IaaS as the basic provider of elasticity
(Section 4): the Actuator asks the IaaS to start a virtual machine before
starting a RegionServer on it, and releases the VM after decommissioning.
This package models that provider: flavors, an instance inventory, quota and
boot latency.
"""

from repro.iaas.faults import FaultInjector
from repro.iaas.flavors import FLAVORS, Flavor
from repro.iaas.provider import IaaSError, OpenStackProvider, QuotaExceededError
from repro.iaas.vm import VirtualMachine, VMState

__all__ = [
    "FLAVORS",
    "FaultInjector",
    "Flavor",
    "OpenStackProvider",
    "IaaSError",
    "QuotaExceededError",
    "VirtualMachine",
    "VMState",
]
