"""Fault injection through the IaaS layer.

The paper's elasticity stack assumes the IaaS is the boundary where machines
appear and disappear; faults belong at the same boundary.  A
:class:`FaultInjector` crashes or degrades simulated nodes and keeps the VM
inventory consistent: when a crashed node is backed by a provider instance,
the instance is moved to ERROR so machine-hour accounting and quota reflect
the failure.

Target selection is deterministic: when no node is named, the victim is
drawn from the *sorted* online-node list with the injector's seeded RNG, so
scenario runs replay bit-identically from one seed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.iaas.provider import OpenStackProvider
from repro.util.rng import make_rng

if TYPE_CHECKING:  # keeps iaas a leaf package: no simulation import at runtime
    from repro.simulation.cluster import ClusterSimulator


class FaultInjector:
    """Crash, slow down and recover nodes of a simulated cluster."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        provider: OpenStackProvider | None = None,
        vm_ids: dict[str, str] | None = None,
        seed: int | random.Random | None = None,
    ) -> None:
        self.simulator = simulator
        self.provider = provider
        #: Node name -> provider instance id, for nodes backed by VMs.
        self.vm_ids = vm_ids if vm_ids is not None else {}
        self._rng = make_rng(seed if seed is not None else simulator.rng)
        #: (time, kind, node) history of injected faults.
        self.injected: list[tuple[float, str, str]] = []

    def crash_node(self, node: str | None = None) -> str:
        """Crash ``node`` (or a random online node); returns the victim."""
        victim = self._pick(node)
        instance_id = self.vm_ids.pop(victim, None)
        if self.provider is not None and instance_id is not None:
            self.provider.inject_fault(instance_id)
        self.simulator.fail_node(victim)
        self.injected.append((self.simulator.clock.now, "crash", victim))
        return victim

    def slow_node(self, node: str | None = None, factor: float = 0.5) -> str:
        """Degrade ``node`` (or a random online node) to ``factor`` speed."""
        victim = self._pick(node)
        self.simulator.degrade_node(victim, factor)
        self.injected.append((self.simulator.clock.now, "slow", victim))
        return victim

    def recover_node(self, node: str) -> None:
        """Restore a previously degraded node to full speed."""
        self.simulator.restore_node(node)
        self.injected.append((self.simulator.clock.now, "recover", node))

    def _pick(self, node: str | None) -> str:
        if node is not None:
            return node
        online = sorted(n.name for n in self.simulator.online_nodes())
        if not online:
            raise RuntimeError("no online node to inject a fault into")
        return online[self._rng.randrange(len(online))]
