"""Fault injection through the IaaS layer.

The paper's elasticity stack assumes the IaaS is the boundary where machines
appear and disappear; faults belong at the same boundary.  A
:class:`FaultInjector` crashes or degrades simulated nodes and keeps the VM
inventory consistent: when a crashed node is backed by a provider instance,
the instance is moved to ERROR so machine-hour accounting and quota reflect
the failure.

Crashes are *recoverable*: the injector remembers what each crashed node
looked like (hardware, configuration, profile, whether a VM backed it) so
:meth:`FaultInjector.recover_crashed_node` can repair the machine and let it
rejoin the cluster -- booting like a fresh node, with a replacement VM when
the crash consumed one.  This is what cascading-failure scenarios lean on:
a second crash can land while the first victim is still rebooting.

Target selection is deterministic: when no node is named, the victim is
drawn from the *sorted* online-node list with the injector's seeded RNG, so
scenario runs replay bit-identically from one seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hbase.config import RegionServerConfig
from repro.iaas.flavors import REGIONSERVER_FLAVOR
from repro.iaas.provider import OpenStackProvider
from repro.util.rng import make_rng

if TYPE_CHECKING:  # keeps iaas a leaf package: no simulation import at runtime
    from repro.simulation.cluster import ClusterSimulator
    from repro.simulation.hardware import HardwareSpec


@dataclass(frozen=True)
class CrashedNode:
    """What a node looked like just before it crashed (for recovery)."""

    name: str
    hardware: "HardwareSpec"
    config: RegionServerConfig
    profile_name: str
    #: Provider instance that backed the node, if any.  Recovery launches a
    #: *replacement* instance (the crashed one stays in ERROR for accounting).
    instance_id: str | None = None


class FaultInjector:
    """Crash, slow down and recover nodes of a simulated cluster."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        provider: OpenStackProvider | None = None,
        vm_ids: dict[str, str] | None = None,
        seed: int | random.Random | None = None,
    ) -> None:
        self.simulator = simulator
        self.provider = provider
        #: Node name -> provider instance id, for nodes backed by VMs.
        self.vm_ids = vm_ids if vm_ids is not None else {}
        self._rng = make_rng(seed if seed is not None else simulator.rng)
        #: (time, kind, node) history of injected faults.
        self.injected: list[tuple[float, str, str]] = []
        #: Crash records, in crash order, for recover_crashed_node.
        self._crashed: dict[str, CrashedNode] = {}

    @property
    def crashed_nodes(self) -> list[str]:
        """Names of crashed nodes not yet recovered, oldest crash first."""
        return list(self._crashed)

    def crash_node(self, node: str | None = None) -> str:
        """Crash ``node`` (or a random online node); returns the victim."""
        victim = self._pick(node)
        target = self.simulator.nodes.get(victim)
        # A degraded straggler crashes and is repaired at *full* health (the
        # replacement machine is a fresh one); read the pre-degradation
        # hardware before fail_node discards the degradation record.
        healthy_hardware = (
            self.simulator.base_hardware(victim) if target is not None else None
        )
        instance_id = None
        if self.provider is not None:
            # Only consume the node<->instance mapping when the provider
            # fault is actually injected; without a provider the mapping
            # must survive for whoever does the accounting.
            instance_id = self.vm_ids.pop(victim, None)
            if instance_id is not None:
                self.provider.inject_fault(instance_id)
        self.simulator.fail_node(victim)
        if target is not None:
            self._crashed[victim] = CrashedNode(
                name=victim,
                hardware=healthy_hardware or target.hardware,
                config=target.config,
                profile_name=target.profile_name,
                instance_id=instance_id,
            )
        self.injected.append((self.simulator.clock.now, "crash", victim))
        return victim

    def recover_crashed_node(self, node: str | None = None) -> str:
        """Repair a crashed node: it rejoins the cluster after a fresh boot.

        With ``node=None`` the most recently crashed unrecovered node is
        repaired.  When the crash consumed a provider instance, a
        replacement VM is launched and the node<->instance mapping restored,
        so a later crash of the recovered node fails the new VM.  The node
        rejoins empty (its regions were reassigned at crash time) and boots
        for the simulator's usual boot delay before coming online.
        """
        if node is None:
            if not self._crashed:
                raise RuntimeError("no crashed node to recover")
            node = next(reversed(self._crashed))
        try:
            info = self._crashed.pop(node)
        except KeyError:
            raise RuntimeError(f"node {node!r} has not crashed") from None
        if self.provider is not None and info.instance_id is not None:
            replacement = self.provider.launch(node, REGIONSERVER_FLAVOR)
            self.vm_ids[node] = replacement.instance_id
        self.simulator.add_node(
            name=node,
            config=info.config,
            hardware=info.hardware,
            profile_name=info.profile_name,
            online=False,
        )
        self.injected.append((self.simulator.clock.now, "rejoin", node))
        return node

    def slow_node(
        self,
        node: str | None = None,
        factor: float = 0.5,
        cpu: float | None = None,
        disk: float | None = None,
        network: float | None = None,
    ) -> str:
        """Degrade ``node`` (or a random online node).

        ``factor`` scales every budget; the per-resource overrides model
        partial faults -- ``network=0.15`` alone is a congested/partitioned
        link on an otherwise healthy machine.
        """
        victim = self._pick(node)
        self.simulator.degrade_node(victim, factor, cpu=cpu, disk=disk, network=network)
        self.injected.append((self.simulator.clock.now, "slow", victim))
        return victim

    def recover_node(self, node: str) -> None:
        """Restore a previously degraded node to full speed."""
        self.simulator.restore_node(node)
        self.injected.append((self.simulator.clock.now, "recover", node))

    def _pick(self, node: str | None) -> str:
        if node is not None:
            return node
        online = sorted(n.name for n in self.simulator.online_nodes())
        if not online:
            raise RuntimeError("no online node to inject a fault into")
        return online[self._rng.randrange(len(online))]
