"""The audited wall-clock door.

The determinism contract (README "Static analysis") bans wall-clock
reads everywhere results flow: kernel, campaign store, traces, planner
fingerprints.  A few places legitimately need real time anyway -- bench
harnesses, the campaign ``--profile`` sidecar, the golden-suite budget
guard.  Those read it through this module instead of ``time`` directly,
which buys two things:

* one grep-able choke point -- every sanctioned wall-clock consumer
  imports from here, so auditing "what can observe real time?" is a
  single ``grep -r wallclock``;
* sanitizer immunity by construction -- the names are bound at import,
  so ``repro.analysis.sanitizer.guard()`` (which patches the ``time``
  module's attributes) cannot reach them.  Timing *measurement* keeps
  working inside guarded test scopes while accidental wall-clock
  *dependence* still raises.

The static pass allows the two imports below via pragma; everything
else must stay deterministic or carry its own justified pragma.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter  # repro: allow(D2, reason=the audited wall-clock door; see module docstring)
from time import time as _time  # repro: allow(D2, reason=the audited wall-clock door; see module docstring)

__all__ = ["wall_perf_counter", "wall_time"]


def wall_perf_counter() -> float:  # repro: allow(D2, reason=the audited wall-clock door; see module docstring)
    """A monotonic high-resolution timer for bench/profile measurement.

    Never feed the result into anything byte-checked (stores, traces,
    fingerprints) -- sidecar files and printed reports only.
    """

    return _perf_counter()


def wall_time() -> float:  # repro: allow(D2, reason=the audited wall-clock door; see module docstring)
    """Seconds since the epoch, for human-facing report stamps only."""

    return _time()
