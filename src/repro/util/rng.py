"""Seeded randomness plumbing.

Every randomised component (YCSB key choosers, the HBase random balancer,
the balancer daemon, scenario fault injection) accepts either an integer
seed or an existing ``random.Random`` instance.  Passing one shared
generator threads a *single* seeded stream through a whole run, which is
what makes scenario runs bit-reproducible from one seed: the golden-trace
harness relies on it.
"""

from __future__ import annotations

import random


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return the RNG for ``seed``: instances pass through, ints seed a new one.

    ``None`` seeds from the OS -- fine for exploration, but any component
    that must be reproducible should be handed an int or a shared instance.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
