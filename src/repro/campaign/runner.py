"""Campaign execution: fan cells out over a process pool, append results.

Workers receive the fully scaled, reseeded :class:`ScenarioSpec` (specs are
small and pickle cleanly), run it with ``keep_simulator=False`` -- the
sweep-hygiene mode that severs simulator reference cycles -- and reduce the
run to the same scorecard numbers the SLA layer uses everywhere else.

Two properties the tests pin down:

* **Determinism across pool sizes.**  Futures are consumed in submission
  (grid) order, so the results store receives records in the same order
  whether one worker ran them or eight did -- same grid + master seed
  means byte-identical stores.
* **Resume.**  Cells whose id is already in the store are skipped before
  any worker starts; a campaign killed halfway re-runs only what is
  missing and the final store bytes match an uninterrupted run.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.campaign.grid import CampaignCell, CampaignGrid
from repro.campaign.store import ResultsStore
from repro.scenarios.runner import DEFAULT_KERNEL, run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sla.scorecard import scorecard_row
from repro.util.wallclock import wall_perf_counter

__all__ = ["CampaignError", "CampaignReport", "run_campaign"]


class CampaignError(RuntimeError):
    """A campaign-level invariant was violated (e.g. skipping not active)."""


@dataclass
class CampaignReport:
    """What one :func:`run_campaign` pass did."""

    total: int
    skipped: int
    executed: list[dict] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Cells accounted for after this pass (resumed + newly run)."""
        return self.skipped + len(self.executed)


def _cell_record(cell: CampaignCell, spec: ScenarioSpec, kernel: str) -> dict:
    """Run one cell and reduce it to a store record.

    Module-level so :class:`ProcessPoolExecutor` can pickle it.  The record
    carries no wall-clock or host-specific fields: store bytes must be a
    pure function of grid + master seed (see the determinism tests).
    """
    result = run_scenario(
        spec, controller=cell.controller, kernel=kernel, keep_simulator=False
    )
    row = scorecard_row(result)
    return {
        "cell": cell.cell_id,
        "scenario": cell.scenario,
        "controller": cell.controller,
        "scale": cell.scale.name,
        "load": cell.scale.load,
        "tenant_copies": cell.scale.tenant_copies,
        "seed_index": cell.seed_index,
        "seed": cell.seed,
        "kernel": kernel,
        "skip_active": result.run.skip_active,
        "skip_disabled_reason": result.run.skip_disabled_reason,
        "mean_throughput": row.mean_throughput,
        "violation_minutes": row.violation_minutes,
        "cost": row.cost,
        "machine_minutes": row.machine_minutes,
        "assertions_passed": row.assertions_passed,
        "p95_ms": row.p95_ms,
        "p99_ms": row.p99_ms,
    }


def _cell_record_timed(
    cell: CampaignCell, spec: ScenarioSpec, kernel: str
) -> tuple[dict, float]:
    """:func:`_cell_record` plus the cell's wall-clock seconds.

    The duration rides *alongside* the record, never inside it: wall-clock
    belongs in the profile sidecar, and the store record must stay a pure
    function of grid + master seed.
    """
    started = wall_perf_counter()
    record = _cell_record(cell, spec, kernel)
    return record, wall_perf_counter() - started


def run_campaign(
    grid: CampaignGrid,
    store: ResultsStore,
    workers: int = 1,
    kernel: str = DEFAULT_KERNEL,
    require_skip: bool | None = None,
    progress: Callable[[int, int, str], None] | None = None,
    profile_path: str | Path | None = None,
) -> CampaignReport:
    """Run every grid cell not yet in ``store``; return what happened.

    ``require_skip`` asserts every executed run actually had quiescence
    fast-forwarding engaged; it defaults to on for the event kernel (a
    campaign silently losing the event-kernel speedup is the failure mode
    the skip-eligibility satellite made loud) and off for kernels that
    have no fast-forward path.

    ``profile_path`` appends one ``{"cell": ..., "seconds": ...}`` JSON line
    per executed cell to a *sidecar* file.  Wall-clock is host- and
    run-specific, so it lives outside the results store: the store bytes
    stay a pure function of grid + master seed whether profiling is on or
    off (the serial-vs-pool byte-identity check runs with it enabled).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if require_skip is None:
        require_skip = kernel == "event"
    done = store.completed_ids()
    cells = grid.cells()
    pending = [cell for cell in cells if cell.cell_id not in done]
    report = CampaignReport(total=len(cells), skipped=len(cells) - len(pending))
    profile = Path(profile_path) if profile_path is not None else None

    def finish(cell: CampaignCell, record: dict, seconds: float) -> None:
        if require_skip and not record["skip_active"]:
            raise CampaignError(
                f"cell {cell.cell_id}: quiescence skipping was not active "
                f"({record['skip_disabled_reason'] or 'no reason recorded'}); "
                "pass require_skip=False to accept tick-by-tick runs"
            )
        store.append(record)
        report.executed.append(record)
        if profile is not None:
            with profile.open("a") as handle:
                handle.write(
                    json.dumps(
                        {"cell": cell.cell_id, "seconds": round(seconds, 6)},
                        sort_keys=True,
                    )
                    + "\n"
                )
        if progress is not None:
            progress(report.completed, report.total, cell.cell_id)

    if workers == 1 or len(pending) <= 1:
        for cell in pending:
            record, seconds = _cell_record_timed(cell, grid.spec_for(cell), kernel)
            finish(cell, record, seconds)
        return report

    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Consume futures in submission (grid) order, not completion order:
        # the store must receive records deterministically for the
        # byte-identity guarantee, and grid order is the natural one.
        futures = [
            (cell, pool.submit(_cell_record_timed, cell, grid.spec_for(cell), kernel))
            for cell in pending
        ]
        for cell, future in futures:
            record, seconds = future.result()
            finish(cell, record, seconds)
    return report
