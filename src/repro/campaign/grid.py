"""The declarative campaign grid: cells, scales and derived seeds.

A :class:`CampaignGrid` is pure data -- scenario specs x controllers x
:class:`ScaleSpec` x seed indices -- and deterministically expands into
:class:`CampaignCell` objects in a fixed order (scenario, then controller,
then scale, then seed).  Each cell derives its own simulator seed from the
grid's master seed via SHA-256, so reordering or resuming a campaign never
changes what any individual cell computes, and the derivation is immune to
``PYTHONHASHSEED``.

Scales stretch a scenario along the axes a capacity study sweeps: a *load*
multiplier on every tenant's baseline target, *tenant copies* (each copy is
a renamed clone of the original tenant, so partitions and bindings stay
unique), and optional initial/max node-count overrides.  Scenario events
keep addressing the original tenants by name; clones ride along as
background load.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.scenarios.spec import ScenarioSpec, TenantSpec

__all__ = [
    "BASELINE_SCALE",
    "CampaignCell",
    "CampaignGrid",
    "ScaleSpec",
    "apply_scale",
    "derive_seed",
]


@dataclass(frozen=True)
class ScaleSpec:
    """One point on the scale axis of a campaign.

    ``load`` multiplies every capped tenant's baseline ``target_ops``
    (uncapped tenants are left uncapped -- load events already modulate
    their nominal rate).  ``tenant_copies`` runs each tenant ``n`` times:
    copy 0 keeps the original name (so scenario events still find it),
    copies 1.. are renamed clones.  ``initial_nodes`` / ``max_nodes``
    override the scenario's cluster envelope when set.
    """

    name: str
    load: float = 1.0
    tenant_copies: int = 1
    initial_nodes: int | None = None
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scale needs a name")
        if self.load <= 0:
            raise ValueError(f"scale {self.name!r}: load must be positive")
        if self.tenant_copies < 1:
            raise ValueError(f"scale {self.name!r}: tenant_copies must be >= 1")

    @property
    def is_baseline(self) -> bool:
        """Whether this scale leaves the scenario spec untouched."""
        return (
            self.load == 1.0
            and self.tenant_copies == 1
            and self.initial_nodes is None
            and self.max_nodes is None
        )


BASELINE_SCALE = ScaleSpec(name="1x")


def _renamed_workload(workload, new_name: str):
    """Clone a tenant workload under a new name.

    Adapter-style tenants (:class:`~repro.workloads.ycsb.tenant.YCSBTenant`)
    carry the name on a wrapped inner workload; flat tenants
    (:class:`~repro.workloads.tpcc.tenant.TPCCTenant`) carry it directly.
    Renaming matters because partition ids and binding names derive from
    the tenant name -- clones must not collide in the simulator.
    """
    inner = getattr(workload, "workload", None)
    if inner is not None and hasattr(inner, "name"):
        return type(workload)(replace(inner, name=new_name))
    return replace(workload, name=new_name)


def apply_scale(spec: ScenarioSpec, scale: ScaleSpec) -> ScenarioSpec:
    """Stretch ``spec`` along ``scale``'s axes; identity for the baseline."""
    if scale.is_baseline:
        return spec
    tenants: list[TenantSpec] = []
    for tenant in spec.tenants:
        target = tenant.target_ops
        if target is not None:
            target = target * scale.load
        tenants.append(TenantSpec(tenant.workload, target_ops=target))
        for copy in range(1, scale.tenant_copies):
            clone = _renamed_workload(tenant.workload, f"{tenant.name}~{copy}")
            tenants.append(TenantSpec(clone, target_ops=target))
    overrides: dict = {"tenants": tuple(tenants)}
    if scale.initial_nodes is not None:
        overrides["initial_nodes"] = scale.initial_nodes
    if scale.max_nodes is not None:
        overrides["max_nodes"] = scale.max_nodes
    return replace(spec, **overrides)


def derive_seed(master_seed: int, *parts: str) -> int:
    """Deterministic per-cell seed: SHA-256 of the cell's coordinates.

    Hash-based (not ``random.Random`` streams) so every cell's seed depends
    only on its own coordinates -- adding a scenario or a scale to the grid
    never shifts the seeds of existing cells, which keeps resumed and
    extended campaigns comparable run for run.
    """
    digest = hashlib.sha256(
        "|".join((str(master_seed),) + parts).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1  # non-negative 63-bit


@dataclass(frozen=True)
class CampaignCell:
    """One (scenario, controller, scale, seed) run of a campaign."""

    scenario: str
    controller: str
    scale: ScaleSpec
    seed_index: int
    seed: int

    @property
    def cell_id(self) -> str:
        """Stable identity used by the results store to resume campaigns."""
        return f"{self.scenario}|{self.controller}|{self.scale.name}|s{self.seed_index}"


@dataclass(frozen=True)
class CampaignGrid:
    """The full factorial sweep: scenarios x controllers x scales x seeds."""

    scenarios: tuple[ScenarioSpec, ...]
    controllers: tuple[str, ...] = ("met", "tiramola")
    scales: tuple[ScaleSpec, ...] = (BASELINE_SCALE,)
    seeds: int = 3
    master_seed: int = 0

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("campaign needs at least one scenario")
        if not self.controllers:
            raise ValueError("campaign needs at least one controller")
        if not self.scales:
            raise ValueError("campaign needs at least one scale")
        if self.seeds < 1:
            raise ValueError("campaign needs at least one seed")
        names = [spec.name for spec in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names in grid: {names}")
        scale_names = [scale.name for scale in self.scales]
        if len(set(scale_names)) != len(scale_names):
            raise ValueError(f"duplicate scale names in grid: {scale_names}")

    @property
    def size(self) -> int:
        """Number of cells in the grid."""
        return (
            len(self.scenarios) * len(self.controllers) * len(self.scales) * self.seeds
        )

    def cells(self) -> list[CampaignCell]:
        """Every cell, in the grid's canonical (deterministic) order."""
        cells: list[CampaignCell] = []
        for spec in self.scenarios:
            for controller in self.controllers:
                for scale in self.scales:
                    for index in range(self.seeds):
                        cells.append(
                            CampaignCell(
                                scenario=spec.name,
                                controller=controller,
                                scale=scale,
                                seed_index=index,
                                seed=derive_seed(
                                    self.master_seed,
                                    spec.name,
                                    scale.name,
                                    f"s{index}",
                                ),
                            )
                        )
        return cells

    def spec_for(self, cell: CampaignCell) -> ScenarioSpec:
        """The concrete (scaled, reseeded) spec a cell's worker runs.

        The cell seed intentionally ignores the controller axis: both
        controllers of a matchup face the *same* reseeded scenario, which
        is what makes their rows comparable.
        """
        for spec in self.scenarios:
            if spec.name == cell.scenario:
                return replace(apply_scale(spec, cell.scale), seed=cell.seed)
        raise KeyError(f"grid has no scenario named {cell.scenario!r}")
