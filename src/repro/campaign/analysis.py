"""Offline campaign analysis: aggregation, comparison tables, bench report.

Reduces a results store to the MeT-vs-Tiramola comparison the paper argues
with: per (scenario, scale) rows averaging each controller's metrics over
the seed axis, rendered side by side through the same
:func:`~repro.experiments.reporting.format_matchup` shape as the single-run
scorecard.  Plotting is optional and degrades to a no-op when matplotlib is
not installed (the container does not guarantee it).

:func:`write_campaign_bench` mirrors ``BENCH_kernel.json``: a small JSON
file at the repo root tracking campaign throughput (runs/s) and the
process-pool speedup PR over PR.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.reporting import format_matchup, format_table, percentiles

__all__ = [
    "AggregateRow",
    "aggregate_records",
    "plot_campaign",
    "render_campaign_table",
    "render_seed_quantile_table",
    "write_campaign_bench",
]


@dataclass(frozen=True)
class AggregateRow:
    """One (scenario, scale, controller) cell averaged over its seeds."""

    scenario: str
    scale: str
    controller: str
    runs: int
    mean_throughput: float
    violation_minutes: float
    cost: float
    machine_minutes: float
    assertions_passed: bool
    #: Seed-mean of each run's peak tail latency (0.0 for stores written
    #: before the percentile pipeline landed).
    p95_ms: float = 0.0
    p99_ms: float = 0.0

    @property
    def label(self) -> str:
        """Row label: scenario, with the scale suffixed when not baseline."""
        return self.scenario if self.scale == "1x" else f"{self.scenario}@{self.scale}"


def aggregate_records(records: list[dict]) -> list[AggregateRow]:
    """Average store records over the seed axis.

    Rows come back grouped by first appearance of (scenario, scale), then
    controller -- i.e. grid order when the store was written by
    :func:`~repro.campaign.runner.run_campaign`.
    """
    order: list[tuple[str, str, str]] = []
    buckets: dict[tuple[str, str, str], list[dict]] = {}
    for record in records:
        key = (record["scenario"], record["scale"], record["controller"])
        if key not in buckets:
            order.append(key)
            buckets[key] = []
        buckets[key].append(record)
    rows: list[AggregateRow] = []
    for scenario, scale, controller in order:
        group = buckets[(scenario, scale, controller)]
        count = len(group)

        def mean(field: str, default: float = 0.0) -> float:
            return sum(record.get(field, default) for record in group) / count

        rows.append(
            AggregateRow(
                scenario=scenario,
                scale=scale,
                controller=controller,
                runs=count,
                mean_throughput=mean("mean_throughput"),
                violation_minutes=mean("violation_minutes"),
                cost=mean("cost"),
                machine_minutes=mean("machine_minutes"),
                assertions_passed=all(r["assertions_passed"] for r in group),
                p95_ms=mean("p95_ms"),
                p99_ms=mean("p99_ms"),
            )
        )
    return rows


def render_campaign_table(records: list[dict]) -> str:
    """The campaign's controller matchup, one (scenario, scale) per line."""
    rows = aggregate_records(records)
    return format_matchup(
        rows,
        key=lambda row: row.label,
        group=lambda row: row.controller,
        columns=[
            ("ops/s", lambda row: f"{row.mean_throughput:,.0f}"),
            ("viol-min", lambda row: f"{row.violation_minutes:.1f}"),
            ("p95-ms", lambda row: f"{row.p95_ms:.2f}"),
            ("p99-ms", lambda row: f"{row.p99_ms:.2f}"),
            ("cost", lambda row: f"{row.cost:.3f}"),
            ("mach-min", lambda row: f"{row.machine_minutes:.1f}"),
            ("seeds", lambda row: str(row.runs)),
            ("ok", lambda row: "yes" if row.assertions_passed else "NO"),
        ],
    )


def render_seed_quantile_table(
    records: list[dict],
    metric: str = "p99_ms",
    points: tuple[int, ...] = (5, 25, 50, 75, 95),
) -> str:
    """Quantiles of ``metric`` over the seed axis, one group per line.

    The aggregate table answers "what happens on average"; this one answers
    "how bad does the unlucky seed get" -- the question a tail-latency SLO
    is about.  Groups follow the same first-appearance (scenario, scale,
    controller) order as :func:`aggregate_records`; quantiles are the
    linearly interpolated :func:`~repro.experiments.reporting.percentiles`.
    """
    order: list[tuple[str, str, str]] = []
    buckets: dict[tuple[str, str, str], list[float]] = {}
    for record in records:
        key = (record["scenario"], record["scale"], record["controller"])
        if key not in buckets:
            order.append(key)
            buckets[key] = []
        buckets[key].append(float(record.get(metric, 0.0)))
    headers = ["scenario", "controller", "seeds"] + [f"p{p}" for p in points]
    rows = []
    for scenario, scale, controller in order:
        values = buckets[(scenario, scale, controller)]
        label = scenario if scale == "1x" else f"{scenario}@{scale}"
        spread = percentiles(values, points=points)
        rows.append(
            [label, controller, str(len(values))]
            + [f"{spread[p]:.2f}" for p in points]
        )
    return f"seed-axis quantiles of {metric}\n" + format_table(headers, rows)


def plot_campaign(records: list[dict], path: str | Path) -> bool:
    """Write a violation-minutes-vs-cost scatter; False if matplotlib is absent."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        return False
    rows = aggregate_records(records)
    controllers = sorted({row.controller for row in rows})
    figure, axes = plt.subplots(figsize=(7.0, 5.0))
    for controller in controllers:
        mine = [row for row in rows if row.controller == controller]
        axes.scatter(
            [row.cost for row in mine],
            [row.violation_minutes for row in mine],
            label=controller,
            alpha=0.75,
        )
    axes.set_xlabel("mean run cost")
    axes.set_ylabel("mean SLO violation-minutes")
    axes.set_title("campaign: quality vs cost, averaged over seeds")
    axes.legend()
    figure.tight_layout()
    figure.savefig(path, dpi=120)
    plt.close(figure)
    return True


def write_campaign_bench(
    path: str | Path,
    grid_size: int,
    workers: int,
    serial_seconds: float,
    pool_seconds: float,
) -> dict:
    """Write the ``BENCH_campaign.json`` throughput report; return it."""
    # cpu_count contextualises pool_speedup: a process pool cannot beat
    # serial on a single-core host, so the speedup is only meaningful
    # alongside the cores that were available when it was measured.
    report = {
        "benchmark": "campaign",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "grid_size": grid_size,
        "workers": workers,
        "serial_seconds": round(serial_seconds, 3),
        "pool_seconds": round(pool_seconds, 3),
        "serial_runs_per_second": round(grid_size / serial_seconds, 2)
        if serial_seconds > 0
        else None,
        "pool_runs_per_second": round(grid_size / pool_seconds, 2)
        if pool_seconds > 0
        else None,
        "pool_speedup": round(serial_seconds / pool_seconds, 2)
        if pool_seconds > 0
        else None,
    }
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report
