"""Campaign runner: declarative controller x scenario x scale x seed sweeps.

A *campaign* evaluates the MeT-vs-Tiramola matchup across the whole
scenario catalog at multiple scales and seeds -- the experimental grid
behind the paper's Section 6 comparisons, generalised.  The subsystem is
deliberately layered like the create-results drivers of large simulation
studies:

* :mod:`repro.campaign.grid` -- the declarative grid: which cells exist,
  what spec each cell runs, and the per-cell derived seed;
* :mod:`repro.campaign.runner` -- executes cells (inline or across a
  process pool), resuming past completed cells;
* :mod:`repro.campaign.store` -- the crash-tolerant append-only results
  store (one JSON line per completed run);
* :mod:`repro.campaign.analysis` -- offline aggregation: comparison
  tables, optional plots, and the ``BENCH_campaign.json`` throughput
  report.

Everything a worker computes is deterministic (no wall-clock in records),
so the same grid + master seed produce *byte-identical* stores regardless
of pool size or how many resume passes it took to finish.
"""

from repro.campaign.analysis import (
    AggregateRow,
    aggregate_records,
    plot_campaign,
    render_campaign_table,
    render_seed_quantile_table,
    write_campaign_bench,
)
from repro.campaign.grid import (
    BASELINE_SCALE,
    CampaignCell,
    CampaignGrid,
    ScaleSpec,
    apply_scale,
    derive_seed,
)
from repro.campaign.runner import CampaignError, CampaignReport, run_campaign
from repro.campaign.store import ResultsStore

__all__ = [
    "AggregateRow",
    "BASELINE_SCALE",
    "CampaignCell",
    "CampaignError",
    "CampaignGrid",
    "CampaignReport",
    "ResultsStore",
    "ScaleSpec",
    "aggregate_records",
    "apply_scale",
    "derive_seed",
    "plot_campaign",
    "render_campaign_table",
    "render_seed_quantile_table",
    "run_campaign",
    "write_campaign_bench",
]
