"""Crash-tolerant append-only results store: one JSON line per finished run.

The store is the campaign's source of truth for what is already done.  A
worker crash, an interrupt or a power cut costs at most the cells that were
in flight: every completed cell is one flushed line, and a *truncated final
line* (the signature of dying mid-write) is ignored on load so the next
pass simply re-runs that cell.  A damaged line anywhere *before* the end is
real corruption and raises -- silently dropping completed results would
skew the aggregates.

Records are serialised with sorted keys and no wall-clock fields, so a
store's bytes are a pure function of the grid and the master seed; the
determinism tests compare stores byte for byte across pool sizes and
resume passes.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["ResultsStore", "StoreCorruption"]


class StoreCorruption(RuntimeError):
    """A non-final store line failed to parse: completed data is damaged."""


class ResultsStore:
    """Append-only JSONL store keyed by campaign cell id."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict) -> None:
        """Durably append one completed-cell record.

        A file not ending in a newline carries a torn final line from a
        crash mid-write; appending straight after it would fuse the new
        record onto the remnant and turn a recoverable tear into *middle*
        corruption.  The tear is truncated away first -- exactly the line
        :meth:`load` would have ignored.
        """
        line = json.dumps(record, sort_keys=True)
        if "\n" in line:  # pragma: no cover - json.dumps never emits newlines
            raise ValueError("record serialisation must be single-line")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a+b") as handle:
            handle.seek(0, 2)
            if handle.tell():
                handle.seek(-1, 2)
                if handle.read(1) != b"\n":
                    handle.seek(0)
                    intact = handle.read().rfind(b"\n") + 1
                    handle.truncate(intact)
            handle.write(line.encode("utf-8") + b"\n")
            handle.flush()

    def load(self) -> list[dict]:
        """Every completed record, tolerating only a truncated final line."""
        if not self.path.exists():
            return []
        text = self.path.read_text(encoding="utf-8")
        lines = text.split("\n")
        trailing = lines.pop()  # "" after a clean write; a partial record after a crash
        records: list[dict] = []
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise StoreCorruption(
                    f"{self.path}:{number}: damaged record before end of store "
                    f"({error}); refusing to aggregate over silently dropped runs"
                ) from None
        if trailing.strip():
            try:
                records.append(json.loads(trailing))
            except json.JSONDecodeError:
                # Interrupted mid-append: the cell never completed; the next
                # campaign pass re-runs it.
                pass
        return records

    def completed_ids(self) -> set[str]:
        """Cell ids already present (the resume set)."""
        return {record["cell"] for record in self.load()}

    def __len__(self) -> int:
        return len(self.load())
