"""File discovery, scope classification and the lint driver."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.rules import RULE_IDS, RULES, ModuleContext, collect_imports

# Directories scanned when no explicit paths are given (relative to the
# repo root; missing ones are skipped silently).
DEFAULT_TARGETS: tuple[str, ...] = ("src", "scripts", "tests", "examples", "benchmarks")

# Path *parts* excluded everywhere: the fixture corpus intentionally
# violates every rule, and cache/VCS directories are never source.
EXCLUDED_PARTS: frozenset[str] = frozenset({"lint_corpus", "__pycache__", ".git"})

SIMULATOR_FILES: frozenset[str] = frozenset({"src/repro/simulation/cluster.py"})
TEST_ROOTS: tuple[str, ...] = ("tests", "benchmarks")


def classify_scopes(rel_path: str, pragma_scopes: set[str]) -> frozenset[str]:
    """Path-based scope classification, overridable by scope pragmas."""

    if pragma_scopes:
        return frozenset(pragma_scopes)
    scopes: set[str] = set()
    top = rel_path.split("/", 1)[0]
    if top in TEST_ROOTS:
        scopes.add("tests")
    else:
        scopes.add("library")
    if rel_path in SIMULATOR_FILES:
        scopes.add("simulator")
    return frozenset(scopes)


def discover_files(root: Path, targets: tuple[str, ...] = DEFAULT_TARGETS) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        base = root / target
        if not base.exists():
            continue
        if base.is_file():
            files.append(base)
            continue
        for path in sorted(base.rglob("*.py")):
            if EXCLUDED_PARTS.intersection(path.relative_to(root).parts):
                continue
            files.append(path)
    return files


def lint_file(path: Path, root: Path) -> list[Finding]:
    """Lint one file: parse, classify, run applicable rules, apply pragmas."""

    rel_path = path.relative_to(root).as_posix()
    try:
        source = path.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(rel_path, 1, "E0", f"unreadable file: {exc}")]
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(rel_path, exc.lineno or 1, "E0", f"syntax error: {exc.msg}")]

    pragmas = parse_pragmas(source, tree, rel_path, RULE_IDS)
    scopes = classify_scopes(rel_path, pragmas.scopes)
    ctx = ModuleContext(rel_path=rel_path, tree=tree, scopes=scopes, imports=collect_imports(tree))

    findings: set[Finding] = set(pragmas.problems)
    for spec in RULES:
        if not spec.applies(scopes):
            continue
        for finding in spec.check(ctx):
            if not pragmas.suppresses(finding.rule, finding.line):
                findings.add(finding)
    return sorted(findings)


def lint_paths(paths: list[Path], root: Path) -> list[Finding]:
    findings: list[Finding] = []
    for path in paths:
        findings.extend(lint_file(path, root))
    return sorted(set(findings))


def lint_repo(root: Path, targets: tuple[str, ...] = DEFAULT_TARGETS) -> list[Finding]:
    return lint_paths(discover_files(root, targets), root)
