"""Command-line entry point: ``python -m repro.analysis`` / ``scripts/lint.py``.

Exit status 0 means every finding is either absent or grandfathered in
the baseline file; 1 means new findings (printed one per line as
``path:line:RULE: message``).  ``--update-baseline`` rewrites the
baseline from the current findings -- use it only while burning the
baseline *down*, never to park a new violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import DEFAULT_TARGETS, discover_files, lint_paths
from repro.analysis.findings import load_baseline, write_baseline


def main(argv: list[str] | None = None, root: Path | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism lint: AST rules D1-D6 over the repo's Python sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help=f"files or directories to lint (default: {', '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=root,
        help="repository root (default: the current directory)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: exit 1 on any non-baseline finding (same behaviour as "
        "the default run; the flag exists so intent is explicit in ci.yml)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file of grandfathered findings (default: <root>/lint-baseline.txt)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    args = parser.parse_args(argv)

    repo_root = (args.root or Path.cwd()).resolve()
    baseline_path = args.baseline or repo_root / "lint-baseline.txt"

    if args.paths:
        files: list[Path] = []
        for raw in args.paths:
            path = raw if raw.is_absolute() else repo_root / raw
            if path.is_dir():
                files.extend(discover_files(repo_root, (path.relative_to(repo_root).as_posix(),)))
            else:
                files.append(path)
    else:
        files = discover_files(repo_root, DEFAULT_TARGETS)

    findings = lint_paths(files, repo_root)

    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print(f"baseline: {len(findings)} finding(s) -> {baseline_path}")
        return 0

    baseline = load_baseline(baseline_path)
    fresh = [finding for finding in findings if finding.key not in baseline]
    stale = baseline - {finding.key for finding in findings}

    for finding in fresh:
        print(finding.render())
    if stale:
        print(
            f"note: {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            f"(fixed or moved) -- prune with --update-baseline",
            file=sys.stderr,
        )
    if fresh:
        print(
            f"\n{len(fresh)} determinism finding(s) in {len(files)} file(s); "
            "fix, pragma with `# repro: allow(RULE, reason=...)`, or (last resort) "
            "baseline with --update-baseline",
            file=sys.stderr,
        )
        return 1
    print(f"determinism lint: {len(files)} files clean ({len(baseline)} baselined)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
