"""Finding records and the baseline file format.

A finding renders as ``path:line:RULE: message`` (path repo-relative,
POSIX separators) so editors and CI logs link straight to the site.
The baseline file holds one ``path:line:RULE`` key per line --
grandfathered findings that ``--check`` tolerates until the code is
fixed.  Keys, not messages: message wording may improve without
invalidating the baseline, but a finding that moves lines must be
re-triaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # repo-relative, POSIX separators
    line: int
    rule: str
    message: str

    @property
    def key(self) -> str:
        """The stable identity used for baselines and deduplication."""

        return f"{self.path}:{self.line}:{self.rule}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.rule}: {self.message}"


def load_baseline(path: Path) -> set[str]:
    """Read baseline keys, ignoring blank lines and ``#`` comments."""

    if not path.exists():
        return set()
    keys: set[str] = set()
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            keys.add(line)
    return keys


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the current findings as the new baseline (sorted, keyed)."""

    header = (
        "# Grandfathered determinism-lint findings (path:line:RULE).\n"
        "# Regenerate with: python scripts/lint.py --update-baseline\n"
        "# The goal is an empty file: fix the code or justify it in-source\n"
        "# with `# repro: allow(RULE, reason=...)` instead of parking it here.\n"
    )
    body = "".join(f"{finding.key}\n" for finding in sorted(findings))
    path.write_text(header + body)
