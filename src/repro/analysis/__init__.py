"""Determinism sentinel: static AST rules + a runtime sanitizer.

Everything the repro sells -- golden traces, the resumable campaign
store, planner fingerprints -- rests on byte-determinism and on the
event kernel's dirty-signature discipline.  This package turns those
contracts into tooling:

* ``repro.analysis.engine`` walks the repo's Python files and applies
  the determinism rules (D1 unseeded randomness, D2 wall-clock reads,
  D3 unordered-set iteration, D4 the mutator audit against
  ``repro.simulation.invariants``, D5 non-canonical JSON, D6 float
  accumulation into mergeable integer channels).  Run it with
  ``python -m repro.analysis`` or ``scripts/lint.py``.
* ``repro.analysis.sanitizer`` is the runtime companion: a context
  manager that patches ``random``/``time`` so a guarded scope *raises*
  on global-RNG draws and wall-clock reads instead of silently
  producing irreproducible bytes.  The golden and campaign test suites
  run under it by default.

Findings are machine-readable (``path:line:RULE: message``); intentional
exceptions are annotated in-source with
``# repro: allow(RULE, reason=...)`` and grandfathered findings live in
the committed ``lint-baseline.txt`` (currently empty).
"""

from __future__ import annotations

from repro.analysis.engine import DEFAULT_TARGETS, lint_paths, lint_repo
from repro.analysis.findings import Finding, load_baseline, write_baseline
from repro.analysis.rules import RULES
from repro.analysis.sanitizer import DeterminismViolation, guard

__all__ = [
    "DEFAULT_TARGETS",
    "DeterminismViolation",
    "Finding",
    "RULES",
    "guard",
    "lint_paths",
    "lint_repo",
    "load_baseline",
    "write_baseline",
]
