"""Runtime determinism sanitizer: make violations raise, not drift.

``guard()`` patches the ``time`` and ``random`` modules so that, inside
the scope, a wall-clock read or a global-RNG draw raises
``DeterminismViolation`` with the offending name and the remediation.
The golden-trace and campaign suites run under it by default (see
``tests/conftest.py``), so a regression that the static pass cannot see
-- e.g. wall-clock reads hidden behind ``getattr`` or a third-party
helper -- fails loudly in the exact test that guards byte-identity.

What stays usable inside a guard, by design:

* seeded ``random.Random(seed)`` instances (``repro.util.rng.make_rng``)
  -- only the module-level convenience functions backed by the hidden
  global instance are patched;
* ``repro.util.wallclock`` -- the audited measurement door binds the real
  functions at import time, before any guard exists;
* ``time.monotonic`` / ``time.sleep`` -- stdlib machinery
  (``concurrent.futures``, ``multiprocessing``) reads them via attribute
  lookup at runtime; patching them would break the process pools the
  campaign suite exercises, and neither feeds any byte-checked output.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["DeterminismViolation", "guard", "guard_active"]


class DeterminismViolation(RuntimeError):
    """A guarded scope observed wall-clock time or the global RNG."""


# Wall-clock readers whose results could leak into byte-checked output.
# time.monotonic/_ns and time.sleep are deliberately absent (see module
# docstring).
_TIME_ATTRS = (
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
)

# The random module's global-instance convenience API.  getstate/setstate
# and the Random class itself stay untouched so seeded instances keep
# working.
_RANDOM_ATTRS = (
    "random",
    "uniform",
    "triangular",
    "randint",
    "randrange",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "vonmisesvariate",
    "gammavariate",
    "gauss",
    "betavariate",
    "paretovariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
    "seed",
)


def _raiser(module_name: str, attr: str):
    remedy = (
        "use a seeded repro.util.rng.make_rng(...) instance"
        if module_name == "random"
        else "route measurement through repro.util.wallclock"
    )

    def _blocked(*_args, **_kwargs):
        raise DeterminismViolation(
            f"{module_name}.{attr}() called inside a determinism-guarded scope "
            f"(golden/campaign suites run guarded); {remedy} or run this code "
            "outside the guard"
        )

    return _blocked


_depth = 0
_saved: dict[tuple[str, str], object] = {}


def guard_active() -> bool:
    return _depth > 0


@contextmanager
def guard() -> Iterator[None]:
    """Raise on wall-clock reads and global-RNG draws inside the scope.

    Re-entrant: nested guards patch once and restore when the outermost
    scope exits.
    """

    global _depth
    if _depth == 0:
        for attr in _TIME_ATTRS:
            _saved[("time", attr)] = getattr(time, attr)
            setattr(time, attr, _raiser("time", attr))
        for attr in _RANDOM_ATTRS:
            _saved[("random", attr)] = getattr(random, attr)
            setattr(random, attr, _raiser("random", attr))
    _depth += 1
    try:
        yield
    finally:
        _depth -= 1
        if _depth == 0:
            for (module_name, attr), original in _saved.items():
                module = time if module_name == "time" else random
                setattr(module, attr, original)
            _saved.clear()
