"""``# repro:`` pragma parsing.

Two directives, both comments so they cost nothing at runtime:

``# repro: allow(RULE, reason=...)``
    Suppresses one rule.  On a code line it covers that line; on its own
    line it covers the next statement; on a ``def``/``class`` line it
    covers the whole body.  The reason is mandatory -- a suppression
    without a recorded justification is itself a finding (rule P1).

``# repro: scope(library|tests|simulator)``
    Overrides the path-based scope classification for the file (used by
    the fixture corpus under ``tests/lint_corpus/`` to exercise
    scope-gated rules from test-tree paths).

Anything else after ``# repro:`` is a typo and reported as P1 rather
than silently ignored -- a mis-spelled pragma must not read as a
successful suppression.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<body>.*)$")
ALLOW_RE = re.compile(r"^allow\(\s*(?P<rule>[A-Za-z0-9_]+)\s*,\s*reason\s*=\s*(?P<reason>.*)\)\s*$")
ALLOW_HEAD_RE = re.compile(r"^allow\b")
SCOPE_RE = re.compile(r"^scope\(\s*(?P<scope>[A-Za-z_]+)\s*\)\s*$")

KNOWN_SCOPES = frozenset({"library", "tests", "simulator"})

_TRIVIA_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


@dataclass(frozen=True)
class AllowPragma:
    rule: str
    reason: str
    start_line: int
    end_line: int


@dataclass
class PragmaIndex:
    """All pragmas of one module, plus any malformed ones as P1 findings."""

    allows: list[AllowPragma] = field(default_factory=list)
    scopes: set[str] = field(default_factory=set)
    problems: list[Finding] = field(default_factory=list)

    def suppresses(self, rule: str, line: int) -> bool:
        return any(
            pragma.rule == rule and pragma.start_line <= line <= pragma.end_line
            for pragma in self.allows
        )


def _definition_spans(tree: ast.AST) -> dict[int, int]:
    """Map ``def``/``class`` statement lines to their body end lines."""

    spans: dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            spans[node.lineno] = node.end_lineno or node.lineno
    return spans


def parse_pragmas(
    source: str,
    tree: ast.AST,
    rel_path: str,
    known_rules: frozenset[str],
) -> PragmaIndex:
    index = PragmaIndex()
    comments: list[tuple[int, str, bool]] = []  # (line, text, own_line)
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - ast parsed already
        return index
    for token in tokens:
        if token.type == tokenize.COMMENT:
            prefix = token.line[: token.start[1]]
            comments.append((token.start[0], token.string, not prefix.strip()))
        elif token.type not in _TRIVIA_TOKENS:
            code_lines.add(token.start[0])

    spans = _definition_spans(tree)
    for line, text, own_line in comments:
        match = PRAGMA_RE.search(text)
        if match is None:
            continue
        body = match.group("body").strip()
        if own_line:
            later = [code_line for code_line in code_lines if code_line > line]
            anchor = min(later) if later else line
        else:
            anchor = line

        scope_match = SCOPE_RE.match(body)
        if scope_match is not None:
            scope = scope_match.group("scope")
            if scope in KNOWN_SCOPES:
                index.scopes.add(scope)
            else:
                index.problems.append(
                    Finding(rel_path, line, "P1", f"unknown scope {scope!r} in repro pragma")
                )
            continue

        allow_match = ALLOW_RE.match(body)
        if allow_match is not None:
            rule = allow_match.group("rule")
            reason = allow_match.group("reason").strip()
            if rule not in known_rules:
                index.problems.append(
                    Finding(rel_path, line, "P1", f"allow() names unknown rule {rule!r}")
                )
                continue
            if not reason:
                index.problems.append(
                    Finding(rel_path, line, "P1", f"allow({rule}) has an empty reason")
                )
                continue
            index.allows.append(
                AllowPragma(rule=rule, reason=reason, start_line=anchor, end_line=spans.get(anchor, anchor))
            )
            continue

        if ALLOW_HEAD_RE.match(body):
            index.problems.append(
                Finding(
                    rel_path,
                    line,
                    "P1",
                    "malformed allow pragma: expected `# repro: allow(RULE, reason=...)` "
                    "with a non-empty reason",
                )
            )
        else:
            index.problems.append(
                Finding(rel_path, line, "P1", f"unrecognised repro pragma {body!r}")
            )
    return index
