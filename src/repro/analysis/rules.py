"""The determinism rules (D1-D6).

Each rule is a pure function over one parsed module plus a small amount
of shared context (import aliases, scope classification).  The rules are
deliberately syntactic: they under-approximate (no data-flow across
modules, one level of local-name tracking) and lean on the pragma escape
hatch for the rare justified exception, because a linter that needs a
type checker to run stops being a pre-test gate.

Scopes (see ``engine.classify_scopes``):

* ``library``  -- ``src/`` + ``scripts/`` + ``examples/``: the paths whose
  bytes reach stores, traces and fingerprints.  D2/D3/D5 apply here.
* ``tests``    -- ``tests/`` + ``benchmarks/``: D1/D4/D6 still apply
  (tests must not depend on global RNG either), but wall-clock reads and
  ad-hoc JSON are fine.
* ``simulator`` -- ``src/repro/simulation/cluster.py``: rule D4 runs its
  *internal* audit here, cross-referencing method bodies against
  ``repro.simulation.invariants``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.analysis.findings import Finding
from repro.simulation import invariants

LIBRARY_SCOPES = frozenset({"library", "simulator"})

WALL_CLOCK_TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
    }
)
DATETIME_WALL_METHODS = frozenset({"now", "utcnow", "today"})
SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)
SET_OPERATORS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate", "reversed"})
CONTAINER_MUTATING_METHODS = frozenset(
    {"pop", "popitem", "clear", "update", "setdefault"}
)
SOLVER_RECEIVER_HINTS = frozenset(
    {"node", "nodes", "region", "regions", "binding", "bindings", "simulator", "sim"}
)
GUARDED_ATTRIBUTES = (
    invariants.GUARDED_NODE_ATTRIBUTES | invariants.GUARDED_BINDING_ATTRIBUTES
)
CHANNEL_MARKER = "__mergeable_integer_channels__"


@dataclass
class ImportMap:
    """Local names bound to the modules/functions the rules care about."""

    time_modules: set[str] = field(default_factory=set)
    time_functions: dict[str, str] = field(default_factory=dict)
    datetime_modules: set[str] = field(default_factory=set)
    datetime_classes: set[str] = field(default_factory=set)
    random_modules: set[str] = field(default_factory=set)
    random_functions: dict[str, str] = field(default_factory=dict)
    numpy_modules: set[str] = field(default_factory=set)
    numpy_random_modules: set[str] = field(default_factory=set)
    json_modules: set[str] = field(default_factory=set)
    json_functions: dict[str, str] = field(default_factory=dict)


def collect_imports(tree: ast.AST) -> ImportMap:
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.partition(".")[0]
                if alias.name == "time":
                    imports.time_modules.add(bound)
                elif alias.name == "datetime":
                    imports.datetime_modules.add(bound)
                elif alias.name == "random":
                    imports.random_modules.add(bound)
                elif alias.name == "numpy":
                    imports.numpy_modules.add(bound)
                elif alias.name == "numpy.random" and alias.asname:
                    imports.numpy_random_modules.add(alias.asname)
                elif alias.name == "json":
                    imports.json_modules.add(bound)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                if node.module == "time":
                    imports.time_functions[bound] = alias.name
                elif node.module == "random":
                    imports.random_functions[bound] = alias.name
                elif node.module == "datetime" and alias.name in {"datetime", "date"}:
                    imports.datetime_classes.add(bound)
                elif node.module == "json" and alias.name in {"dumps", "dump"}:
                    imports.json_functions[bound] = alias.name
                elif node.module == "numpy" and alias.name == "random":
                    imports.numpy_random_modules.add(bound)
    return imports


@dataclass
class ModuleContext:
    rel_path: str
    tree: ast.Module
    scopes: frozenset[str]
    imports: ImportMap

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(self.rel_path, getattr(node, "lineno", 1), rule, message)


# --------------------------------------------------------------------------
# D1: unseeded / global randomness
# --------------------------------------------------------------------------

def check_d1(ctx: ModuleContext) -> Iterator[Finding]:
    imports = ctx.imports
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id in imports.random_modules:
                if func.attr != "Random":
                    yield ctx.finding(
                        node,
                        "D1",
                        f"global RNG call random.{func.attr}(): draw from a seeded "
                        "repro.util.rng.make_rng(...) instance instead",
                    )
            elif _is_numpy_random(value, imports):
                seeded_factory = func.attr == "default_rng" and (node.args or node.keywords)
                if not seeded_factory:
                    yield ctx.finding(
                        node,
                        "D1",
                        f"numpy global RNG call np.random.{func.attr}(): use "
                        "numpy.random.default_rng(seed) and pass the generator around",
                    )
        elif isinstance(func, ast.Name) and func.id in imports.random_functions:
            target = imports.random_functions[func.id]
            if target != "Random":
                yield ctx.finding(
                    node,
                    "D1",
                    f"global RNG call random.{target} (imported as {func.id}): draw "
                    "from a seeded repro.util.rng.make_rng(...) instance instead",
                )


def _is_numpy_random(value: ast.expr, imports: ImportMap) -> bool:
    if isinstance(value, ast.Name) and value.id in imports.numpy_random_modules:
        return True
    return (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in imports.numpy_modules
    )


# --------------------------------------------------------------------------
# D2: wall-clock reads in deterministic paths
# --------------------------------------------------------------------------

_D2_REMEDY = (
    "; route measurement through repro.util.wallclock or justify with "
    "`# repro: allow(D2, reason=...)`"
)


def check_d2(ctx: ModuleContext) -> Iterator[Finding]:
    imports = ctx.imports
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name in WALL_CLOCK_TIME_FUNCTIONS:
                    yield ctx.finding(
                        node,
                        "D2",
                        f"`from time import {alias.name}` binds a wall-clock reader"
                        + _D2_REMEDY,
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                value = func.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in imports.time_modules
                    and func.attr in WALL_CLOCK_TIME_FUNCTIONS
                ):
                    yield ctx.finding(
                        node, "D2", f"wall-clock read time.{func.attr}()" + _D2_REMEDY
                    )
                elif func.attr in DATETIME_WALL_METHODS and _is_datetime_class(value, imports):
                    yield ctx.finding(
                        node,
                        "D2",
                        f"wall-clock read datetime.{func.attr}()" + _D2_REMEDY,
                    )
            elif (
                isinstance(func, ast.Name)
                and imports.time_functions.get(func.id) in WALL_CLOCK_TIME_FUNCTIONS
            ):
                yield ctx.finding(
                    node,
                    "D2",
                    f"wall-clock read {func.id}() (= time.{imports.time_functions[func.id]})"
                    + _D2_REMEDY,
                )


def _is_datetime_class(value: ast.expr, imports: ImportMap) -> bool:
    if isinstance(value, ast.Name) and value.id in imports.datetime_classes:
        return True
    return (
        isinstance(value, ast.Attribute)
        and value.attr in {"datetime", "date"}
        and isinstance(value.value, ast.Name)
        and value.value.id in imports.datetime_modules
    )


# --------------------------------------------------------------------------
# D3: iteration over unordered sets feeding order-sensitive consumers
# --------------------------------------------------------------------------

def _collect_set_names(tree: ast.AST) -> set[str]:
    """Local names that are only ever assigned set-valued expressions.

    Two passes so ``s2 = s1 | {x}`` is recognised once ``s1`` is known;
    a name ever rebound to a non-set drops out (conservative).
    """

    status: dict[str, bool] = {}
    for _ in range(2):
        known = {name for name, ok in status.items() if ok}
        status = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    is_set = _is_set_valued(node.value, known)
                    status[target.id] = status.get(target.id, True) and is_set
    return {name for name, ok in status.items() if ok}


def _is_set_valued(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SET_RETURNING_METHODS
            and _is_set_valued(func.value, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, SET_OPERATORS):
        return _is_set_valued(node.left, set_names) or _is_set_valued(node.right, set_names)
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute):
        return node.attr in invariants.ORDER_SENSITIVE_SET_ATTRIBUTES
    return False


_D3_MESSAGE = (
    "iteration order over a set is PYTHONHASHSEED-dependent; wrap the "
    "iterable in sorted(...) before it feeds ordering-sensitive output"
)


def check_d3(ctx: ModuleContext) -> Iterator[Finding]:
    set_names = _collect_set_names(ctx.tree)

    def hazardous(expr: ast.expr) -> bool:
        return _is_set_valued(expr, set_names)

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For) and hazardous(node.iter):
            yield ctx.finding(node, "D3", _D3_MESSAGE)
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if hazardous(generator.iter):
                    yield ctx.finding(node, "D3", _D3_MESSAGE)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ORDER_SENSITIVE_CONSUMERS
                and node.args
                and hazardous(node.args[0])
            ):
                yield ctx.finding(node, "D3", f"{func.id}() over a set: " + _D3_MESSAGE)
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and hazardous(node.args[0])
            ):
                yield ctx.finding(node, "D3", "str.join over a set: " + _D3_MESSAGE)


# --------------------------------------------------------------------------
# D4: the mutator audit (dirty-signature discipline)
# --------------------------------------------------------------------------

def _assignment_targets(node: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(node, ast.Assign):
        stack: list[ast.expr] = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        stack = [node.target]
    elif isinstance(node, ast.Delete):
        stack = list(node.targets)
    else:
        return
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        else:
            yield target


def _container_attr(target: ast.expr) -> str | None:
    """`...nodes[k]`-style write target -> the container attribute name."""

    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Attribute)
        and target.value.attr in invariants.SOLVER_STATE_CONTAINERS
    ):
        return target.value.attr
    return None


def _calls_in(node: ast.AST, names: frozenset[str]) -> bool:
    return any(
        isinstance(sub, ast.Call)
        and isinstance(sub.func, ast.Attribute)
        and sub.func.attr in names
        for sub in ast.walk(node)
    )


def check_d4(ctx: ModuleContext) -> Iterator[Finding]:
    if "simulator" in ctx.scopes:
        yield from _check_d4_simulator(ctx)
    else:
        yield from _check_d4_callers(ctx)


def _check_d4_simulator(ctx: ModuleContext) -> Iterator[Finding]:
    cls = next(
        (
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef) and node.name == "ClusterSimulator"
        ),
        None,
    )
    if cls is None:
        yield Finding(
            ctx.rel_path,
            1,
            "D4",
            "file is scoped `simulator` but defines no ClusterSimulator class",
        )
        return
    methods = {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for declared in sorted(invariants.DECLARED_MUTATORS):
        if declared not in methods:
            yield Finding(
                ctx.rel_path,
                cls.lineno,
                "D4",
                f"stale inventory: invariants declares mutator {declared!r} but "
                "ClusterSimulator has no such method",
            )
    for name, method in methods.items():
        if name in invariants.DIRTY_MARKERS or name in invariants.TICK_MACHINERY:
            continue
        mutation_lines: list[int] = []
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
                for target in _assignment_targets(node):
                    if _container_attr(target) is not None:
                        mutation_lines.append(node.lineno)
                    elif isinstance(target, ast.Attribute):
                        if target.attr in GUARDED_ATTRIBUTES:
                            mutation_lines.append(node.lineno)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in CONTAINER_MUTATING_METHODS
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in invariants.SOLVER_STATE_CONTAINERS
            ):
                mutation_lines.append(node.lineno)
        if not mutation_lines:
            continue
        if name not in invariants.DECLARED_MUTATORS:
            yield Finding(
                ctx.rel_path,
                method.lineno,
                "D4",
                f"ClusterSimulator.{name} mutates solver-feeding state (line"
                f" {mutation_lines[0]}) but is not declared in "
                "repro.simulation.invariants -- declare it or route through a mutator",
            )
        elif not _calls_in(
            method, invariants.DIRTY_MARKERS | invariants.DECLARED_MUTATORS
        ):
            yield Finding(
                ctx.rel_path,
                method.lineno,
                "D4",
                f"declared mutator ClusterSimulator.{name} never calls a dirty "
                "marker (invalidate_solution/_mark_dirty/_mark_structure) or a "
                "fellow declared mutator",
            )


def _receiver_hints_solver_state(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in SOLVER_RECEIVER_HINTS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in invariants.SOLVER_STATE_CONTAINERS:
            return True
    return False


def _check_d4_callers(ctx: ModuleContext) -> Iterator[Finding]:
    discharge = invariants.DIRTY_MARKERS | invariants.DECLARED_MUTATORS
    regions: list[tuple[int, int]] = []
    if _calls_in(ctx.tree, discharge):
        # Module-level code counts as one region only if the discharge call
        # is itself at module level (outside any function).
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if _calls_in(stmt, discharge):
                    regions.append((1, max(1, ctx.tree.body[-1].end_lineno or 1)))
                    break
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _calls_in(
            node, discharge
        ):
            regions.append((node.lineno, node.end_lineno or node.lineno))

    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        for target in _assignment_targets(node):
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr not in GUARDED_ATTRIBUTES:
                continue
            if target.attr in invariants.HOOKED_REGION_ATTRIBUTES:
                continue
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                continue  # other classes' own attributes (e.g. iaas VM state)
            if not _receiver_hints_solver_state(target.value):
                continue
            line = node.lineno
            if any(start <= line <= end for start, end in regions):
                continue
            yield Finding(
                ctx.rel_path,
                line,
                "D4",
                f"direct write to solver-feeding attribute .{target.attr} with no "
                "invalidate_solution()/declared-mutator call in the enclosing "
                "function -- the cached fixed-point solution goes stale",
            )


# --------------------------------------------------------------------------
# D5: non-canonical JSON
# --------------------------------------------------------------------------

def check_d5(ctx: ModuleContext) -> Iterator[Finding]:
    imports = ctx.imports
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in {"dumps", "dump"}
            and isinstance(func.value, ast.Name)
            and func.value.id in imports.json_modules
        ):
            name = func.attr
        elif isinstance(func, ast.Name) and func.id in imports.json_functions:
            name = imports.json_functions[func.id]
        if name is None:
            continue
        blessed = False
        for keyword in node.keywords:
            if keyword.arg is None:  # **kwargs splat: assume the caller knows
                blessed = True
            elif keyword.arg == "sort_keys":
                blessed = isinstance(keyword.value, ast.Constant) and keyword.value.value is True
        if not blessed:
            yield ctx.finding(
                node,
                "D5",
                f"json.{name} without sort_keys=True: dict-insertion-ordered bytes "
                "are not canonical; stores/traces/fingerprints must sort keys",
            )


# --------------------------------------------------------------------------
# D6: float accumulation into mergeable integer channels
# --------------------------------------------------------------------------

def _channel_names(cls: ast.ClassDef) -> frozenset[str] | None:
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == CHANNEL_MARKER
            and isinstance(stmt.value, (ast.Tuple, ast.List))
        ):
            names = [
                elt.value
                for elt in stmt.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
            return frozenset(names)
    return None


def _float_hazard(value: ast.expr, float_names: set[str]) -> str | None:
    for node in ast.walk(value):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return f"float literal {node.value!r}"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return "true division (/)"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "float":
            return "float() cast"
        if isinstance(node, ast.Name) and node.id in float_names:
            return f"float-typed name {node.id!r}"
    return None


def check_d6(ctx: ModuleContext) -> Iterator[Finding]:
    for cls in ast.walk(ctx.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        channels = _channel_names(cls)
        if not channels:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            float_names = {
                arg.arg
                for arg in [
                    *method.args.posonlyargs,
                    *method.args.args,
                    *method.args.kwonlyargs,
                ]
                if isinstance(arg.annotation, ast.Name) and arg.annotation.id == "float"
            }
            aliases: set[str] = set()
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                    and node.value.attr in channels
                ):
                    aliases.add(node.targets[0].id)

            def is_channel_write(target: ast.expr) -> bool:
                if not isinstance(target, ast.Subscript):
                    return False
                base = target.value
                if isinstance(base, ast.Name):
                    return base.id in aliases
                return (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                    and base.attr in channels
                )

            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                if not any(is_channel_write(t) for t in _assignment_targets(node)):
                    continue
                hazard = _float_hazard(node.value, float_names)
                if hazard is not None:
                    yield ctx.finding(
                        node,
                        "D6",
                        f"{hazard} accumulated into mergeable integer channel of "
                        f"{cls.name}: merge/scale stay bit-exact only for ints -- "
                        "quantise first (LatencySummary.WEIGHT_SCALE style)",
                    )


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RuleSpec:
    rule_id: str
    summary: str
    scopes: frozenset[str] | None  # None = every scope
    check: Callable[[ModuleContext], Iterable[Finding]]

    def applies(self, scopes: frozenset[str]) -> bool:
        return self.scopes is None or bool(self.scopes & scopes)


RULES: tuple[RuleSpec, ...] = (
    RuleSpec("D1", "unseeded / global randomness", None, check_d1),
    RuleSpec("D2", "wall-clock reads in deterministic paths", LIBRARY_SCOPES, check_d2),
    RuleSpec("D3", "unordered set iteration feeding ordered output", LIBRARY_SCOPES, check_d3),
    RuleSpec("D4", "mutator audit against the declared inventory", None, check_d4),
    RuleSpec("D5", "non-canonical JSON (missing sort_keys=True)", LIBRARY_SCOPES, check_d5),
    RuleSpec("D6", "float accumulation into mergeable integer channels", None, check_d6),
)

RULE_IDS: frozenset[str] = frozenset(spec.rule_id for spec in RULES)
