"""Reproduction of *MeT: workload aware elasticity for NoSQL* (EuroSys 2013).

The package is organised as the paper's system plus every substrate it
depends on:

* :mod:`repro.simulation` -- deterministic, time-stepped cluster simulator
  (hardware budgets, per-operation cost model, closed-loop clients).
* :mod:`repro.hdfs` -- HDFS-like block storage with replication and a
  locality index per node.
* :mod:`repro.hbase` -- a functional mini-HBase: tables, regions,
  RegionServers with memstore and LRU block cache, master, balancers and a
  key-value client API (put/get/delete/scan).
* :mod:`repro.iaas` -- an OpenStack-like IaaS provider used by the actuator
  to start and stop virtual machines.
* :mod:`repro.monitoring` -- Ganglia/JMX-like metric collectors and
  exponential smoothing.
* :mod:`repro.core` -- the MeT framework itself: Monitor, Decision Maker
  (Stages A-D, Algorithms 1-3) and Actuator, plus the node configuration
  profiles of Table 1.
* :mod:`repro.elasticity` -- the baselines used in the paper's evaluation:
  the tiramola-style autoscaler and the manual placement strategies.
* :mod:`repro.workloads` -- YCSB workloads A-F and a TPC-C (PyTPCC-like)
  workload generator.
* :mod:`repro.experiments` -- the harness that regenerates every table and
  figure of the paper's evaluation section.
"""

from repro.core.framework import MeT
from repro.core.parameters import MeTParameters
from repro.core.profiles import NODE_PROFILES, NodeProfile
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.hardware import HardwareSpec

__version__ = "1.0.0"

__all__ = [
    "MeT",
    "MeTParameters",
    "NODE_PROFILES",
    "NodeProfile",
    "ClusterSimulator",
    "HardwareSpec",
    "__version__",
]
