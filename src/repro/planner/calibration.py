"""Calibration: fitting a capacity model from observed runs.

A :class:`CalibrationModel` is the planner's picture of what one node can
do: the achieved throughput per node at which the cluster saturates, and a
monotone load->latency curve mapping per-node request rate to the p95/p99
tail (derived from the run's ``LatencySummary`` distributions, which the
campaign pipeline already reduces to per-run peak percentiles).

Models are fitted from campaign :class:`~repro.campaign.store.ResultsStore`
records -- every record contributes one operating point ``(per-node rate,
p95, p99)`` where the average node count is recovered from the billed
machine-minutes -- or from fresh seeded probe runs
(:func:`probe_records`) when no campaign store exists yet.  Both paths are
byte-deterministic: the same store (or the same probe grid and seed)
produces an identical model, fingerprinted by :meth:`CalibrationModel.fingerprint`.

The curve is *monotone by construction* (sorted by per-node rate, with a
running max applied to the latencies), which gives the planner its core
guarantee for free: predicted tail latency never improves when a fixed
demand is spread over fewer nodes, so "more nodes never predicts worse
p99" holds for every fitted model, not just well-behaved ones.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

from repro.iaas.flavors import FLAVORS, REGIONSERVER_FLAVOR, Flavor

__all__ = [
    "CalibrationModel",
    "CalibrationPoint",
    "DEFAULT_CALIBRATION",
    "fit_calibration",
    "probe_records",
]


@dataclass(frozen=True)
class CalibrationPoint:
    """One observed operating point of a single node.

    ``per_node_rate`` is the achieved throughput (simulator ops/s) divided
    by the average online node count of the run that produced it; the
    latencies are the run's peak tail percentiles at that load.
    """

    per_node_rate: float
    p95_ms: float
    p99_ms: float


@dataclass(frozen=True)
class CalibrationModel:
    """A fitted per-node capacity and load->tail-latency model.

    ``curve`` is sorted ascending by per-node rate with non-decreasing
    latencies; the last point's rate is the per-node saturation knee
    (:attr:`max_per_node_rate`).  ``base_vcpus`` records the vCPU count of
    the flavor the curve was measured on; other flavors are extrapolated
    linearly in vCPUs (a modelling assumption, flagged in predictions by
    ``flavor`` != base).
    """

    name: str
    base_flavor: str
    base_vcpus: int
    curve: tuple[CalibrationPoint, ...]

    def __post_init__(self) -> None:
        if not self.curve:
            raise ValueError("calibration curve must have at least one point")
        rates = [point.per_node_rate for point in self.curve]
        if rates != sorted(rates) or len(set(rates)) != len(rates):
            raise ValueError("calibration curve must be strictly increasing in rate")
        for field in ("p95_ms", "p99_ms"):
            values = [getattr(point, field) for point in self.curve]
            if any(b < a for a, b in zip(values, values[1:])):
                raise ValueError(f"calibration curve must be monotone in {field}")

    # ------------------------------------------------------------------ #
    # capacity
    # ------------------------------------------------------------------ #
    @property
    def max_per_node_rate(self) -> float:
        """Highest observed per-node throughput (the saturation knee)."""
        return self.curve[-1].per_node_rate

    def flavor_scale(self, flavor: str | Flavor | None = None) -> float:
        """Capacity of ``flavor`` relative to the calibrated base flavor."""
        if flavor is None:
            return 1.0
        if isinstance(flavor, Flavor):
            resolved = flavor
        elif flavor == REGIONSERVER_FLAVOR.name:
            resolved = REGIONSERVER_FLAVOR
        else:
            try:
                resolved = FLAVORS[flavor]
            except KeyError:
                raise KeyError(
                    f"unknown flavor {flavor!r}; known: "
                    f"{sorted(FLAVORS) + [REGIONSERVER_FLAVOR.name]}"
                ) from None
        return resolved.vcpus / self.base_vcpus

    def flavor_capacity(self, flavor: str | Flavor | None = None) -> float:
        """Saturation throughput (ops/s) of one node of ``flavor``."""
        return self.max_per_node_rate * self.flavor_scale(flavor)

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    def _interpolate(self, per_node_rate: float, field: str) -> float:
        curve = self.curve
        if per_node_rate > curve[-1].per_node_rate:
            return math.inf  # beyond the observed envelope: infeasible
        if per_node_rate <= curve[0].per_node_rate:
            return getattr(curve[0], field)
        for lo, hi in zip(curve, curve[1:]):
            if per_node_rate <= hi.per_node_rate:
                span = hi.per_node_rate - lo.per_node_rate
                frac = (per_node_rate - lo.per_node_rate) / span
                a, b = getattr(lo, field), getattr(hi, field)
                return a + frac * (b - a)
        return math.inf  # unreachable; defensive

    def predict_p95(
        self, rate: float, nodes: int, flavor: str | Flavor | None = None
    ) -> float:
        """Predicted peak p95 (ms) serving ``rate`` ops/s on ``nodes`` nodes.

        ``math.inf`` when the per-node load exceeds the calibrated envelope.
        """
        return self._predict(rate, nodes, flavor, "p95_ms")

    def predict_p99(
        self, rate: float, nodes: int, flavor: str | Flavor | None = None
    ) -> float:
        """Predicted peak p99 (ms); ``math.inf`` beyond the envelope."""
        return self._predict(rate, nodes, flavor, "p99_ms")

    def _predict(
        self, rate: float, nodes: int, flavor: str | Flavor | None, field: str
    ) -> float:
        if nodes < 1:
            return math.inf
        per_node = rate / (nodes * self.flavor_scale(flavor))
        return self._interpolate(per_node, field)

    def nodes_for(
        self,
        target_rate: float,
        p95_ceiling_ms: float | None = None,
        p99_ceiling_ms: float | None = None,
        flavor: str | Flavor | None = None,
        max_nodes: int = 512,
    ) -> int | None:
        """Minimal node count serving ``target_rate`` under the ceilings.

        ``None`` when no count up to ``max_nodes`` satisfies every bound.
        Because the curve is monotone, the first satisfying count is found
        by scanning upward from the capacity floor.
        """
        if target_rate <= 0.0:
            return 1
        capacity = self.flavor_capacity(flavor)
        floor = max(1, math.ceil(target_rate / capacity - 1e-9))
        for nodes in range(floor, max_nodes + 1):
            if p95_ceiling_ms is not None:
                if self.predict_p95(target_rate, nodes, flavor) > p95_ceiling_ms:
                    continue
            if p99_ceiling_ms is not None:
                if self.predict_p99(target_rate, nodes, flavor) > p99_ceiling_ms:
                    continue
            return nodes
        return None

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        """Canonical JSON (sorted keys, fixed layout) for fingerprinting."""
        payload = {
            "name": self.name,
            "base_flavor": self.base_flavor,
            "base_vcpus": self.base_vcpus,
            "curve": [
                {
                    "per_node_rate": point.per_node_rate,
                    "p95_ms": point.p95_ms,
                    "p99_ms": point.p99_ms,
                }
                for point in self.curve
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "CalibrationModel":
        payload = json.loads(text)
        return cls(
            name=payload["name"],
            base_flavor=payload["base_flavor"],
            base_vcpus=payload["base_vcpus"],
            curve=tuple(
                CalibrationPoint(
                    per_node_rate=point["per_node_rate"],
                    p95_ms=point["p95_ms"],
                    p99_ms=point["p99_ms"],
                )
                for point in payload["curve"]
            ),
        )

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON: the byte-determinism handle."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# fitting
# ---------------------------------------------------------------------- #
def _scenario_duration_minutes(scenario: str, durations: dict[str, float] | None) -> float:
    if durations and scenario in durations:
        return durations[scenario]
    # Imported lazily: the catalog pulls in the assertion DSL and through it
    # the SLA layer, and this module must stay importable from either side.
    from repro.scenarios.catalog import CANNED_SCENARIOS

    try:
        spec = CANNED_SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"record references scenario {scenario!r} which is not in the "
            "catalog; pass its duration via the durations= mapping"
        ) from None
    return spec.duration_seconds / 60.0


def fit_calibration(
    records,
    name: str = "fitted",
    base_flavor: Flavor = REGIONSERVER_FLAVOR,
    durations: dict[str, float] | None = None,
) -> CalibrationModel:
    """Fit a :class:`CalibrationModel` from campaign-style records.

    ``records`` are dicts with the campaign store's per-cell keys; each
    contributes one operating point.  The average online node count of a
    run is recovered as ``machine_minutes / duration_minutes``, where the
    duration comes from the record's own ``duration_minutes`` key if
    present, then the ``durations`` override mapping, then the scenario
    catalog.  Records without tail-latency data are skipped.

    The fit is a pure function of the record values: points are sorted by
    per-node rate, duplicates merged by max latency, and latencies forced
    monotone with a running max -- so the same store always yields the
    same model (see :meth:`CalibrationModel.fingerprint`).
    """
    observed: dict[float, tuple[float, float]] = {}
    for record in records:
        p95 = record.get("p95_ms")
        p99 = record.get("p99_ms")
        machine_minutes = record.get("machine_minutes", 0.0)
        throughput = record.get("mean_throughput", 0.0)
        if p95 is None or p99 is None or machine_minutes <= 0.0 or throughput <= 0.0:
            continue
        duration = record.get("duration_minutes")
        if duration is None:
            duration = _scenario_duration_minutes(record["scenario"], durations)
        avg_nodes = machine_minutes / duration
        if avg_nodes <= 0.0:
            continue
        per_node_rate = throughput / avg_nodes
        prior = observed.get(per_node_rate)
        if prior is None:
            observed[per_node_rate] = (p95, p99)
        else:
            observed[per_node_rate] = (max(prior[0], p95), max(prior[1], p99))
    if not observed:
        raise ValueError("no usable records: need tail latencies and machine-minutes")
    points = []
    running_p95 = running_p99 = 0.0
    for rate in sorted(observed):
        p95, p99 = observed[rate]
        running_p95 = max(running_p95, p95)
        running_p99 = max(running_p99, p99)
        points.append(
            CalibrationPoint(per_node_rate=rate, p95_ms=running_p95, p99_ms=running_p99)
        )
    return CalibrationModel(
        name=name,
        base_flavor=base_flavor.name,
        base_vcpus=base_flavor.vcpus,
        curve=tuple(points),
    )


def probe_records(
    scenarios: tuple[str, ...] = ("tpcc_steady", "mixed_tenancy"),
    loads: tuple[float, ...] = (0.4, 0.7, 1.0, 1.5, 2.0, 3.0, 4.0),
    controller: str = "none",
    kernel: str | None = None,
    master_seed: int = 0,
) -> list[dict]:
    """Run fresh seeded probe cells and return campaign-style records.

    Probes run under ``controller="none"`` by default -- a fixed-size
    cluster swept across load multipliers gives clean per-node operating
    points (the node count never moves mid-run, so machine-minutes divide
    exactly).  Each cell reseeds through the campaign's
    :func:`~repro.campaign.grid.derive_seed`, so the probe sweep is as
    byte-deterministic as a campaign store.
    """
    from dataclasses import replace

    from repro.campaign.grid import ScaleSpec, apply_scale, derive_seed
    from repro.scenarios.catalog import CANNED_SCENARIOS
    from repro.scenarios.runner import DEFAULT_KERNEL, run_scenario
    from repro.sla.scorecard import scorecard_row

    records: list[dict] = []
    for scenario in scenarios:
        base = CANNED_SCENARIOS[scenario]
        for load in loads:
            scale = ScaleSpec(name=f"probe-{load:g}x", load=load)
            seed = derive_seed(master_seed, scenario, scale.name, "s0")
            spec = replace(apply_scale(base, scale), seed=seed)
            result = run_scenario(
                spec,
                controller=controller,
                kernel=kernel or DEFAULT_KERNEL,
                keep_simulator=False,
                record_tenant_series=True,
            )
            row = scorecard_row(result)
            records.append(
                {
                    "scenario": scenario,
                    "scale": scale.name,
                    "controller": controller,
                    "seed": seed,
                    "duration_minutes": spec.duration_seconds / 60.0,
                    "mean_throughput": row.mean_throughput,
                    "machine_minutes": row.machine_minutes,
                    "p95_ms": row.p95_ms,
                    "p99_ms": row.p99_ms,
                }
            )
    return records


#: Default model: fitted from the seeded probe sweep above
#: (``fit_calibration(probe_records(), name="catalog-probe-v1")`` at master
#: seed 0 -- regenerate with ``scripts/plan.py --recalibrate`` after kernel
#: or catalog changes; a regression test pins this equality).  Baked in so
#: planner-controlled scenario runs and ``scripts/plan.py`` need no
#: campaign store to exist.
DEFAULT_CALIBRATION = CalibrationModel(
    name="catalog-probe-v1",
    base_flavor=REGIONSERVER_FLAVOR.name,
    base_vcpus=REGIONSERVER_FLAVOR.vcpus,
    curve=(
        CalibrationPoint(per_node_rate=320.0013020836439, p95_ms=0.8413951416451948, p99_ms=0.8413951416451948),
        CalibrationPoint(per_node_rate=559.9778645830035, p95_ms=0.9440608762859236, p99_ms=0.9440608762859236),
        CalibrationPoint(per_node_rate=799.9544270826541, p95_ms=1.0592537251772887, p99_ms=1.0592537251772887),
        CalibrationPoint(per_node_rate=988.9846026235774, p95_ms=1.0592537251772887, p99_ms=1.0592537251772887),
        CalibrationPoint(per_node_rate=1199.9153645827028, p95_ms=1.188502227437019, p99_ms=1.188502227437019),
        CalibrationPoint(per_node_rate=1599.8763020824115, p95_ms=1.333521432163324, p99_ms=1.333521432163324),
        CalibrationPoint(per_node_rate=1730.6453734833058, p95_ms=1.333521432163324, p99_ms=1.333521432163324),
        CalibrationPoint(per_node_rate=2116.990238615487, p95_ms=1.6788040181225607, p99_ms=1.6788040181225607),
        CalibrationPoint(per_node_rate=2212.1864777802643, p95_ms=1.8836490894898001, p99_ms=1.8836490894898001),
        CalibrationPoint(per_node_rate=2472.3061443430347, p95_ms=1.8836490894898001, p99_ms=1.8836490894898001),
        CalibrationPoint(per_node_rate=3114.0330194140315, p95_ms=1.8836490894898001, p99_ms=1.8836490894898001),
        CalibrationPoint(per_node_rate=3219.47294541056, p95_ms=2.1134890398366477, p99_ms=2.1134890398366477),
        CalibrationPoint(per_node_rate=3248.088650743601, p95_ms=2.6607250597988084, p99_ms=2.6607250597988084),
        CalibrationPoint(per_node_rate=3265.4002028593186, p95_ms=2.6607250597988084, p99_ms=2.6607250597988084),
    ),
)
