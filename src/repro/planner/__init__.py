"""Capacity planning: calibration, sizing/costing, and a planning controller.

The scorecard answers "which controller reacted better"; this package
answers the forward question a deployment actually starts from -- *how many
nodes for N ops/s (or tpmC) at a p99 SLO, and what does a month cost?* --
and then closes the loop by turning the same model into a controller.

Three layers:

* :mod:`repro.planner.calibration` -- :class:`CalibrationModel`, fitted
  from campaign :class:`~repro.campaign.store.ResultsStore` records or
  fresh seeded probe runs: per-node saturation throughput plus a monotone
  load->p95/p99 curve.  Byte-deterministic given the same inputs.
* :mod:`repro.planner.plan` -- :func:`plan_capacity` /
  :class:`CapacityPlan`: minimal node counts under tail ceilings, priced
  per flavor x pricing tier x region through the
  :class:`~repro.sla.cost.PricingModel` multipliers (``scripts/plan.py``
  is the CLI).
* :mod:`repro.planner.controller` -- :class:`PlannerController`, the third
  controller in the catalog matchup: model-predictive scaling under a
  declared hourly cost budget, with event-kernel ``next_wakeup`` support.
"""

from repro.planner.calibration import (
    DEFAULT_CALIBRATION,
    CalibrationModel,
    CalibrationPoint,
    fit_calibration,
    probe_records,
)
from repro.planner.controller import PlannerController, PlannerPolicy
from repro.planner.plan import (
    MINUTES_PER_MONTH,
    CapacityPlan,
    PlanOption,
    plan_capacity,
)

__all__ = [
    "DEFAULT_CALIBRATION",
    "MINUTES_PER_MONTH",
    "CalibrationModel",
    "CalibrationPoint",
    "CapacityPlan",
    "PlanOption",
    "PlannerController",
    "PlannerPolicy",
    "fit_calibration",
    "plan_capacity",
    "probe_records",
]
