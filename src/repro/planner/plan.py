"""Capacity planning: sizing queries and monthly cost envelopes.

Turns a fitted :class:`~repro.planner.calibration.CalibrationModel` into
answers to the forward question the scorecard never asks: *how many nodes
for N ops/s (or tpmC) at a p99 SLO, and what does a month of that cost?*

:func:`plan_capacity` enumerates one :class:`PlanOption` per
(flavor, pricing tier, region) combination, sizing each with
``CalibrationModel.nodes_for`` under the declared tail ceilings plus a
demand headroom, and pricing the result through the
:class:`~repro.sla.cost.PricingModel` tier/region multipliers.  The
returned :class:`CapacityPlan` is pure data with a canonical JSON form, so
planning is byte-deterministic given the same model and query.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.iaas.flavors import FLAVORS, REGIONSERVER_FLAVOR
from repro.planner.calibration import CalibrationModel
from repro.sla.cost import DEFAULT_PRICING, PricingModel
from repro.sla.units import OPS_PER_SECOND, from_native_rate

__all__ = ["CapacityPlan", "PlanOption", "MINUTES_PER_MONTH", "plan_capacity"]

#: Billing month: 30 days of machine-minutes.
MINUTES_PER_MONTH = 30 * 24 * 60


@dataclass(frozen=True)
class PlanOption:
    """One sized and priced way to serve the target."""

    flavor: str
    tier: str
    region: str
    nodes: int
    predicted_p95_ms: float
    predicted_p99_ms: float
    #: Fraction of the option's total capacity the (headroom-inflated)
    #: demand occupies.
    utilization: float
    hourly_cost: float
    monthly_cost: float
    feasible: bool

    def as_dict(self) -> dict:
        return {
            "flavor": self.flavor,
            "tier": self.tier,
            "region": self.region,
            "nodes": self.nodes,
            "predicted_p95_ms": _jsonable(self.predicted_p95_ms),
            "predicted_p99_ms": _jsonable(self.predicted_p99_ms),
            "utilization": self.utilization,
            "hourly_cost": self.hourly_cost,
            "monthly_cost": self.monthly_cost,
            "feasible": self.feasible,
        }


def _jsonable(value: float) -> float | None:
    return None if math.isinf(value) else value


@dataclass(frozen=True)
class CapacityPlan:
    """The full answer to one sizing query.

    ``options`` are sorted cheapest-first (feasible before infeasible);
    :meth:`best` is the cheapest feasible option.
    """

    target_rate: float
    unit: str
    native_target: float
    p95_ceiling_ms: float | None
    p99_ceiling_ms: float | None
    headroom: float
    model_fingerprint: str
    pricing: str
    options: tuple[PlanOption, ...]

    def best(self) -> PlanOption | None:
        """Cheapest feasible option, or ``None`` if nothing fits."""
        for option in self.options:
            if option.feasible:
                return option
        return None

    def to_json(self) -> str:
        """Canonical JSON (sorted keys): the byte-determinism handle."""
        payload = {
            "target_rate": self.target_rate,
            "unit": self.unit,
            "native_target": self.native_target,
            "p95_ceiling_ms": self.p95_ceiling_ms,
            "p99_ceiling_ms": self.p99_ceiling_ms,
            "headroom": self.headroom,
            "model_fingerprint": self.model_fingerprint,
            "pricing": self.pricing,
            "options": [option.as_dict() for option in self.options],
        }
        return json.dumps(payload, sort_keys=True, indent=1)

    def render(self, monthly: bool = True, limit: int | None = None) -> str:
        """The sizing table ``scripts/plan.py`` prints."""
        from repro.experiments.reporting import format_table

        rows = []
        options = self.options if limit is None else self.options[:limit]
        for option in options:
            p99 = option.predicted_p99_ms
            row = [
                option.flavor,
                option.tier,
                option.region,
                str(option.nodes) if option.feasible else "-",
                "inf" if math.isinf(p99) else f"{p99:.2f}",
                f"{option.utilization * 100.0:.0f}%" if option.feasible else "-",
                f"{option.hourly_cost:.3f}" if option.feasible else "-",
            ]
            if monthly:
                row.append(f"{option.monthly_cost:,.2f}" if option.feasible else "-")
            row.append("yes" if option.feasible else "NO")
            rows.append(row)
        headers = ["flavor", "tier", "region", "nodes", "p99-ms", "util", "cost/h"]
        if monthly:
            headers.append("cost/month")
        headers.append("fits")
        return format_table(headers, rows)


def plan_capacity(
    model: CalibrationModel,
    target_rate: float,
    unit: str = OPS_PER_SECOND,
    p95_ceiling_ms: float | None = None,
    p99_ceiling_ms: float | None = None,
    pricing: PricingModel = DEFAULT_PRICING,
    flavors: tuple[str, ...] | None = None,
    tiers: tuple[str, ...] | None = None,
    regions: tuple[str, ...] | None = None,
    headroom: float = 0.15,
    max_nodes: int = 512,
) -> CapacityPlan:
    """Size and price every (flavor, tier, region) option for a target.

    ``target_rate`` is stated in ``unit`` (``ops/s`` or any registered
    native unit such as ``tpmC``) and converted to simulator ops/s before
    sizing.  ``headroom`` inflates the demand the plan must absorb without
    breaching, so a plan sized here survives moderate forecast error.
    """
    if target_rate <= 0.0:
        raise ValueError("target rate must be positive")
    if not 0.0 <= headroom < 1.0:
        raise ValueError("headroom must be in [0, 1)")
    native_target = target_rate
    ops_target = from_native_rate(unit, target_rate)
    demand = ops_target * (1.0 + headroom)
    flavor_names = flavors or tuple(sorted(FLAVORS)) + (REGIONSERVER_FLAVOR.name,)
    tier_names = tiers or tuple(name for name, _ in pricing.tiers)
    region_names = regions or tuple(name for name, _ in pricing.regions)
    options: list[PlanOption] = []
    for flavor in flavor_names:
        nodes = model.nodes_for(
            demand,
            p95_ceiling_ms=p95_ceiling_ms,
            p99_ceiling_ms=p99_ceiling_ms,
            flavor=flavor,
            max_nodes=max_nodes,
        )
        feasible = nodes is not None
        sized = nodes if feasible else max_nodes
        p95 = model.predict_p95(demand, sized, flavor)
        p99 = model.predict_p99(demand, sized, flavor)
        capacity = model.flavor_capacity(flavor) * sized
        utilization = demand / capacity if capacity > 0.0 else math.inf
        for tier in tier_names:
            for region in region_names:
                minute_rate = pricing.rate_for(flavor, tier=tier, region=region)
                hourly = sized * minute_rate * 60.0
                monthly = sized * minute_rate * MINUTES_PER_MONTH
                options.append(
                    PlanOption(
                        flavor=flavor,
                        tier=tier,
                        region=region,
                        nodes=sized,
                        predicted_p95_ms=p95,
                        predicted_p99_ms=p99,
                        utilization=utilization,
                        hourly_cost=hourly,
                        monthly_cost=monthly,
                        feasible=feasible,
                    )
                )
    options.sort(
        key=lambda option: (
            not option.feasible,
            option.monthly_cost,
            option.flavor,
            option.tier,
            option.region,
        )
    )
    return CapacityPlan(
        target_rate=target_rate,
        unit=unit,
        native_target=native_target,
        p95_ceiling_ms=p95_ceiling_ms,
        p99_ceiling_ms=p99_ceiling_ms,
        headroom=headroom,
        model_fingerprint=model.fingerprint(),
        pricing=pricing.name,
        options=tuple(options),
    )
