"""The planner-backed controller: model-predictive, budget-capped scaling.

Where MeT reasons from workload-aware heuristics and Tiramola from system
thresholds, :class:`PlannerController` closes the loop through the fitted
:class:`~repro.planner.calibration.CalibrationModel`: it measures the
cluster's *served* request rate, asks the model for the minimal node count
whose predicted p99 stays under the SLO ceiling, and converges toward it
one node per decision -- scaling up when the model predicts a tail breach,
scaling down when the model says the demand (plus a hysteresis margin)
still fits on fewer nodes, i.e. when headroom is paid-for-but-unused.

An hourly cost budget caps the spend: the controller never provisions more
nodes than the budget buys at the pricing model's per-node rate, so its
objective is explicitly "buy down predicted violation-minutes with at most
this much money" rather than "meet the SLO at any price".

Sampling follows the incumbents' windowing semantics (bounded window,
reset on decision, cooldown between actions) and ``next_wakeup`` bounds
how far the event kernel may fast-forward, so quiescence skipping stays
active under the planner exactly as under MeT and Tiramola.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interfaces import ClusterBackend
from repro.elasticity.autoscaler import Autoscaler, AutoscalerAction
from repro.hbase.config import DEFAULT_HOMOGENEOUS, RegionServerConfig
from repro.iaas.flavors import REGIONSERVER_FLAVOR
from repro.planner.calibration import DEFAULT_CALIBRATION, CalibrationModel
from repro.sla.cost import DEFAULT_PRICING

__all__ = ["PlannerController", "PlannerPolicy", "planner_policy_for_spec"]


@dataclass(frozen=True)
class PlannerPolicy:
    """Declared objectives and cadence of the planner controller.

    Attributes:
        p99_ceiling_ms: tail-latency SLO the model plans against.
        hourly_budget: max cluster spend per hour (``None`` = uncapped);
            with the pricing rate this fixes the most nodes the planner
            may keep provisioned.
        headroom: demand inflation applied before sizing, so the plan
            absorbs forecast error without breaching.
        scale_down_margin: extra demand inflation a *smaller* cluster must
            still absorb before the planner gives a node back -- the
            hysteresis gap that stops add/remove flapping.
        monitor_period_seconds: served-rate sampling period.
        decision_samples: samples per decision window.
        cooldown_seconds: minimum time between scaling actions.
        min_nodes / max_nodes: cluster envelope.
        node_hourly_rate: price of one node-hour (defaults to the default
            pricing model's RegionServer rate).
    """

    p99_ceiling_ms: float = 4.0
    hourly_budget: float | None = 0.25
    headroom: float = 0.15
    scale_down_margin: float = 0.25
    monitor_period_seconds: float = 30.0
    decision_samples: int = 6
    cooldown_seconds: float = 180.0
    min_nodes: int = 1
    max_nodes: int = 64
    node_hourly_rate: float = DEFAULT_PRICING.rate_for(REGIONSERVER_FLAVOR.name) * 60.0

    def affordable_nodes(self) -> int:
        """Most nodes the hourly budget buys (``max_nodes`` when uncapped)."""
        if self.hourly_budget is None or self.node_hourly_rate <= 0.0:
            return self.max_nodes
        return max(self.min_nodes, int(self.hourly_budget / self.node_hourly_rate))


def planner_policy_for_spec(spec) -> PlannerPolicy:
    """Derive the planner's policy from a scenario spec.

    The tail ceiling comes from the spec's own SLOs -- the tightest
    declared p99 ceiling, falling back to the tightest mean-latency
    ceiling, falling back to the policy default -- so the planner plans
    against exactly the promise the scenario scores it on.  Cadence
    (monitor period, window, cooldown) and the node envelope mirror what
    MeT and Tiramola get from the same spec, keeping the matchup fair.
    """
    defaults = PlannerPolicy()
    p99 = [slo.p99_ceiling_ms for slo in spec.slos if slo.p99_ceiling_ms is not None]
    mean = [
        slo.latency_ceiling_ms for slo in spec.slos if slo.latency_ceiling_ms is not None
    ]
    if p99:
        ceiling = min(p99)
    elif mean:
        ceiling = min(mean)
    else:
        ceiling = defaults.p99_ceiling_ms
    return PlannerPolicy(
        p99_ceiling_ms=ceiling,
        monitor_period_seconds=spec.monitor_period_seconds,
        decision_samples=spec.decision_samples,
        cooldown_seconds=spec.cooldown_seconds,
        min_nodes=1,
        max_nodes=spec.max_nodes,
    )


class PlannerController(Autoscaler):
    """Model-predictive autoscaler planning against a calibrated model."""

    def __init__(
        self,
        backend: ClusterBackend,
        model: CalibrationModel | None = None,
        policy: PlannerPolicy | None = None,
        node_config: RegionServerConfig | None = None,
    ) -> None:
        super().__init__(backend)
        self.model = model or DEFAULT_CALIBRATION
        self.policy = policy or PlannerPolicy()
        self.node_config = (node_config or DEFAULT_HOMOGENEOUS).validate()
        self._window: list[float] = []
        self._last_total: float | None = None
        self._last_total_time: float | None = None
        self._last_sample_time: float | None = None
        self._last_action_time: float | None = None
        self._last_budget_block: int | None = None

    # ------------------------------------------------------------------ #
    # controller loop
    # ------------------------------------------------------------------ #
    def step(self, now: float) -> None:
        """Sample the served rate; converge toward the model's node count."""
        if not self._sample_due(now):
            return
        self._sample(now)
        if len(self._window) < self.policy.decision_samples:
            return
        if self._in_cooldown(now):
            return
        demand = max(self._window)
        self._window = []
        online = self.backend.online_node_names()
        if not online:
            return
        self._decide(now, demand, online)

    def next_wakeup(self, now: float) -> float:
        """Earliest simulated time at which :meth:`step` may do real work."""
        if self._last_sample_time is None:
            return now
        return self._last_sample_time + self.policy.monitor_period_seconds - 1e-9

    # ------------------------------------------------------------------ #
    # decision
    # ------------------------------------------------------------------ #
    def _decide(self, now: float, demand: float, online: list[str]) -> None:
        policy = self.policy
        inflated = demand * (1.0 + policy.headroom)
        wanted = self.model.nodes_for(
            inflated,
            p99_ceiling_ms=policy.p99_ceiling_ms,
            flavor=self.model.base_flavor,
            max_nodes=policy.max_nodes,
        )
        if wanted is None:
            # Demand exceeds what max_nodes can serve under the ceiling:
            # provision everything the envelope (and budget) allows.
            wanted = policy.max_nodes
        affordable = policy.affordable_nodes()
        target = max(policy.min_nodes, min(wanted, affordable, policy.max_nodes))
        count = len(online)
        if target > count:
            predicted = self.model.predict_p99(inflated, count, self.model.base_flavor)
            name = self.backend.add_node(self.node_config, "default")
            self._last_action_time = now
            self._last_budget_block = None
            self.log.record(
                now,
                AutoscalerAction.ADD_NODE,
                node=name,
                detail=(
                    f"predicted p99 {self._fmt_ms(predicted)} at {count} nodes "
                    f"(ceiling {policy.p99_ceiling_ms:g}ms); target {target}"
                ),
            )
        elif wanted > affordable and wanted > count:
            # The model wants more than the budget buys; record the refusal
            # once per distinct ask so the trade-off is visible in traces
            # without flooding them every decision period.
            if self._last_budget_block != wanted:
                self._last_budget_block = wanted
                self.log.record(
                    now,
                    AutoscalerAction.NONE,
                    detail=(
                        f"budget {policy.hourly_budget:g}/h caps cluster at "
                        f"{affordable} nodes; model wants {wanted}"
                    ),
                )
        elif target < count and count > policy.min_nodes:
            # Only shrink when a smaller cluster still absorbs the demand
            # plus the hysteresis margin -- paid-for-but-unused headroom.
            guarded = demand * (1.0 + policy.headroom + policy.scale_down_margin)
            predicted = self.model.predict_p99(
                guarded, count - 1, self.model.base_flavor
            )
            if predicted <= policy.p99_ceiling_ms:
                victim = self._least_loaded_node(online)
                if victim is not None:
                    self.backend.remove_node(victim)
                    self._last_action_time = now
                    self._last_budget_block = None
                    self.log.record(
                        now,
                        AutoscalerAction.REMOVE_NODE,
                        node=victim,
                        detail=(
                            f"predicted p99 {self._fmt_ms(predicted)} at "
                            f"{count - 1} nodes; unused headroom"
                        ),
                    )

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _sample_due(self, now: float) -> bool:
        if self._last_sample_time is None:
            return True
        return now - self._last_sample_time >= self.policy.monitor_period_seconds - 1e-9

    def _sample(self, now: float) -> None:
        """Record one served-rate observation from the partition counters.

        The backend's partition stats are cumulative reads/writes/scans per
        region; successive totals divide by wall-clock into the cluster's
        *served* ops/s.  Under saturation this under-reports offered demand,
        but the calibrated curve maps served per-node rate to tail latency,
        so saturation still surfaces as a predicted breach.
        """
        self._last_sample_time = now
        total = 0.0
        for stats in self.backend.partition_stats().values():
            total += stats.get("reads", 0.0) + stats.get("writes", 0.0) + stats.get(
                "scans", 0.0
            )
        if self._last_total is not None and now > self._last_total_time:
            elapsed = now - self._last_total_time
            rate = max(0.0, total - self._last_total) / elapsed
            window = self.policy.decision_samples
            self._window.append(rate)
            if len(self._window) > window:
                del self._window[: len(self._window) - window]
        self._last_total = total
        self._last_total_time = now

    def _least_loaded_node(self, online: list[str]) -> str | None:
        loads = {}
        for name in online:
            metrics = self.backend.node_system_metrics(name)
            loads[name] = max(metrics.get("cpu", 0.0), metrics.get("io_wait", 0.0))
        if not loads:
            return None
        return min(sorted(loads), key=loads.get)

    def _in_cooldown(self, now: float) -> bool:
        if self._last_action_time is None:
            return False
        return now - self._last_action_time < self.policy.cooldown_seconds

    @staticmethod
    def _fmt_ms(value: float) -> str:
        return "inf" if value == float("inf") else f"{value:.2f}ms"
