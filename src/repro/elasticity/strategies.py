"""The manual placement and configuration strategies of Section 3.3.

* **Random-Homogeneous** -- HBase's out-of-the-box behaviour: the random
  balancer evens out region *counts* only, and every node runs the same
  configuration (60/40 split of the allowed heap share between block cache
  and memstore).
* **Manual-Homogeneous** -- hand-balanced data placement (hot partitions
  spread apart so the per-node request counts are even), still with
  homogeneous configurations.  The paper found it by exhaustive search; here
  it is computed with the same LPT heuristic MeT uses, which yields the
  balanced placement the search converges to.
* **Manual-Heterogeneous** -- partitions clustered by access pattern, node
  groups sized proportionally to the partitions they hold, and each node
  configured with the Table 1 profile of its group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import assign_partitions
from repro.core.classification import (
    AccessPattern,
    ClassifiedPartition,
    classify_partition,
)
from repro.core.grouping import max_partitions_per_node, nodes_per_group
from repro.core.profiles import profile_for
from repro.hbase.balancer import RandomBalancer
from repro.hbase.config import DEFAULT_HOMOGENEOUS, RegionServerConfig


@dataclass(frozen=True)
class PartitionWorkload:
    """Expected request mix of one data partition, used for manual placement."""

    partition_id: str
    reads: float = 0.0
    writes: float = 0.0
    scans: float = 0.0
    size_bytes: float = 0.0

    @property
    def total_requests(self) -> float:
        """Total expected requests."""
        return self.reads + self.writes + self.scans

    def classified(self, threshold: float = 0.60) -> ClassifiedPartition:
        """Classify this partition by its expected access pattern."""
        pattern = classify_partition(self.reads, self.writes, self.scans, threshold)
        return ClassifiedPartition(
            partition_id=self.partition_id,
            pattern=pattern,
            requests=self.total_requests,
            size_bytes=self.size_bytes,
        )


@dataclass
class PlacementPlan:
    """A complete cluster layout: per-node configuration and partition sets."""

    name: str
    node_configs: dict[str, RegionServerConfig] = field(default_factory=dict)
    node_profiles: dict[str, str] = field(default_factory=dict)
    assignment: dict[str, str] = field(default_factory=dict)

    def partitions_on(self, node: str) -> list[str]:
        """Partitions placed on ``node``."""
        return sorted(p for p, n in self.assignment.items() if n == node)

    def validate(self, partitions: list[str], nodes: list[str]) -> None:
        """Check the plan covers every partition and only known nodes."""
        missing = set(partitions) - set(self.assignment)
        if missing:
            raise ValueError(f"plan {self.name!r} leaves partitions unassigned: {sorted(missing)}")
        unknown = set(self.assignment.values()) - set(nodes)
        if unknown:
            raise ValueError(f"plan {self.name!r} uses unknown nodes: {sorted(unknown)}")


def random_homogeneous(
    partitions: list[PartitionWorkload],
    nodes: list[str],
    seed: int = 0,
    config: RegionServerConfig | None = None,
) -> PlacementPlan:
    """The default HBase layout: random placement, identical configurations."""
    balancer = RandomBalancer(seed=seed)
    assignment = balancer.assign([p.partition_id for p in partitions], list(nodes))
    node_config = (config or DEFAULT_HOMOGENEOUS).validate()
    return PlacementPlan(
        name="random-homogeneous",
        node_configs={node: node_config for node in nodes},
        node_profiles={node: "default" for node in nodes},
        assignment=assignment,
    )


def manual_homogeneous(
    partitions: list[PartitionWorkload],
    nodes: list[str],
    config: RegionServerConfig | None = None,
) -> PlacementPlan:
    """Hand-balanced placement: even request load, homogeneous configuration.

    Mirrors the placement the paper found by exhaustive search: hot data
    partitions are dispersed as much as possible (a workload's partitions are
    spread over distinct nodes) while keeping the per-node request counts
    even.  Partitions are placed workload by workload (heaviest first); each
    partition goes to the node that currently hosts the fewest partitions of
    the same workload, breaking ties by total request load.
    """
    if not nodes:
        raise ValueError("cannot place partitions on an empty node list")
    cap = max_partitions_per_node(len(partitions), len(nodes))
    prefix = {p.partition_id: p.partition_id.split(":", 1)[0] for p in partitions}
    by_workload: dict[str, list[PartitionWorkload]] = {}
    for partition in partitions:
        by_workload.setdefault(prefix[partition.partition_id], []).append(partition)
    workload_order = sorted(
        by_workload,
        key=lambda w: -sum(p.total_requests for p in by_workload[w]),
    )
    load = {node: 0.0 for node in nodes}
    counts = {node: 0 for node in nodes}
    per_workload_counts = {node: {w: 0 for w in by_workload} for node in nodes}
    assignment: dict[str, str] = {}
    for workload in workload_order:
        members = sorted(by_workload[workload], key=lambda p: -p.total_requests)
        for partition in members:
            candidates = [n for n in nodes if counts[n] < cap] or list(nodes)
            target = min(
                candidates,
                key=lambda n: (per_workload_counts[n][workload], load[n], n),
            )
            assignment[partition.partition_id] = target
            load[target] += partition.total_requests
            counts[target] += 1
            per_workload_counts[target][workload] += 1
    node_config = (config or DEFAULT_HOMOGENEOUS).validate()
    return PlacementPlan(
        name="manual-homogeneous",
        node_configs={node: node_config for node in nodes},
        node_profiles={node: "default" for node in nodes},
        assignment=assignment,
    )


def manual_heterogeneous(
    partitions: list[PartitionWorkload],
    nodes: list[str],
    classification_threshold: float = 0.60,
) -> PlacementPlan:
    """Workload-aware placement with per-group node configurations (Table 1)."""
    classified = [p.classified(classification_threshold) for p in partitions]
    groups: dict[AccessPattern, list[ClassifiedPartition]] = {}
    for partition in classified:
        groups.setdefault(partition.pattern, []).append(partition)
    allocation = nodes_per_group(groups, len(nodes))

    plan = PlacementPlan(name="manual-heterogeneous")
    remaining_nodes = list(nodes)
    for pattern, node_count in allocation.items():
        group_nodes = remaining_nodes[:node_count]
        remaining_nodes = remaining_nodes[node_count:]
        members = groups[pattern]
        cap = max_partitions_per_node(len(members), len(group_nodes))
        per_node = assign_partitions(members, group_nodes, max_per_node=cap)
        profile = profile_for(pattern.value)
        for node in group_nodes:
            plan.node_configs[node] = profile.config
            plan.node_profiles[node] = profile.name
            for partition in per_node.get(node, []):
                plan.assignment[partition] = node
    # Any nodes left over (more nodes than groups needed) stay homogeneous.
    for node in remaining_nodes:
        plan.node_configs[node] = DEFAULT_HOMOGENEOUS
        plan.node_profiles[node] = "default"
    return plan
