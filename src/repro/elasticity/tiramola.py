"""A tiramola-style autoscaler (Konstantinou et al., CIKM'11).

The baseline the paper compares against in Section 6.4.  Like Amazon Cloud
Watch + Auto Scaling, it is oblivious to the underlying NoSQL system: it
watches system-level metrics only (CPU usage, memory, I/O wait), adds a node
when enough nodes exceed the high threshold, and removes a node only when
*every* node in the cluster is under-utilised (this behaviour is not
parameterisable -- Section 6.4).  It never reconfigures nodes, never
rebalances data and never triggers compactions; region placement after an
add/remove is whatever the database's random balancer does.

Sampling semantics
------------------

Every ``monitor_period_seconds`` the controller records one load sample
(max of CPU and I/O wait) per *online* node.  Decisions follow the same
windowing rule MeT's monitor documents in :mod:`repro.monitoring.smoothing`:

* the window is bounded -- each node retains at most ``decision_samples``
  observations, so time spent in cooldown cannot inflate the window and the
  first post-cooldown decision averages only the freshest samples;
* the window resets whenever a decision is evaluated, and in particular
  whenever an actuator action fires -- observations taken before the last
  add/remove never leak into the next decision;
* nodes that went offline mid-window (a crash, a concurrent removal) are
  dropped at decision time: quorum and the all-idle test are computed over
  the currently online population only, so a dead node can neither suppress
  a needed ADD nor licence a REMOVE of a healthy node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interfaces import ClusterBackend
from repro.elasticity.autoscaler import Autoscaler, AutoscalerAction
from repro.hbase.config import DEFAULT_HOMOGENEOUS, RegionServerConfig


@dataclass(frozen=True)
class TiramolaPolicy:
    """Threshold rules of the autoscaler.

    Attributes:
        high_load_threshold: a node is overloaded above this load.
        low_load_threshold: a node is under-utilised below this load.
        add_quorum: fraction of overloaded nodes that triggers an add.
        monitor_period_seconds: metric sampling period (30 s, as in MeT).
        decision_samples: samples per decision, to smooth spikes.
        cooldown_seconds: minimum time between scaling actions (a VM must
            boot and the cluster settle before acting again).
        min_nodes: never shrink below this size.
        max_nodes: never grow beyond this size.
    """

    high_load_threshold: float = 0.85
    low_load_threshold: float = 0.30
    add_quorum: float = 0.50
    monitor_period_seconds: float = 30.0
    decision_samples: int = 6
    cooldown_seconds: float = 180.0
    min_nodes: int = 1
    max_nodes: int = 64


class Tiramola(Autoscaler):
    """System-metric threshold autoscaler with homogeneous nodes."""

    def __init__(
        self,
        backend: ClusterBackend,
        policy: TiramolaPolicy | None = None,
        node_config: RegionServerConfig | None = None,
    ) -> None:
        super().__init__(backend)
        self.policy = policy or TiramolaPolicy()
        self.node_config = (node_config or DEFAULT_HOMOGENEOUS).validate()
        self._samples: dict[str, list[float]] = {}
        self._samples_taken = 0
        self._last_sample_time: float | None = None
        self._last_action_time: float | None = None

    # ------------------------------------------------------------------ #
    # controller loop
    # ------------------------------------------------------------------ #
    def step(self, now: float) -> None:
        """Sample system metrics and add/remove a node when thresholds fire."""
        if not self._sample_due(now):
            return
        self._sample(now)
        if self._samples_taken < self.policy.decision_samples:
            return
        if self._in_cooldown(now):
            return
        loads = self._average_loads()
        self._reset_window()
        if not loads:
            return
        online = len(loads)
        overloaded = sum(1 for load in loads.values() if load > self.policy.high_load_threshold)
        all_idle = all(load < self.policy.low_load_threshold for load in loads.values())
        if overloaded / online >= self.policy.add_quorum and online < self.policy.max_nodes:
            name = self.backend.add_node(self.node_config, "default")
            self._last_action_time = now
            self.log.record(now, AutoscalerAction.ADD_NODE, node=name, detail=f"overloaded={overloaded}/{online}")
        elif all_idle and online > self.policy.min_nodes:
            # Remove the node serving the fewest requests.
            victim = self._least_loaded_node(loads)
            if victim is not None:
                self.backend.remove_node(victim)
                self._last_action_time = now
                self.log.record(now, AutoscalerAction.REMOVE_NODE, node=victim, detail="all nodes idle")

    def next_wakeup(self, now: float) -> float:
        """Earliest simulated time at which :meth:`step` may do real work.

        ``step(t)`` returns immediately unless a metric sample is due, so
        the next sampling instant bounds how far the event-kernel harness
        may fast-forward without consulting this controller.
        """
        if self._last_sample_time is None:
            return now
        return self._last_sample_time + self.policy.monitor_period_seconds - 1e-9

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _sample_due(self, now: float) -> bool:
        if self._last_sample_time is None:
            return True
        return now - self._last_sample_time >= self.policy.monitor_period_seconds - 1e-9

    def _sample(self, now: float) -> None:
        self._last_sample_time = now
        window = self.policy.decision_samples
        # The window is bounded: cooldown ticks must not grow it past
        # ``decision_samples``, or the first post-cooldown decision would
        # average pre-settle load from the whole cooldown.
        self._samples_taken = min(self._samples_taken + 1, window)
        for name in self.backend.online_node_names():
            metrics = self.backend.node_system_metrics(name)
            load = max(metrics.get("cpu", 0.0), metrics.get("io_wait", 0.0))
            values = self._samples.setdefault(name, [])
            values.append(load)
            if len(values) > window:
                del values[: len(values) - window]

    def _reset_window(self) -> None:
        """Discard the observation window (after each decision/action)."""
        self._samples = {}
        self._samples_taken = 0

    def _average_loads(self) -> dict[str, float]:
        # Nodes that went offline mid-window (crashed, or removed by someone
        # else) are dropped: the decision must describe the nodes that are
        # actually serving, not ghosts whose samples stopped accumulating.
        online = set(self.backend.online_node_names())
        return {
            name: sum(values) / len(values)
            for name, values in self._samples.items()
            if values and name in online
        }

    def _least_loaded_node(self, loads: dict[str, float]) -> str | None:
        online = set(self.backend.online_node_names())
        candidates = {name: load for name, load in loads.items() if name in online}
        if not candidates:
            return None
        return min(candidates, key=candidates.get)

    def _in_cooldown(self, now: float) -> bool:
        if self._last_action_time is None:
            return False
        return now - self._last_action_time < self.policy.cooldown_seconds
