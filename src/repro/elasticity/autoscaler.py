"""Common interface for elasticity controllers.

Both MeT and the tiramola baseline are *controllers*: they observe a cluster
backend and occasionally act on it.  The experiment harness only needs the
``step(now)`` entry point, but the autoscaler base class also standardises
the action log so experiments can report when nodes were added or removed.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.interfaces import ClusterBackend


class AutoscalerAction(str, enum.Enum):
    """Kinds of scaling actions a controller can take."""

    ADD_NODE = "add_node"
    REMOVE_NODE = "remove_node"
    RECONFIGURE = "reconfigure"
    NONE = "none"


@dataclass
class ScalingEvent:
    """One recorded scaling action."""

    timestamp: float
    action: AutoscalerAction
    node: str | None = None
    detail: str = ""


@dataclass
class AutoscalerLog:
    """Action history of a controller."""

    events: list[ScalingEvent] = field(default_factory=list)

    def record(
        self,
        timestamp: float,
        action: AutoscalerAction,
        node: str | None = None,
        detail: str = "",
    ) -> None:
        """Append one event."""
        self.events.append(
            ScalingEvent(timestamp=timestamp, action=action, node=node, detail=detail)
        )

    def count(self, action: AutoscalerAction) -> int:
        """Number of events of a given kind."""
        return sum(1 for event in self.events if event.action == action)


class Autoscaler(ABC):
    """Base class for elasticity controllers driven by the harness."""

    def __init__(self, backend: ClusterBackend) -> None:
        self.backend = backend
        self.log = AutoscalerLog()

    @abstractmethod
    def step(self, now: float) -> None:
        """Observe the cluster at time ``now`` and act if needed."""
