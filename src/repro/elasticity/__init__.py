"""Elasticity baselines and placement strategies used in the evaluation.

* :mod:`repro.elasticity.strategies` -- the three manual strategies of
  Section 3.3 (Random-Homogeneous, Manual-Homogeneous, Manual-Heterogeneous).
* :mod:`repro.elasticity.tiramola` -- the tiramola-style autoscaler the paper
  compares against in Section 6.4: threshold rules over system metrics that
  only add or remove whole nodes.
"""

from repro.elasticity.autoscaler import Autoscaler, AutoscalerAction
from repro.elasticity.strategies import (
    PlacementPlan,
    manual_heterogeneous,
    manual_homogeneous,
    random_homogeneous,
)
from repro.elasticity.tiramola import Tiramola, TiramolaPolicy

__all__ = [
    "Autoscaler",
    "AutoscalerAction",
    "PlacementPlan",
    "random_homogeneous",
    "manual_homogeneous",
    "manual_heterogeneous",
    "Tiramola",
    "TiramolaPolicy",
]
