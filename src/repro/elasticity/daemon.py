"""HBase's periodic load balancer, as a harness-driven daemon.

When a node joins a cluster that is *not* managed by MeT (e.g. under the
tiramola baseline), HBase's own balancer eventually redistributes Regions so
every RegionServer serves the same number of them, picking Regions at
random.  Moved Regions lose data locality until a major compaction runs --
the effect the paper points to when explaining why tiramola's added nodes do
not translate into throughput (Section 6.4).
"""

from __future__ import annotations

import random

from repro.core.interfaces import ClusterBackend
from repro.util.rng import make_rng


class HBaseBalancerDaemon:
    """Evens out per-node region counts periodically (random choice of regions)."""

    def __init__(
        self,
        backend: ClusterBackend,
        period_seconds: float = 150.0,
        seed: int | random.Random = 0,
    ) -> None:
        self.backend = backend
        self.period_seconds = period_seconds
        self._rng = make_rng(seed)
        self._last_run: float | None = None
        self.moves_performed = 0

    def step(self, now: float) -> None:
        """Run one balancing round when the period has elapsed."""
        if self._last_run is not None and now - self._last_run < self.period_seconds:
            return
        self._last_run = now
        self.balance()

    def next_wakeup(self, now: float) -> float:
        """Earliest simulated time at which :meth:`step` may do real work.

        Lets the event-kernel harness skip the ticks between balancing
        rounds instead of invoking a guaranteed no-op every tick.
        """
        if self._last_run is None:
            return now
        return self._last_run + self.period_seconds

    def balance(self) -> int:
        """Move regions from over-populated nodes to under-populated ones."""
        online = self.backend.online_node_names()
        if len(online) < 2:
            return 0
        stats = self.backend.partition_stats()
        per_node: dict[str, list[str]] = {node: [] for node in online}
        for partition_id, partition in stats.items():
            node = partition.get("node")
            if node in per_node:
                per_node[node].append(partition_id)
        total = sum(len(parts) for parts in per_node.values())
        quota = -(-total // len(online))  # ceil
        floor = total // len(online)
        moves = 0
        donors = [n for n in online if len(per_node[n]) > quota]
        receivers = [n for n in online if len(per_node[n]) < floor] or [
            n for n in online if len(per_node[n]) < quota
        ]
        for receiver in receivers:
            while len(per_node[receiver]) < floor and donors:
                donor = max(donors, key=lambda n: len(per_node[n]))
                if len(per_node[donor]) <= quota:
                    break
                candidates = per_node[donor]
                partition = candidates[self._rng.randrange(len(candidates))]
                self.backend.move_partition(partition, receiver)
                per_node[donor].remove(partition)
                per_node[receiver].append(partition)
                moves += 1
                donors = [n for n in online if len(per_node[n]) > quota]
        self.moves_performed += moves
        return moves
