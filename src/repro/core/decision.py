"""The Decision Maker component (paper Section 4.2).

Works in four stages:

* **Stage A** -- determine the current state of the cluster from the
  monitor's snapshot: is every node's load within the configured thresholds?
* **Stage B** -- Algorithm 1: decide how many nodes to add (quadratically) or
  remove (linearly); the very first sub-optimal round triggers the
  InitialReconfiguration instead.
* **Stage C** -- the Distribution Algorithm: classify partitions by access
  pattern, size the node groups proportionally, and LPT-assign partitions to
  node slots inside each group.
* **Stage D** -- Algorithm 3: match the optimised distribution onto the
  physical nodes so as to minimise partition moves and node restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import assign_partitions
from repro.core.classification import classify_partitions
from repro.core.grouping import max_partitions_per_node, nodes_per_group
from repro.core.output import NodeTarget, TargetSlot, compute_output, plan_moves
from repro.core.parameters import MeTParameters
from repro.core.profiles import NODE_PROFILES, profile_for
from repro.core.sizing import SizingAlgorithm
from repro.monitoring.collector import ClusterSnapshot


@dataclass
class ClusterHealth:
    """Stage A verdict about the cluster."""

    acceptable: bool
    overloaded_fraction: float
    underloaded: bool
    overloaded_nodes: list[str] = field(default_factory=list)
    underloaded_nodes: list[str] = field(default_factory=list)


@dataclass
class ReconfigurationPlan:
    """Everything the Actuator needs to bring the cluster to the new state."""

    timestamp: float
    initial: bool
    targets: list[NodeTarget] = field(default_factory=list)
    new_nodes: list[str] = field(default_factory=list)
    nodes_to_remove: list[str] = field(default_factory=list)
    moves: list[tuple[str, str]] = field(default_factory=list)

    def is_noop(self) -> bool:
        """Whether applying the plan would change nothing."""
        return (
            not self.new_nodes
            and not self.nodes_to_remove
            and not self.moves
            and not any(target.needs_restart for target in self.targets)
        )

    @property
    def restarts(self) -> int:
        """Number of node restarts the plan implies."""
        return sum(1 for target in self.targets if target.needs_restart)


class DecisionMaker:
    """Implements Stages A-D over monitor snapshots."""

    #: Placeholder prefix for nodes that are not provisioned yet.
    NEW_NODE_PREFIX = "<new-node-"

    def __init__(self, parameters: MeTParameters | None = None) -> None:
        self.parameters = (parameters or MeTParameters()).validate()
        self.sizing = SizingAlgorithm(self.parameters.suboptimal_nodes_threshold)
        self.decisions_made = 0

    # ------------------------------------------------------------------ #
    # Stage A
    # ------------------------------------------------------------------ #
    def stage_a(self, snapshot: ClusterSnapshot) -> ClusterHealth:
        """Determine whether the cluster load is acceptable."""
        online = [node for node in snapshot.nodes.values() if node.online]
        if not online:
            return ClusterHealth(acceptable=True, overloaded_fraction=0.0, underloaded=False)
        overloaded = [n.name for n in online if n.load > self.parameters.overload_threshold]
        underloaded = [n.name for n in online if n.load < self.parameters.underload_threshold]
        overloaded_fraction = len(overloaded) / len(online)
        # Unlike tiramola, MeT does not wait for every node to be idle before
        # shrinking: a configurable fraction of underloaded nodes (with none
        # overloaded) is enough to release a node (Section 6.4).
        cluster_underloaded = (
            not overloaded
            and len(underloaded) / len(online) > self.parameters.underload_fraction
            and len(online) > self.parameters.min_nodes
            and self.parameters.allow_remove
        )
        acceptable = not overloaded and not cluster_underloaded
        return ClusterHealth(
            acceptable=acceptable,
            overloaded_fraction=overloaded_fraction,
            underloaded=cluster_underloaded,
            overloaded_nodes=overloaded,
            underloaded_nodes=underloaded,
        )

    # ------------------------------------------------------------------ #
    # Stage C
    # ------------------------------------------------------------------ #
    def distribution(
        self, snapshot: ClusterSnapshot, cluster_size: int
    ) -> list[TargetSlot]:
        """Classification + grouping + assignment for ``cluster_size`` nodes."""
        groups = classify_partitions(
            snapshot.partitions, self.parameters.classification_threshold
        )
        if not groups:
            return []
        allocation = nodes_per_group(groups, cluster_size)
        slots: list[TargetSlot] = []
        for pattern, node_count in allocation.items():
            members = groups.get(pattern, [])
            if not members or node_count <= 0:
                continue
            slot_names = [f"{pattern.value}-slot-{i}" for i in range(node_count)]
            cap = max_partitions_per_node(len(members), node_count)
            per_slot = assign_partitions(members, slot_names, max_per_node=cap)
            for slot_name in slot_names:
                slots.append(
                    TargetSlot(
                        profile=pattern.value,
                        partitions=frozenset(per_slot.get(slot_name, [])),
                    )
                )
        return slots

    # ------------------------------------------------------------------ #
    # full decision round
    # ------------------------------------------------------------------ #
    def decide(self, snapshot: ClusterSnapshot) -> ReconfigurationPlan | None:
        """Run Stages A-D; returns None when the cluster is healthy."""
        health = self.stage_a(snapshot)
        if health.acceptable:
            self.sizing.reset_growth()
            return None
        self.decisions_made += 1

        first_time = self.sizing.first_time
        sizing = self.sizing.decide(health.overloaded_fraction, remove=health.underloaded)

        online_nodes = [name for name, node in snapshot.nodes.items() if node.online]
        current_size = len(online_nodes)
        new_size = current_size + sizing.delta
        new_size = max(self.parameters.min_nodes, min(self.parameters.max_nodes, new_size))
        delta = new_size - current_size

        slots = self.distribution(snapshot, new_size)
        if not slots:
            return None

        current_state = {
            name: {p.partition_id for p in snapshot.partitions_on(name)}
            for name in online_nodes
        }
        current_profiles = {
            name: snapshot.nodes[name].profile for name in online_nodes
        }
        new_nodes = [f"{self.NEW_NODE_PREFIX}{i}>" for i in range(max(0, delta))]
        for placeholder in new_nodes:
            current_profiles[placeholder] = "unprovisioned"

        targets = compute_output(
            current_state=current_state,
            current_profiles=current_profiles,
            optimal_state=slots,
            first_time=first_time or sizing.initial_reconfiguration,
            new_nodes=new_nodes,
        )
        assigned_nodes = {target.node for target in targets}
        nodes_to_remove = [name for name in online_nodes if name not in assigned_nodes]
        moves = plan_moves(current_state, targets)
        return ReconfigurationPlan(
            timestamp=snapshot.timestamp,
            initial=first_time or sizing.initial_reconfiguration,
            targets=targets,
            new_nodes=[t.node for t in targets if t.node.startswith(self.NEW_NODE_PREFIX)],
            nodes_to_remove=nodes_to_remove,
            moves=moves,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def profile_config(profile_name: str):
        """RegionServer configuration for a profile name."""
        if profile_name in NODE_PROFILES:
            return profile_for(profile_name).config
        return profile_for("read_write").config
