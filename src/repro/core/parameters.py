"""MeT configuration parameters (the paper's "properties file").

Section 5 lists the parameters MeT needs: the classification thresholds, the
``SubOptimalNodesThreshold`` (50% of the cluster in the paper's experiments),
the monitoring periodicity (30 s samples, decisions every 6 samples) and the
locality thresholds that trigger a major compaction after reconfiguration
(70% for write-profiled nodes, 90% for all others).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MeTParameters:
    """All tunables of the MeT framework.

    Attributes:
        monitor_period_seconds: Ganglia/JMX sampling period (30 s).
        decision_samples: samples per Decision Maker invocation (6 -> 3 min).
        smoothing_alpha: exponential smoothing factor for observations.
        overload_threshold: a node is overloaded when its load (max of CPU
            and I/O wait) exceeds this value.
        underload_threshold: a node is underloaded below this value.
        underload_fraction: fraction of underloaded nodes (with none
            overloaded) above which MeT considers the cluster underutilised
            and releases one node; unlike tiramola, MeT does not wait for
            *every* node to be idle (Section 6.4).
        suboptimal_nodes_threshold: fraction of overloaded nodes above which
            MeT proceeds straight to adding nodes (Algorithm 1).
        classification_threshold: request-share threshold of the partition
            classifier (60% in the paper).
        write_locality_threshold: locality below which a write-profiled node
            is major-compacted after reconfiguration.
        read_locality_threshold: same for every other profile.
        min_nodes: never shrink the cluster below this size.
        max_nodes: never grow the cluster above this size.
        allow_remove: whether MeT may release nodes on underutilisation (the
            paper parameterises this to avoid add/remove oscillation).
        cooldown_seconds: minimum time between two actuator actions.
    """

    monitor_period_seconds: float = 30.0
    decision_samples: int = 6
    smoothing_alpha: float = 0.5
    overload_threshold: float = 0.85
    underload_threshold: float = 0.30
    underload_fraction: float = 0.25
    suboptimal_nodes_threshold: float = 0.50
    classification_threshold: float = 0.60
    write_locality_threshold: float = 0.70
    read_locality_threshold: float = 0.90
    min_nodes: int = 1
    max_nodes: int = 64
    allow_remove: bool = True
    cooldown_seconds: float = 60.0

    def validate(self) -> "MeTParameters":
        """Check parameter sanity and return ``self``."""
        if self.monitor_period_seconds <= 0:
            raise ValueError("monitor period must be positive")
        if self.decision_samples <= 0:
            raise ValueError("decision samples must be positive")
        if not 0.0 < self.smoothing_alpha <= 1.0:
            raise ValueError("smoothing alpha must be in (0, 1]")
        if not 0.0 < self.overload_threshold <= 1.0:
            raise ValueError("overload threshold must be in (0, 1]")
        if not 0.0 <= self.underload_threshold < self.overload_threshold:
            raise ValueError("underload threshold must be below the overload threshold")
        if not 0.0 < self.underload_fraction <= 1.0:
            raise ValueError("underload fraction must be in (0, 1]")
        if not 0.0 < self.suboptimal_nodes_threshold <= 1.0:
            raise ValueError("sub-optimal nodes threshold must be in (0, 1]")
        if not 0.0 < self.classification_threshold < 1.0:
            raise ValueError("classification threshold must be in (0, 1)")
        if not 0.0 <= self.write_locality_threshold <= 1.0:
            raise ValueError("write locality threshold must be in [0, 1]")
        if not 0.0 <= self.read_locality_threshold <= 1.0:
            raise ValueError("read locality threshold must be in [0, 1]")
        if self.min_nodes < 1:
            raise ValueError("min nodes must be at least 1")
        if self.max_nodes < self.min_nodes:
            raise ValueError("max nodes must be at least min nodes")
        return self

    @property
    def decision_period_seconds(self) -> float:
        """Seconds between Decision Maker invocations."""
        return self.monitor_period_seconds * self.decision_samples


#: Parameters used throughout the paper's evaluation (Section 6.1).
PAPER_PARAMETERS = MeTParameters()
