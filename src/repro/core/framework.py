"""The MeT framework: wiring Monitor, Decision Maker and Actuator together.

Figure 2 of the paper: the Monitor and Actuator interface with the NoSQL
database and the IaaS; the Decision Maker sits between them.  The
:class:`MeT` class is driven by calling :meth:`MeT.step` as (simulated) time
advances: it samples the monitor, runs a decision round when enough samples
accumulated and no action is in flight, and advances the actuator's plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.actuator import Actuator
from repro.core.decision import DecisionMaker, ReconfigurationPlan
from repro.core.interfaces import ClusterBackend
from repro.core.monitor import Monitor
from repro.core.parameters import MeTParameters


@dataclass
class MeTEvent:
    """A timestamped record of a controller decision or action."""

    timestamp: float
    kind: str
    detail: str = ""


@dataclass
class MeTStatus:
    """Summary of what the controller has done so far."""

    decisions: int = 0
    plans_applied: int = 0
    events: list[MeTEvent] = field(default_factory=list)


class MeT:
    """The workload-aware elasticity controller."""

    def __init__(
        self,
        backend: ClusterBackend,
        parameters: MeTParameters | None = None,
        enabled: bool = True,
    ) -> None:
        self.parameters = (parameters or MeTParameters()).validate()
        self.backend = backend
        self.monitor = Monitor(backend, self.parameters)
        self.decision_maker = DecisionMaker(self.parameters)
        self.actuator = Actuator(
            backend, self.parameters, on_plan_complete=self._plan_completed
        )
        self.enabled = enabled
        self.status = MeTStatus()
        self._last_action_finished: float | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Enable the controller (it can be constructed disabled)."""
        self.enabled = True

    def stop(self) -> None:
        """Disable the controller; in-flight actuator work still completes."""
        self.enabled = False

    def step(self, now: float) -> ReconfigurationPlan | None:
        """Advance the controller at simulated time ``now``.

        Returns the plan submitted this step, if any.
        """
        if not self.enabled and not self.actuator.busy:
            return None
        self.monitor.step(now)
        self.actuator.step(now)
        if not self.enabled or self.actuator.busy:
            return None
        if not self.monitor.decision_due():
            return None
        if self._in_cooldown(now):
            return None
        snapshot = self.monitor.snapshot(now)
        plan = self.decision_maker.decide(snapshot)
        self.status.decisions += 1
        if plan is None or plan.is_noop():
            self._record(now, "healthy", "cluster load acceptable")
            return None
        submitted = self.actuator.submit(plan, now)
        if not submitted:
            return None
        self._record(
            now,
            "plan",
            f"initial={plan.initial} restarts={plan.restarts} "
            f"adds={len(plan.new_nodes)} removes={len(plan.nodes_to_remove)} "
            f"moves={len(plan.moves)}",
        )
        return plan

    def next_wakeup(self, now: float) -> float:
        """Earliest simulated time at which :meth:`step` may do real work.

        ``step(t)`` is a no-op for every ``t`` strictly below the returned
        time, which lets the event-kernel harness skip the intervening
        ticks.  While the actuator has an in-flight plan the controller
        must be stepped every tick (``now``); when disabled and idle it
        never acts (``inf``); otherwise the next monitor sampling instant
        bounds the wakeup.  A decision that is already due but held back by
        the cooldown fires on the first *step* after the cooldown lapses --
        not on a sampling tick -- so a pending decision bounds the wakeup
        by the cooldown-expiry instant as well.
        """
        if self.actuator.busy:
            return now
        if not self.enabled:
            return float("inf")
        wake = self.monitor.next_wakeup(now)
        if self.monitor.decision_due():
            if self._last_action_finished is None:
                return now
            cooldown_end = (
                self._last_action_finished + self.parameters.cooldown_seconds
            )
            return min(wake, max(now, cooldown_end))
        return wake

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _in_cooldown(self, now: float) -> bool:
        if self._last_action_finished is None:
            return False
        return now - self._last_action_finished < self.parameters.cooldown_seconds

    def _plan_completed(self, now: float) -> None:
        self.status.plans_applied += 1
        self._last_action_finished = now
        self._record(now, "plan-complete", "")
        self.monitor.reset_after_action()

    def _record(self, now: float, kind: str, detail: str) -> None:
        self.status.events.append(MeTEvent(timestamp=now, kind=kind, detail=detail))

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def events(self, kind: str | None = None) -> list[MeTEvent]:
        """Recorded events, optionally filtered by kind."""
        if kind is None:
            return list(self.status.events)
        return [event for event in self.status.events if event.kind == kind]
