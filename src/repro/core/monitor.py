"""The Monitor component (paper Section 4.1).

Periodically gathers system metrics (CPU, I/O wait, memory) and NoSQL
metrics (per-partition read/write/scan counts, per-node locality index),
applies exponential smoothing, and delivers a snapshot to the Decision Maker
every ``decision_samples`` samples.  Observations taken before the last
actuator action are discarded.
"""

from __future__ import annotations

from repro.core.parameters import MeTParameters
from repro.monitoring.collector import ClusterSnapshot, MetricsCollector, MetricsSource
from repro.monitoring.ganglia import GangliaCollector
from repro.monitoring.jmx import JMXCollector


class Monitor:
    """Drives the Ganglia/JMX collectors and produces decision snapshots."""

    def __init__(self, source: MetricsSource, parameters: MeTParameters | None = None) -> None:
        self.parameters = (parameters or MeTParameters()).validate()
        self.source = source
        self.collector = MetricsCollector(
            source,
            period_seconds=self.parameters.monitor_period_seconds,
            decision_samples=self.parameters.decision_samples,
            smoothing_alpha=self.parameters.smoothing_alpha,
        )
        self.ganglia = GangliaCollector(
            source, period_seconds=self.parameters.monitor_period_seconds
        )
        self.jmx = JMXCollector(source)
        self.samples_taken = 0

    def step(self, now: float) -> None:
        """Sample the cluster if the monitoring period elapsed."""
        if not self.collector.due(now):
            return
        self.ganglia.poll(now)
        self.jmx.poll(now)
        self.collector.sample(now)
        self.samples_taken += 1

    def next_wakeup(self, now: float) -> float:
        """Earliest simulated time at which :meth:`step` does real work.

        ``step(t)`` is a no-op for every ``t`` strictly below the returned
        time (the collectors only poll when the monitoring period elapsed),
        so the event-kernel harness may fast-forward across the gap.
        """
        return self.collector.next_due(now)

    def decision_due(self) -> bool:
        """Whether enough samples accumulated for a Decision Maker round."""
        return self.collector.decision_due()

    def snapshot(self, now: float) -> ClusterSnapshot:
        """Build the smoothed snapshot for the Decision Maker."""
        return self.collector.snapshot(now)

    def reset_after_action(self) -> None:
        """Discard pre-action observations (called by the actuator)."""
        self.collector.reset_after_action()
