"""Partition classification by access pattern (Stage C, part 1).

Data partitions are divided into four groups (Sections 3.3, 4.2.3 and 5):

* ``read`` -- more than 60% of total requests are read requests;
* ``write`` -- more than 60% of total requests are write requests;
* ``scan`` -- more than 60% of the read requests are scans;
* ``read_write`` -- every other case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.monitoring.collector import PartitionSample


class AccessPattern(str, enum.Enum):
    """The four access-pattern groups of the paper."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"
    SCAN = "scan"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ClassifiedPartition:
    """A partition together with its group and its request cost."""

    partition_id: str
    pattern: AccessPattern
    requests: float
    size_bytes: float


def classify_partition(
    reads: float,
    writes: float,
    scans: float,
    threshold: float = 0.60,
) -> AccessPattern:
    """Classify one partition from its read/write/scan request counts."""
    total = reads + writes + scans
    if total <= 0:
        return AccessPattern.READ_WRITE
    read_like = reads + scans
    if read_like > 0 and read_like / total > threshold and scans / read_like > threshold:
        return AccessPattern.SCAN
    if reads / total > threshold:
        return AccessPattern.READ
    if writes / total > threshold:
        return AccessPattern.WRITE
    return AccessPattern.READ_WRITE


def classify_partitions(
    partitions: dict[str, PartitionSample],
    threshold: float = 0.60,
) -> dict[AccessPattern, list[ClassifiedPartition]]:
    """Classify every partition, grouping the results by access pattern.

    Partitions that received no requests during the window are grouped as
    ``read_write`` (the neutral profile) so they still get assigned somewhere.
    """
    groups: dict[AccessPattern, list[ClassifiedPartition]] = {
        pattern: [] for pattern in AccessPattern
    }
    for partition_id, sample in partitions.items():
        pattern = classify_partition(
            sample.reads, sample.writes, sample.scans, threshold
        )
        groups[pattern].append(
            ClassifiedPartition(
                partition_id=partition_id,
                pattern=pattern,
                requests=sample.total_requests,
                size_bytes=sample.size_bytes,
            )
        )
    return {pattern: members for pattern, members in groups.items() if members}
