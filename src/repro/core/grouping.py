"""Node grouping (Stage C, part 2).

Each access-pattern group is assigned a number of nodes proportional to the
number of partitions it contains (Section 4.2.3)::

    for every group g:  #partitions_in_g / total_partitions * total_nodes

Rounding is done with the largest-remainder method under two constraints:
every non-empty group gets at least one node and the group counts sum to the
total number of nodes available.
"""

from __future__ import annotations

from repro.core.classification import AccessPattern, ClassifiedPartition


class GroupingError(ValueError):
    """Raised when a valid node grouping cannot be produced."""


def nodes_per_group(
    groups: dict[AccessPattern, list[ClassifiedPartition]],
    total_nodes: int,
) -> dict[AccessPattern, int]:
    """Number of nodes to dedicate to each access-pattern group."""
    if total_nodes <= 0:
        raise GroupingError(f"total nodes must be positive, got {total_nodes!r}")
    non_empty = {pattern: members for pattern, members in groups.items() if members}
    if not non_empty:
        raise GroupingError("no partitions to group")
    if total_nodes < len(non_empty):
        # Fewer nodes than groups: give one node to each of the largest
        # groups (by request volume) and merge the rest into read_write.
        return _merge_small_groups(non_empty, total_nodes)

    total_partitions = sum(len(members) for members in non_empty.values())
    exact = {
        pattern: len(members) / total_partitions * total_nodes
        for pattern, members in non_empty.items()
    }
    allocation = {pattern: max(1, int(share)) for pattern, share in exact.items()}
    # Largest remainder: distribute the leftover nodes to the groups whose
    # fractional share was most truncated.
    while sum(allocation.values()) < total_nodes:
        pattern = max(
            exact,
            key=lambda p: (exact[p] - allocation[p], len(non_empty[p])),
        )
        allocation[pattern] += 1
    while sum(allocation.values()) > total_nodes:
        candidates = [p for p, count in allocation.items() if count > 1]
        if not candidates:
            raise GroupingError(
                f"cannot fit {len(non_empty)} groups on {total_nodes} nodes"
            )
        pattern = min(candidates, key=lambda p: exact[p] - allocation[p])
        allocation[pattern] -= 1
    return allocation


def _merge_small_groups(
    groups: dict[AccessPattern, list[ClassifiedPartition]],
    total_nodes: int,
) -> dict[AccessPattern, int]:
    """Fallback when the cluster has fewer nodes than access-pattern groups."""
    by_volume = sorted(
        groups,
        key=lambda pattern: sum(p.requests for p in groups[pattern]),
        reverse=True,
    )
    kept = by_volume[:total_nodes]
    allocation = {pattern: 1 for pattern in kept}
    return allocation


def max_partitions_per_node(partition_count: int, node_count: int) -> int:
    """Cap on partitions per node used by the assignment algorithm.

    Estimated by dividing the number of partitions in the group by the number
    of nodes in the group (Section 4.2.3), rounded up.
    """
    if node_count <= 0:
        raise GroupingError(f"node count must be positive, got {node_count!r}")
    if partition_count <= 0:
        return 1
    return -(-partition_count // node_count)
