"""Node configuration profiles (paper Table 1).

Each access-pattern group maps to a RegionServer configuration::

    Node profile   Cache size   Memstore size   Block size
    Read           55%          10%             32 KB
    Write          10%          55%             64 KB
    Read/Write     45%          20%             32 KB
    Scan           55%          10%             128 KB
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hbase.config import KB, RegionServerConfig


@dataclass(frozen=True)
class NodeProfile:
    """A named heterogeneous node configuration."""

    name: str
    config: RegionServerConfig
    description: str = ""

    def __post_init__(self) -> None:
        self.config.validate()


READ_PROFILE = NodeProfile(
    name="read",
    config=RegionServerConfig(
        block_cache_fraction=0.55,
        memstore_fraction=0.10,
        block_size_bytes=32 * KB,
    ),
    description="Read-intensive partitions: large cache, small blocks.",
)

WRITE_PROFILE = NodeProfile(
    name="write",
    config=RegionServerConfig(
        block_cache_fraction=0.10,
        memstore_fraction=0.55,
        block_size_bytes=64 * KB,
    ),
    description="Write-intensive partitions: large memstore.",
)

READ_WRITE_PROFILE = NodeProfile(
    name="read_write",
    config=RegionServerConfig(
        block_cache_fraction=0.45,
        memstore_fraction=0.20,
        block_size_bytes=32 * KB,
    ),
    description="Mixed partitions: balanced cache and memstore.",
)

SCAN_PROFILE = NodeProfile(
    name="scan",
    config=RegionServerConfig(
        block_cache_fraction=0.55,
        memstore_fraction=0.10,
        block_size_bytes=128 * KB,
    ),
    description="Scan-intensive partitions: large blocks for sequential reads.",
)

#: Table 1, keyed by the access-pattern group name.
NODE_PROFILES: dict[str, NodeProfile] = {
    profile.name: profile
    for profile in (READ_PROFILE, WRITE_PROFILE, READ_WRITE_PROFILE, SCAN_PROFILE)
}


def profile_for(group: str) -> NodeProfile:
    """Look up the profile for an access-pattern group name."""
    try:
        return NODE_PROFILES[group]
    except KeyError:
        raise KeyError(
            f"unknown node profile {group!r}; expected one of {sorted(NODE_PROFILES)}"
        ) from None
