"""Output computation (Stage D -- Algorithm 3).

StageD determines the best way to reach the target configuration: the one
that minimises node reconfigurations and partition moves.  The optimised
distribution produced by Stage C is matched against the current cluster
distribution with a best-effort set-intersection heuristic: for every target
(profile, partition set) pair, prefer the physical node that already holds
the most similar set of partitions and, on ties, one that already runs the
target profile (so it does not need a restart).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TargetSlot:
    """One slot of the optimised distribution: a profile and a partition set."""

    profile: str
    partitions: frozenset[str]


@dataclass
class NodeTarget:
    """What one physical node should become."""

    node: str
    profile: str
    partitions: set[str] = field(default_factory=set)
    needs_restart: bool = False

    @property
    def partition_list(self) -> list[str]:
        """Sorted partition ids (deterministic ordering for the actuator)."""
        return sorted(self.partitions)


def _similarity(current: set[str], target: frozenset[str]) -> int:
    """Number of partitions the node would keep if given this slot."""
    return len(current & target)


def compute_output(
    current_state: dict[str, set[str]],
    current_profiles: dict[str, str],
    optimal_state: list[TargetSlot],
    first_time: bool = False,
    new_nodes: list[str] | None = None,
) -> list[NodeTarget]:
    """Match the optimised distribution onto the physical nodes (Algorithm 3).

    Args:
        current_state: node name -> set of partitions it currently serves.
        current_profiles: node name -> profile it currently runs.
        optimal_state: the target (profile, partition set) slots from Stage C.
        first_time: when True the whole optimal state is passed through as-is
            (the InitialReconfiguration); nodes are paired with slots in
            order.
        new_nodes: names of nodes that are being added and therefore have no
            current partitions; they receive the leftover slots.

    Returns one :class:`NodeTarget` per (node, slot) pair.  Nodes that do not
    receive a slot (cluster shrink) are not listed; the caller decides their
    fate.
    """
    new_nodes = list(new_nodes or [])
    slots = list(optimal_state)
    targets: list[NodeTarget] = []

    if first_time:
        nodes = list(current_state) + [n for n in new_nodes if n not in current_state]
        for node, slot in zip(nodes, slots):
            targets.append(
                NodeTarget(
                    node=node,
                    profile=slot.profile,
                    partitions=set(slot.partitions),
                    needs_restart=current_profiles.get(node) != slot.profile,
                )
            )
        return targets

    remaining = list(slots)
    unmatched_nodes = [node for node in current_state if node not in new_nodes]
    # Greedy best-effort matching: repeatedly pick the (node, slot) pair with
    # the largest partition-set intersection, preferring pairs that keep the
    # node's current profile.
    while remaining and unmatched_nodes:
        best: tuple[int, int, str, TargetSlot] | None = None
        for node in unmatched_nodes:
            held = current_state[node]
            for slot in remaining:
                overlap = _similarity(held, slot.partitions)
                same_profile = 1 if current_profiles.get(node) == slot.profile else 0
                key = (overlap, same_profile)
                if best is None or key > (best[0], best[1]):
                    best = (overlap, same_profile, node, slot)
        assert best is not None
        _, same_profile, node, slot = best
        targets.append(
            NodeTarget(
                node=node,
                profile=slot.profile,
                partitions=set(slot.partitions),
                needs_restart=not bool(same_profile),
            )
        )
        unmatched_nodes.remove(node)
        remaining.remove(slot)

    # Newly added nodes (and any still-unmatched existing nodes) take the
    # leftover slots.
    spare_nodes = new_nodes + unmatched_nodes
    for node, slot in zip(spare_nodes, remaining):
        targets.append(
            NodeTarget(
                node=node,
                profile=slot.profile,
                partitions=set(slot.partitions),
                needs_restart=current_profiles.get(node) != slot.profile,
            )
        )
    return targets


def plan_moves(
    current_state: dict[str, set[str]], targets: list[NodeTarget]
) -> list[tuple[str, str]]:
    """List of (partition, destination node) moves implied by ``targets``."""
    location = {
        partition: node
        for node, partitions in current_state.items()
        for partition in partitions
    }
    moves: list[tuple[str, str]] = []
    for target in targets:
        for partition in target.partition_list:
            if location.get(partition) != target.node:
                moves.append((partition, target.node))
    return moves


def count_restarts(targets: list[NodeTarget]) -> int:
    """Number of node restarts (reconfigurations) implied by ``targets``."""
    return sum(1 for target in targets if target.needs_restart)
