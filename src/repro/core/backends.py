"""Cluster backends: adapters that controllers drive.

* :class:`SimulatorBackend` adapts the analytical
  :class:`~repro.simulation.cluster.ClusterSimulator` (optionally provisioning
  VMs through the OpenStack-like provider) -- used by every experiment.
* :class:`HBaseBackend` adapts the functional
  :class:`~repro.hbase.cluster.MiniHBaseCluster` -- used by examples and
  integration tests that exercise real data paths.
"""

from __future__ import annotations

import itertools

from repro.hbase.cluster import MiniHBaseCluster
from repro.hbase.config import RegionServerConfig
from repro.iaas.flavors import REGIONSERVER_FLAVOR
from repro.iaas.provider import OpenStackProvider
from repro.simulation.cluster import ClusterSimulator


class SimulatorBackend:
    """Adapter exposing a :class:`ClusterSimulator` as a cluster backend."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        provider: OpenStackProvider | None = None,
    ) -> None:
        self.simulator = simulator
        self.provider = provider
        self._profiles: dict[str, str] = {
            name: node.profile_name for name, node in simulator.nodes.items()
        }
        self._vm_ids: dict[str, str] = {}
        self._counter = itertools.count(1)

    @property
    def vm_ids(self) -> dict[str, str]:
        """Live node-name -> provider-instance-id mapping (fault injection
        shares it so crashing a provisioned node also fails its VM)."""
        return self._vm_ids

    # ------------------------------------------------------------------ #
    # MetricsSource
    # ------------------------------------------------------------------ #
    def node_names(self) -> list[str]:
        return sorted(self.simulator.nodes)

    def online_node_names(self) -> list[str]:
        return sorted(node.name for node in self.simulator.online_nodes())

    def node_system_metrics(self, name: str) -> dict[str, float]:
        node = self.simulator.nodes[name]
        return {
            "cpu": node.cpu_utilization,
            "io_wait": node.io_wait,
            "memory": node.memory_utilization,
        }

    def node_locality(self, name: str) -> float:
        return self.simulator.node_locality_index(name)

    def node_profile(self, name: str) -> str:
        return self._profiles.get(name, self.simulator.nodes[name].profile_name)

    def partition_stats(self) -> dict[str, dict[str, float]]:
        stats: dict[str, dict[str, float]] = {}
        for region_id, region in self.simulator.regions.items():
            stats[region_id] = {
                "reads": region.reads,
                "writes": region.writes,
                "scans": region.scans,
                "size_bytes": region.size_bytes,
                "node": region.node,
            }
        return stats

    # ------------------------------------------------------------------ #
    # ClusterActions
    # ------------------------------------------------------------------ #
    def add_node(self, config: RegionServerConfig, profile_name: str) -> str:
        name = f"rs-auto-{next(self._counter)}"
        if self.provider is not None:
            vm = self.provider.launch(name, REGIONSERVER_FLAVOR)
            self._vm_ids[name] = vm.instance_id
        self.simulator.add_node(
            name=name, config=config, profile_name=profile_name, online=False
        )
        self._profiles[name] = profile_name
        return name

    def remove_node(self, name: str) -> None:
        self.simulator.remove_node(name)
        self._profiles.pop(name, None)
        vm_id = self._vm_ids.pop(name, None)
        if self.provider is not None and vm_id is not None:
            self.provider.terminate(vm_id)

    def reconfigure_node(
        self, name: str, config: RegionServerConfig, profile_name: str
    ) -> list[str]:
        drained = self.simulator.reconfigure_node(
            name, config, profile_name=profile_name, drain=True
        )
        self._profiles[name] = profile_name
        return drained

    def move_partition(self, partition_id: str, node: str) -> None:
        self.simulator.move_region(partition_id, node)

    def major_compact(self, name: str) -> None:
        self.simulator.major_compact(name)

    def node_is_online(self, name: str) -> bool:
        node = self.simulator.nodes.get(name)
        return node is not None and node.online


class HBaseBackend:
    """Adapter exposing a :class:`MiniHBaseCluster` as a cluster backend.

    The functional cluster has no hardware model, so system metrics are
    derived from request counters: a node's "CPU" is its share of the total
    requests served since the previous poll, normalised by the busiest node.
    """

    def __init__(self, cluster: MiniHBaseCluster) -> None:
        self.cluster = cluster
        self._profiles: dict[str, str] = {
            server.name: server.profile_name for server in cluster.regionservers()
        }
        self._previous_totals: dict[str, int] = {}
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # MetricsSource
    # ------------------------------------------------------------------ #
    def node_names(self) -> list[str]:
        return sorted(server.name for server in self.cluster.regionservers())

    def online_node_names(self) -> list[str]:
        return sorted(
            server.name for server in self.cluster.regionservers() if server.online
        )

    def node_system_metrics(self, name: str) -> dict[str, float]:
        totals = {
            server.name: server.total_requests()
            for server in self.cluster.regionservers()
        }
        deltas = {
            node: max(0, total - self._previous_totals.get(node, 0))
            for node, total in totals.items()
        }
        self._previous_totals.update(totals)
        busiest = max(deltas.values(), default=0)
        share = 0.0 if busiest == 0 else deltas.get(name, 0) / busiest
        server = self.cluster.regionserver(name)
        memory = 0.0
        if server.memstore_limit_bytes > 0:
            memory = min(1.0, server.memstore_used_bytes / server.memstore_limit_bytes)
        return {"cpu": share, "io_wait": share * (1.0 - server.cache_stats.hit_ratio), "memory": memory}

    def node_locality(self, name: str) -> float:
        return self.cluster.regionserver(name).locality_index()

    def node_profile(self, name: str) -> str:
        return self._profiles.get(name, self.cluster.regionserver(name).profile_name)

    def partition_stats(self) -> dict[str, dict[str, float]]:
        stats: dict[str, dict[str, float]] = {}
        for server in self.cluster.regionservers():
            for region in server.hosted_regions():
                counters = region.counters
                stats[region.name] = {
                    "reads": float(counters.reads),
                    "writes": float(counters.writes),
                    "scans": float(counters.scans),
                    "size_bytes": float(region.size_bytes),
                    "node": server.name,
                }
        return stats

    # ------------------------------------------------------------------ #
    # ClusterActions
    # ------------------------------------------------------------------ #
    def add_node(self, config: RegionServerConfig, profile_name: str) -> str:
        name = f"regionserver-auto-{next(self._counter)}"
        self.cluster.add_regionserver(name=name, config=config, profile_name=profile_name)
        self._profiles[name] = profile_name
        return name

    def remove_node(self, name: str) -> None:
        self.cluster.remove_regionserver(name)
        self._profiles.pop(name, None)

    def reconfigure_node(
        self, name: str, config: RegionServerConfig, profile_name: str
    ) -> list[str]:
        server = self.cluster.regionserver(name)
        drained = [region.name for region in server.hosted_regions()]
        self.cluster.restart_regionserver(name, config=config, profile_name=profile_name)
        self._profiles[name] = profile_name
        return drained

    def move_partition(self, partition_id: str, node: str) -> None:
        self.cluster.master.move_region(partition_id, node)

    def major_compact(self, name: str) -> None:
        self.cluster.major_compact_server(name)

    def node_is_online(self, name: str) -> bool:
        try:
            return self.cluster.regionserver(name).online
        except Exception:
            return False
