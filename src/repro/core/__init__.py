"""The MeT framework: Monitor, Decision Maker and Actuator (paper Section 4).

:class:`~repro.core.framework.MeT` is the entry point: it wires a
:class:`~repro.core.monitor.Monitor`, a
:class:`~repro.core.decision.DecisionMaker` and an
:class:`~repro.core.actuator.Actuator` around any cluster backend
(:mod:`repro.core.backends`), and is driven by calling
:meth:`~repro.core.framework.MeT.step` as simulated time advances.
"""

from repro.core.actuator import Actuator
from repro.core.backends import HBaseBackend, SimulatorBackend
from repro.core.classification import AccessPattern, classify_partition
from repro.core.decision import DecisionMaker, ReconfigurationPlan
from repro.core.framework import MeT
from repro.core.monitor import Monitor
from repro.core.parameters import MeTParameters
from repro.core.profiles import NODE_PROFILES, NodeProfile

__all__ = [
    "MeT",
    "Monitor",
    "DecisionMaker",
    "ReconfigurationPlan",
    "Actuator",
    "MeTParameters",
    "NODE_PROFILES",
    "NodeProfile",
    "AccessPattern",
    "classify_partition",
    "SimulatorBackend",
    "HBaseBackend",
]
