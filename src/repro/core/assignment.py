"""Partition-to-node assignment (Stage C, part 3 -- Algorithm 2).

The assignment balances the request load and the number of partitions per
node inside each group.  This is the makespan-minimisation / multiprocessor
scheduling problem; the paper uses Graham's greedy algorithm in its Longest
Processing Time (LPT) variant: sort the partitions by decreasing request
count and repeatedly give the next one to the least-loaded node, subject to
a cap on the number of partitions per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.classification import ClassifiedPartition
from repro.core.grouping import max_partitions_per_node


class AssignmentError(ValueError):
    """Raised when partitions cannot be assigned to the given nodes."""


@dataclass
class NodeBin:
    """One node being filled by the assignment algorithm."""

    node: str
    load: float = 0.0
    partitions: list[str] = field(default_factory=list)

    def assign(self, partition: ClassifiedPartition) -> None:
        """Place a partition on this node."""
        self.partitions.append(partition.partition_id)
        self.load += partition.requests


def assign_partitions(
    partitions: list[ClassifiedPartition],
    nodes: list[str],
    max_per_node: int | None = None,
) -> dict[str, list[str]]:
    """LPT assignment of ``partitions`` onto ``nodes`` (Algorithm 2).

    Returns a mapping node name -> list of partition ids.  Every node appears
    in the result, possibly with an empty list.
    """
    if not nodes:
        raise AssignmentError("cannot assign partitions to an empty node group")
    if max_per_node is None:
        max_per_node = max_partitions_per_node(len(partitions), len(nodes))
    if max_per_node * len(nodes) < len(partitions):
        # The cap cannot accommodate every partition; relax it to the minimum
        # feasible value so the algorithm always terminates with a full
        # assignment (the paper's cap is an estimate, not a hard constraint).
        max_per_node = max_partitions_per_node(len(partitions), len(nodes))

    bins = {node: NodeBin(node=node) for node in nodes}
    # Sort by number of requests in decreasing order (ties broken by id for
    # determinism).
    pending = sorted(partitions, key=lambda p: (-p.requests, p.partition_id))
    open_bins = set(nodes)
    for partition in pending:
        # sorted(): min() below already breaks ties on b.node, but iterating
        # the set raw would still leave the result hostage to hash order if
        # the key ever loses its total-order tiebreaker.  (lint rule D3)
        candidates = [bins[node] for node in sorted(open_bins)]
        if not candidates:
            candidates = list(bins.values())
        target = min(candidates, key=lambda b: (b.load, len(b.partitions), b.node))
        target.assign(partition)
        if len(target.partitions) >= max_per_node:
            open_bins.discard(target.node)
    return {node: bin.partitions for node, bin in bins.items()}


def makespan(assignment: dict[str, list[str]], costs: dict[str, float]) -> float:
    """Load of the most loaded node under ``assignment`` (for tests/benches)."""
    loads = [
        sum(costs.get(partition, 0.0) for partition in partitions)
        for partitions in assignment.values()
    ]
    return max(loads, default=0.0)
