"""The Actuator component (paper Sections 4.3 and 5).

The Actuator carries out the Decision Maker's plan against the cluster
backend:

* it provisions new virtual machines (through the IaaS) and waits for them
  to boot before assigning them partitions;
* it applies heterogeneous configurations with the paper's *incremental*
  strategy -- one RegionServer at a time: drain its Regions to the not yet
  reconfigured nodes, restart it with the new configuration, move its target
  Regions onto it, and trigger a major compaction when the resulting data
  locality falls below the per-profile threshold (70% for write-profiled
  nodes, 90% for the others);
* it finally performs the remaining partition moves and decommissions
  retired nodes.

Because restarts and VM boots take simulated time, the Actuator is a small
state machine advanced by :meth:`Actuator.step` on every tick.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.decision import ReconfigurationPlan
from repro.core.interfaces import ClusterBackend
from repro.core.output import NodeTarget
from repro.core.parameters import MeTParameters
from repro.core.profiles import NODE_PROFILES, profile_for


class ActuatorPhase(str, enum.Enum):
    """Phases of plan execution."""

    IDLE = "idle"
    PROVISIONING = "provisioning"
    RECONFIGURING = "reconfiguring"
    WAITING_RESTART = "waiting_restart"
    MOVING = "moving"
    REMOVING = "removing"


@dataclass
class ActuatorReport:
    """Counters describing what the actuator did (exposed for experiments)."""

    plans_applied: int = 0
    nodes_added: int = 0
    nodes_removed: int = 0
    nodes_reconfigured: int = 0
    partitions_moved: int = 0
    compactions_triggered: int = 0
    last_plan_started: float | None = None
    last_plan_finished: float | None = None


@dataclass
class _InFlightPlan:
    """Mutable execution state of the plan currently being applied."""

    plan: ReconfigurationPlan
    placeholder_map: dict[str, str] = field(default_factory=dict)
    pending_restarts: list[NodeTarget] = field(default_factory=list)
    restarting: NodeTarget | None = None
    pending_moves: list[NodeTarget] = field(default_factory=list)
    pending_removals: list[str] = field(default_factory=list)


class Actuator:
    """Applies reconfiguration plans to a cluster backend over time."""

    def __init__(
        self,
        backend: ClusterBackend,
        parameters: MeTParameters | None = None,
        on_plan_complete=None,
    ) -> None:
        self.backend = backend
        self.parameters = (parameters or MeTParameters()).validate()
        self.on_plan_complete = on_plan_complete
        self.report = ActuatorReport()
        self.phase = ActuatorPhase.IDLE
        self._inflight: _InFlightPlan | None = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def busy(self) -> bool:
        """Whether a plan is currently being applied."""
        return self.phase is not ActuatorPhase.IDLE

    def submit(self, plan: ReconfigurationPlan, now: float) -> bool:
        """Start applying a plan; returns False if one is already in flight."""
        if self.busy:
            return False
        if plan.is_noop():
            return False
        state = _InFlightPlan(plan=plan)
        # Provision new nodes immediately with the profile they will serve, so
        # no later restart is needed for them.
        for target in plan.targets:
            if target.node in plan.new_nodes:
                config = self._config_for(target.profile)
                real_name = self.backend.add_node(config, target.profile)
                state.placeholder_map[target.node] = real_name
                self.report.nodes_added += 1
        state.pending_restarts = [
            t for t in plan.targets if t.needs_restart and t.node not in plan.new_nodes
        ]
        state.pending_moves = [
            t for t in plan.targets if not t.needs_restart or t.node in plan.new_nodes
        ]
        state.pending_removals = list(plan.nodes_to_remove)
        self._inflight = state
        self.report.last_plan_started = now
        self.phase = (
            ActuatorPhase.PROVISIONING if plan.new_nodes else ActuatorPhase.RECONFIGURING
        )
        return True

    def step(self, now: float) -> None:
        """Advance the in-flight plan as far as the cluster state allows."""
        if not self.busy or self._inflight is None:
            return
        if self.phase is ActuatorPhase.PROVISIONING:
            self._step_provisioning()
        if self.phase is ActuatorPhase.RECONFIGURING:
            self._step_reconfiguring()
        if self.phase is ActuatorPhase.WAITING_RESTART:
            self._step_waiting_restart()
        if self.phase is ActuatorPhase.MOVING:
            self._step_moving()
        if self.phase is ActuatorPhase.REMOVING:
            self._step_removing(now)

    # ------------------------------------------------------------------ #
    # phase handlers
    # ------------------------------------------------------------------ #
    def _step_provisioning(self) -> None:
        state = self._inflight
        assert state is not None
        for real in state.placeholder_map.values():
            # A provisioned node that crashed while booting will never come
            # online; waiting for it would wedge the actuator.  Its moves
            # are dropped later by the same existence check in _step_moving.
            if self._node_exists(real) and not self.backend.node_is_online(real):
                return
        self.phase = ActuatorPhase.RECONFIGURING

    def _step_reconfiguring(self) -> None:
        state = self._inflight
        assert state is not None
        while state.restarting is None:
            if not state.pending_restarts:
                self.phase = ActuatorPhase.MOVING
                return
            target = state.pending_restarts.pop(0)
            if not self._node_exists(target.node):
                # The node crashed after the plan was decided; there is
                # nothing left to restart.  Skip rather than abort the plan.
                continue
            config = self._config_for(target.profile)
            self.backend.reconfigure_node(target.node, config, target.profile)
            state.restarting = target
            self.phase = ActuatorPhase.WAITING_RESTART

    def _step_waiting_restart(self) -> None:
        state = self._inflight
        assert state is not None
        target = state.restarting
        assert target is not None
        if not self._node_exists(target.node):
            # The restarting node crashed and will never come back online;
            # waiting for it would wedge the actuator for the rest of the
            # run.  Abandon this target and continue with the plan.
            state.restarting = None
            self.phase = ActuatorPhase.RECONFIGURING
            return
        if not self.backend.node_is_online(target.node):
            return
        self._apply_target(target)
        # Counted on completion: a restart abandoned because its node
        # crashed mid-restart was not a reconfiguration.
        self.report.nodes_reconfigured += 1
        state.restarting = None
        self.phase = ActuatorPhase.RECONFIGURING

    def _step_moving(self) -> None:
        state = self._inflight
        assert state is not None
        while state.pending_moves:
            target = state.pending_moves.pop(0)
            node = state.placeholder_map.get(target.node, target.node)
            if not self._node_exists(node):
                # Move destination crashed mid-plan: drop the move (its
                # partitions were already reassigned by the failure path).
                continue
            if not self.backend.node_is_online(node):
                state.pending_moves.insert(0, target)
                return
            self._apply_target(target, resolved_node=node)
        self.phase = ActuatorPhase.REMOVING

    def _step_removing(self, now: float) -> None:
        state = self._inflight
        assert state is not None
        for node in state.pending_removals:
            if not self._node_exists(node):
                # Crashed before we could decommission it: already gone.
                continue
            self.backend.remove_node(node)
            self.report.nodes_removed += 1
        state.pending_removals = []
        self.report.plans_applied += 1
        self.report.last_plan_finished = now
        self.phase = ActuatorPhase.IDLE
        self._inflight = None
        if self.on_plan_complete is not None:
            self.on_plan_complete(now)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _node_exists(self, name: str) -> bool:
        """Whether the node is still part of the cluster (it may have
        crashed since the plan was decided)."""
        return name in self.backend.node_names()

    def _apply_target(self, target: NodeTarget, resolved_node: str | None = None) -> None:
        """Move a node's target partitions onto it and restore locality."""
        node = resolved_node or target.node
        for partition in target.partition_list:
            self.backend.move_partition(partition, node)
            self.report.partitions_moved += 1
        threshold = (
            self.parameters.write_locality_threshold
            if target.profile == "write"
            else self.parameters.read_locality_threshold
        )
        if self.backend.node_locality(node) < threshold:
            self.backend.major_compact(node)
            self.report.compactions_triggered += 1

    def _config_for(self, profile_name: str):
        if profile_name in NODE_PROFILES:
            return profile_for(profile_name).config
        return profile_for("read_write").config
