"""Cluster backend interfaces.

MeT's Monitor and Actuator components interface with the NoSQL database and
with the IaaS (Figure 2 of the paper).  Controllers in this repository (MeT,
the tiramola baseline and the manual strategies) are written against the
:class:`ClusterBackend` protocol so the same controller code drives either
the analytical simulator or the functional mini-HBase cluster.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.hbase.config import RegionServerConfig
from repro.monitoring.collector import MetricsSource


@runtime_checkable
class ClusterActions(Protocol):
    """Actuation interface of a cluster backend."""

    def add_node(self, config: RegionServerConfig, profile_name: str) -> str:
        """Provision a new node (may boot asynchronously); returns its name."""

    def remove_node(self, name: str) -> None:
        """Decommission a node; its partitions move to the remaining nodes."""

    def reconfigure_node(
        self, name: str, config: RegionServerConfig, profile_name: str
    ) -> list[str]:
        """Drain and restart a node with a new configuration.

        Returns the ids of the partitions that were drained away so the
        caller can move them back once the node is online again.
        """

    def move_partition(self, partition_id: str, node: str) -> None:
        """Reassign one partition to a node."""

    def major_compact(self, name: str) -> None:
        """Trigger a major compaction of the node's non-local partitions."""

    def node_is_online(self, name: str) -> bool:
        """Whether a node finished booting/restarting and serves requests."""


@runtime_checkable
class ClusterBackend(MetricsSource, ClusterActions, Protocol):
    """Observation plus actuation: what a controller needs from a cluster."""
