"""Decision algorithm for adding and removing nodes (Stage B -- Algorithm 1).

Nodes are added *quadratically* (1, 2, 4, 8, ...) so a sufficient cluster
size is reached in a logarithmic number of iterations, and removed
*linearly* (one per iteration).  When the Decision Maker runs for the first
time and the cluster is not severely overloaded, the result is 0 nodes: the
InitialReconfiguration, which only redistributes and reconfigures the
existing nodes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SizingDecision:
    """Outcome of one Algorithm 1 invocation."""

    delta: int
    initial_reconfiguration: bool = False

    @property
    def adds_nodes(self) -> bool:
        """Whether nodes are being added."""
        return self.delta > 0

    @property
    def removes_nodes(self) -> bool:
        """Whether nodes are being removed."""
        return self.delta < 0


class SizingAlgorithm:
    """Stateful implementation of the paper's Algorithm 1."""

    def __init__(self, suboptimal_nodes_threshold: float = 0.50) -> None:
        if not 0.0 < suboptimal_nodes_threshold <= 1.0:
            raise ValueError("sub-optimal nodes threshold must be in (0, 1]")
        self.suboptimal_nodes_threshold = suboptimal_nodes_threshold
        self.nodes_to_change = 1
        self._first_time = True

    @property
    def first_time(self) -> bool:
        """Whether the next invocation is the first one."""
        return self._first_time

    def reset_growth(self) -> None:
        """Reset the quadratic growth (called when the cluster is healthy)."""
        self.nodes_to_change = 1

    def decide(self, suboptimal_nodes: float, remove: bool) -> SizingDecision:
        """Run Algorithm 1.

        Args:
            suboptimal_nodes: fraction of nodes in a sub-optimal (overloaded)
                state.
            remove: True when the cluster is *under*loaded rather than
                overloaded.
        """
        first_time = self._first_time
        self._first_time = False

        if suboptimal_nodes > self.suboptimal_nodes_threshold:
            result = self.nodes_to_change
            self.nodes_to_change *= 2
            return SizingDecision(delta=result)

        if first_time:
            # InitialReconfiguration: redistribute and reconfigure the current
            # cluster from scratch without changing its size.
            return SizingDecision(delta=0, initial_reconfiguration=True)

        if remove:
            self.nodes_to_change = 1
            return SizingDecision(delta=-1)

        result = self.nodes_to_change
        self.nodes_to_change *= 2
        return SizingDecision(delta=result)
