"""Corpus: rule D1 flags global/unseeded randomness however it is spelt.

Never imported; the linter only parses it.  `# expect: RULE` markers are
read by tests/test_lint.py as the exact expected findings.
"""

import random

import numpy as np
from random import shuffle


def draw() -> float:
    return random.random()  # expect: D1


def pick(items: list) -> None:
    shuffle(items)  # expect: D1


def noise():
    return np.random.rand(3)  # expect: D1


def unseeded_generator():
    return np.random.default_rng()  # expect: D1
