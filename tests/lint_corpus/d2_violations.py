# repro: scope(library)
"""Corpus: rule D2 flags wall-clock reads in library-scoped code."""

import time
from datetime import datetime

from time import perf_counter  # expect: D2


def stamp() -> float:
    return time.time()  # expect: D2


def when() -> str:
    return datetime.now().isoformat()  # expect: D2


def measure() -> float:
    return perf_counter()  # expect: D2
