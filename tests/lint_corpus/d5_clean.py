# repro: scope(library)
"""Corpus: canonical (sort_keys=True) JSON passes rule D5 clean."""

import json


def canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True)


def canonical_dump(record: dict, handle) -> None:
    json.dump(record, handle, sort_keys=True, indent=2)
