"""Corpus: quantise-then-accumulate passes rule D6 clean."""

SCALE = 1 << 16


class Histogram:
    __mergeable_integer_channels__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}

    def record(self, index: int, weight: float) -> None:
        count = int(round(weight * SCALE))  # quantised before it reaches the channel
        if count:
            self.counts[index] = self.counts.get(index, 0) + count

    def merge(self, other: "Histogram") -> None:
        counts = self.counts
        for index, count in other.counts.items():
            counts[index] = counts.get(index, 0) + count
