"""Corpus: rule D6 flags floats flowing into mergeable integer channels."""


class Histogram:
    __mergeable_integer_channels__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}

    def record(self, index: int, weight: float) -> None:
        self.counts[index] = self.counts.get(index, 0) + weight  # expect: D6

    def halve(self, index: int) -> None:
        self.counts[index] = self.counts.get(index, 0) / 2  # expect: D6

    def bump(self, index: int) -> None:
        counts = self.counts
        counts[index] = counts.get(index, 0) + 0.5  # expect: D6
