# repro: scope(library)
"""Corpus: rule D3 flags unsorted set iteration feeding ordered output."""


def serialise(names: list) -> str:
    parts = set(names)
    return ",".join(parts)  # expect: D3


def rows(a: dict, b: dict) -> list:
    merged = set(a) | set(b)
    return [item for item in merged]  # expect: D3


def walk(flags: set) -> None:
    for flag in {"a", "b"} | flags:  # expect: D3
        print(flag)


def listed(items: list) -> list:
    return list(set(items))  # expect: D3
