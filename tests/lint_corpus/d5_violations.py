# repro: scope(library)
"""Corpus: rule D5 flags non-canonical JSON in library-scoped code."""

import json


def dump_record(record: dict, handle) -> None:
    handle.write(json.dumps(record))  # expect: D5
    json.dump(record, handle)  # expect: D5


def pretty(record: dict) -> str:
    return json.dumps(record, indent=2)  # expect: D5
