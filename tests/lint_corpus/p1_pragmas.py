"""Corpus: malformed pragmas are findings (P1), never silent suppressions."""

MISSING_REASON = 1  # repro: allow(D2)  # expect: P1
UNKNOWN_RULE = 2  # repro: allow(D9, reason=no such rule)  # expect: P1
TYPO = 3  # repro: allwo(D2, reason=misspelt directive)  # expect: P1
BAD_SCOPE = 4  # repro: scope(kernel)  # expect: P1
