# repro: scope(library)
"""Corpus: pragma'd bench code and the wallclock door pass rule D2 clean."""

import time

from repro.util.wallclock import wall_perf_counter


# repro: allow(D2, reason=corpus bench helper; timing feeds a printed report only)
def bench_loop(n: int) -> float:
    start = time.perf_counter()
    for _ in range(n):
        pass
    return time.perf_counter() - start


def measured() -> float:
    return wall_perf_counter()


def sampled() -> float:
    return time.process_time()  # repro: allow(D2, reason=same-line pragma demo)
