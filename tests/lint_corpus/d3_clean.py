# repro: scope(library)
"""Corpus: sorted sets, dict views and order-free folds pass rule D3 clean."""


def serialise(names: list) -> str:
    return ",".join(sorted(set(names)))


def rows(mapping: dict) -> list:
    # dict views iterate in insertion order: deterministic when the dict
    # was built deterministically, so not D3's business.
    return [mapping[key] for key in mapping]


def total(values: list) -> int:
    return sum(set(values))


def contains(items: list, needle: str) -> bool:
    return needle in set(items)
