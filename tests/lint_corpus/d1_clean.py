"""Corpus: seeded RNG plumbing must pass rule D1 clean (false-positive guard)."""

import random

import numpy as np

from repro.util.rng import make_rng


def draw(seed: int) -> float:
    rng = random.Random(seed)  # seeded instance, not the global RNG
    return rng.random()


def generator(seed: int):
    return np.random.default_rng(seed)  # seeded factory


def plumbed(seed: int) -> float:
    return make_rng(seed).random()
