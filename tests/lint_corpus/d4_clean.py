"""Corpus: discharged or hooked writes pass rule D4's caller audit clean."""


def blessed_write(simulator) -> None:
    simulator.nodes["n1"].config = {"heap_mb": 4096}
    simulator.invalidate_solution()


def hooked_write(region) -> None:
    # SimulatedRegion.__setattr__ intercepts .node and .block_homes: the
    # hook reindexes and bumps the structure version itself.
    region.node = "n2"
    region.block_homes = {"n2"}


def unrelated_state(vm) -> None:
    # Not solver state: the receiver carries no solver-state hint.
    vm.state = "ACTIVE"
