"""Corpus: rule D4's caller-side audit -- stale writes to solver state."""


def stale_config(simulator) -> None:
    simulator.nodes["n1"].config = {"heap_mb": 4096}  # expect: D4


def stale_binding(binding) -> None:
    binding.op_mix = {"read": 1.0}  # expect: D4
