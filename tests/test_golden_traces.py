"""Golden-trace regression suite: the controller stack, locked down.

Every canned scenario runs at reduced scale under both MeT and tiramola
(plus the planner controller on its goldened subset, see
``trace.PLANNER_GOLDEN_SCENARIOS``); the resulting decision/throughput
trace is diffed against the committed golden under ``tests/golden/``.  Any change to the simulator kernel, the
monitor, the decision maker, the actuator, the IaaS model or the scenario
engine that shifts end-to-end behaviour fails here -- if the shift is
intentional, regenerate with ``PYTHONPATH=src python scripts/regen_goldens.py``
and commit the diff.

Also enforced here:

* two identical-seed runs serialise to byte-identical traces;
* the fast and reference kernels agree on every golden scenario within the
  1e-6 relative tolerance the kernel-equivalence suite established;
* the catalog demonstrates every scenario event family.
"""

import copy
import json
import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.scenarios import (
    CANNED_SCENARIOS,
    TraceFormatError,
    diff_traces,
    load_trace,
    scenario_trace,
    trace_to_json,
)
from repro.scenarios.trace import (
    GOLDEN_CONTROLLERS,
    PLANNER_GOLDEN_SCENARIOS,
    TENANT_SERIES_DECIMALS,
    golden_combos,
    golden_name,
)
from repro.util.wallclock import wall_perf_counter

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Committed-golden comparison: tight, tolerating only float formatting
#: noise, since goldens are regenerated on the same code path.
GOLDEN_REL_TOL = 1e-9
#: Fast-vs-reference kernel comparison (matches tests/test_kernel_equivalence).
KERNEL_REL_TOL = 1e-6
#: Tenant-series kernel comparison: the series are serialised at capped
#: precision (TENANT_SERIES_DECIMALS), so a benign 1e-6 kernel divergence
#: can straddle a rounding boundary and show as one full rounding step.
#: math.isclose takes the max of the two bounds (not their sum), so the
#: relative bound alone must absorb a 1e-6 divergence *plus* one rounding
#: step on kilo-op/s values (~1e-3/2400 ≈ 4e-7 + 1e-6): 1e-4 does with two
#: orders of headroom while a real kernel divergence still lands far above
#: it; the absolute bound covers near-zero latencies where the relative
#: bound collapses.
TENANT_SERIES_REL_TOL = 1e-4
TENANT_SERIES_ABS_TOL = 2.0 * 10.0 ** -TENANT_SERIES_DECIMALS

COMBOS = golden_combos()

#: Scenario/controller pairs double-run under the reference kernel for the
#: agreement check.  Kernel equivalence is a property of the *kernel*, not
#: of every catalog entry, so the matrix is thinned to fit the golden
#: suite's time budget (~3.5 s) while keeping the coverage that matters:
#:
#: * ``long_horizon`` is excluded outright -- two simulated hours under the
#:   ~7x-slower reference kernel would dominate the budget, and
#:   tests/test_kernel_equivalence.py already locks the property down;
#: * every other scenario is double-run under exactly one controller,
#:   alternating MeT/tiramola down the sorted catalog, so every event
#:   family crosses both kernels and both actuation paths (MeT's
#:   reconfigure-first plans, tiramola's add/remove + balancer daemon)
#:   stay exercised without running the full cross product.
KERNEL_COMBOS = [
    (scenario, GOLDEN_CONTROLLERS[index % len(GOLDEN_CONTROLLERS)])
    for index, scenario in enumerate(
        scenario for scenario in sorted(CANNED_SCENARIOS) if scenario != "long_horizon"
    )
] + [
    # One planner crossing so the calibrated controller's decision path is
    # exercised under the reference kernel too (a cheap 10-minute scenario;
    # the rest of the planner subset would re-prove the same property).
    ("data_growth", "planner"),
]


#: Wall-clock budget for this module (seconds).  The golden suite is the
#: bulk of the tier-1 bill, and ROADMAP tracks its budget explicitly; the
#: guard fails when catalog growth silently erodes it instead of letting
#: the suite creep.  Override with GOLDEN_SUITE_BUDGET_SECONDS on hardware
#: whose baseline differs from the ~4.8 s this catalog costs here (CI sets
#: a looser bound for shared-runner variance).  Raised 5.0 -> 6.0 when the
#: planner controller grew the matrix (three planner goldens plus one
#: reference-kernel crossing, ~+1.2 s) -- a deliberate spend, not creep.
SUITE_BUDGET_SECONDS = float(os.environ.get("GOLDEN_SUITE_BUDGET_SECONDS", "6.0"))

_suite_clock: dict[str, float] = {}


@pytest.fixture(autouse=True)
def _guarded(determinism_guard):
    """Every golden test runs under the runtime determinism sanitizer.

    These tests *are* the byte-reproducibility claim, so wall-clock reads
    and global-RNG draws anywhere under them raise DeterminismViolation
    (the budget bookkeeping below measures through repro.util.wallclock,
    the audited door the guard leaves open).
    """
    yield


@pytest.fixture(scope="module", autouse=True)
def _suite_timer():
    """Start the module's wall-clock on its first test."""
    _suite_clock.setdefault("start", wall_perf_counter())
    yield


@lru_cache(maxsize=None)
def _default_trace(scenario: str, controller: str) -> dict:
    """One default-kernel (event) run per combo, shared by the golden and
    kernel tests (runs are deterministic, so caching cannot hide a
    divergence)."""
    return scenario_trace(CANNED_SCENARIOS[scenario], controller)


def _load_golden(scenario: str, controller: str) -> dict:
    path = GOLDEN_DIR / golden_name(scenario, controller)
    assert path.exists(), (
        f"missing golden {path.name}; generate it with "
        "`PYTHONPATH=src python scripts/regen_goldens.py`"
    )
    # load_trace refuses stale schema versions with a regenerate hint, so a
    # format bump fails here with one clear message per golden instead of
    # hundreds of spurious value diffs.
    return load_trace(path)


class TestGoldenTraces:
    @pytest.mark.parametrize("scenario,controller", COMBOS)
    def test_trace_matches_committed_golden(self, scenario, controller):
        golden = _load_golden(scenario, controller)
        observed = _default_trace(scenario, controller)
        differences = diff_traces(
            golden, observed, rel_tol=GOLDEN_REL_TOL, abs_tol=GOLDEN_REL_TOL
        )
        assert not differences, (
            f"{scenario} under {controller} diverged from its golden trace "
            f"({len(differences)} differences):\n  " + "\n  ".join(differences[:20])
            + "\nIf the change is intentional, regenerate with "
            "`PYTHONPATH=src python scripts/regen_goldens.py` and commit the diff."
        )

    @pytest.mark.parametrize("scenario,controller", KERNEL_COMBOS)
    def test_kernels_agree(self, scenario, controller):
        """The default (event) kernel and kernel="reference" tell the same
        story.  Event-vs-fast byte identity is locked down separately by
        tests/test_kernel_soak.py."""
        spec = CANNED_SCENARIOS[scenario]
        fast = copy.deepcopy(_default_trace(scenario, controller))
        reference = scenario_trace(spec, controller, kernel="reference")
        # The kernel tag itself legitimately differs.
        fast.pop("kernel")
        reference.pop("kernel")
        # Assertion details embed throughput values as rounded strings; a
        # 1e-6 kernel divergence can flip the last printed digit, so compare
        # the verdicts (name + passed) and drop the prose.
        for trace in (fast, reference):
            for verdict in trace["assertions"]:
                verdict.pop("detail")
        # Percentile columns and the histogram section are bin-granular
        # (~12% per bin): a benign 1e-6 float divergence that lands a value
        # on the far side of a bin edge shifts them a whole bin, far past
        # any fair float tolerance.  Drop them here -- event-vs-fast byte
        # identity of the full distributions is locked down by the soak.
        for trace in (fast, reference):
            trace.pop("latency_distributions")
            trace["tenant_series"] = {
                name: [row[:3] for row in rows]
                for name, rows in trace["tenant_series"].items()
            }
        # Tenant series are serialised at capped precision, where a benign
        # kernel divergence can flip a rounding boundary; compare them
        # separately at rounding-step tolerance.
        differences = diff_traces(
            {"tenant_series": fast.pop("tenant_series")},
            {"tenant_series": reference.pop("tenant_series")},
            rel_tol=TENANT_SERIES_REL_TOL,
            abs_tol=TENANT_SERIES_ABS_TOL,
        )
        differences += diff_traces(
            fast, reference, rel_tol=KERNEL_REL_TOL, abs_tol=KERNEL_REL_TOL
        )
        assert not differences, (
            f"kernels diverged on {scenario} under {controller}:\n  "
            + "\n  ".join(differences[:20])
        )

    @pytest.mark.parametrize(
        "scenario,controller",
        [
            ("flash_crowd", "tiramola"),
            # The heterogeneous (YCSB + TPC-C) catalog entry: determinism
            # must survive the tenant-protocol indirection too.
            ("mixed_tenancy", "met"),
            # The planner's served-rate sampling and model predictions must
            # replay byte-identically from the same seed as well.
            ("data_growth", "planner"),
        ],
    )
    def test_identical_seed_runs_are_byte_identical(self, scenario, controller):
        spec = CANNED_SCENARIOS[scenario]
        first = trace_to_json(scenario_trace(spec, controller))
        second = trace_to_json(scenario_trace(spec, controller))
        assert first == second

    def test_goldens_are_canonically_serialised(self):
        """Committed files are exactly what trace_to_json would write."""
        for scenario, controller in COMBOS:
            path = GOLDEN_DIR / golden_name(scenario, controller)
            golden = json.loads(path.read_text())
            assert path.read_text() == trace_to_json(golden), (
                f"{path.name} is not canonically serialised; regenerate it"
            )

    def test_golden_dir_matches_catalog_exactly(self):
        """One golden per (scenario, controller) — no orphans, no gaps.

        Mirrors the `regen_goldens.py --check` orphan/missing detection in
        tier-1, so a scenario added without goldens (or renamed without
        cleanup) fails here, not just in CI's drift gate.
        """
        expected = {golden_name(s, c) for s, c in COMBOS}
        committed = {p.name for p in GOLDEN_DIR.glob("*.json")}
        assert committed == expected, (
            f"missing: {sorted(expected - committed)}; "
            f"orphaned: {sorted(committed - expected)}"
        )


class TestCatalogCoverage:
    def test_every_event_family_is_demonstrated(self):
        """The catalog exercises all scenario event types at least once."""
        families = {
            type(event).__name__
            for spec in CANNED_SCENARIOS.values()
            for event in spec.events
        }
        assert {
            "DiurnalLoad",
            "FlashCrowd",
            "TenantArrival",
            "TenantDeparture",
            "MixShift",
            "NodeCrash",
            "NodeRecovery",
            "NodeSlowdown",
            "DataGrowthBurst",
        } <= families

    def test_goldens_show_scenario_effects(self):
        """Each golden actually recorded its scenario's events firing.

        A scenario that declares no events (``tpcc_steady`` is steady by
        design) legitimately records no annotations."""
        for scenario, controller in COMBOS:
            golden = _load_golden(scenario, controller)
            if CANNED_SCENARIOS[scenario].events:
                assert golden["annotations"], f"{scenario} golden has no annotations"
            assert golden["series"], f"{scenario} golden has no series"

    def test_catalog_assertions_hold_in_goldens(self):
        """Declared controller expectations pass in every committed golden."""
        scenarios_with_assertions = set()
        for scenario, controller in COMBOS:
            golden = _load_golden(scenario, controller)
            for verdict in golden["assertions"]:
                scenarios_with_assertions.add(scenario)
                assert verdict["passed"], (
                    f"{scenario} under {controller} violates its declared "
                    f"expectation {verdict['assertion']}: {verdict['detail']}"
                )
        assert len(scenarios_with_assertions) >= 2, (
            "the catalog should declare expectations on at least two scenarios"
        )

    def test_goldens_carry_tenant_series_and_cost(self):
        """Every golden records per-tenant quality series and a cost envelope."""
        for scenario, controller in COMBOS:
            golden = _load_golden(scenario, controller)
            tenants = set(golden["per_tenant_throughput"])
            assert tenants <= set(golden["tenant_series"]), (
                f"{scenario}/{controller}: tenants missing from tenant_series"
            )
            for name, rows in golden["tenant_series"].items():
                assert rows, f"{scenario}/{controller}: empty series for {name}"
                # [minute, ops/s, latency, p95, p99]; the percentile columns
                # are null only when distributions were disabled, which a
                # golden run never does.
                assert all(len(row) == 5 for row in rows)
                assert all(row[3] is not None and row[4] is not None for row in rows)
                assert name in golden["latency_distributions"], (
                    f"{scenario}/{controller}: no merged distribution for {name}"
                )
            assert golden["cost"]["pricing"], f"{scenario}/{controller}: no pricing"
            assert golden["cost"]["total"] > 0.0
            # The billing ledger covers at least the node-online time the
            # harness counted (VM uptime can exceed it across restarts).
            ledger_total = sum(golden["cost"]["machine_minutes"].values())
            assert ledger_total >= golden["machine_minutes"] - 1e-6, (
                f"{scenario}/{controller}: ledger does not cover machine-minutes"
            )

    def test_catalog_declares_service_quality_bounds(self):
        """At least six scenarios put SLO or cost bounds on the controllers."""
        bounded = set()
        for scenario, controller in COMBOS:
            golden = _load_golden(scenario, controller)
            if golden["slo"]:
                bounded.add(scenario)
            for verdict in golden["assertions"]:
                if verdict["assertion"].startswith(
                    ("LatencyWithin", "SLOViolationsBelow", "CostCeiling")
                ):
                    bounded.add(scenario)
        assert len(bounded) >= 6, (
            f"only {sorted(bounded)} declare SLO/cost expectations"
        )

    def test_catalog_declares_percentile_slos(self):
        """At least three scenarios promise tail latency, under both
        controllers, and their LatencyPercentileWithin verdicts are
        serialised (and pass) in the goldens."""
        declared = set()
        for scenario, controller in COMBOS:
            golden = _load_golden(scenario, controller)
            has_slo = any(
                "p95<=" in entry["slo"] or "p99<=" in entry["slo"]
                for entry in golden["slo"]
            )
            has_verdict = any(
                verdict["assertion"].startswith("LatencyPercentileWithin")
                for verdict in golden["assertions"]
            )
            if has_slo and has_verdict:
                declared.add((scenario, controller))
        scenarios = {scenario for scenario, _ in declared}
        assert len(scenarios) >= 3, (
            f"only {sorted(scenarios)} declare percentile SLOs with verdicts"
        )
        for scenario in scenarios:
            for controller in GOLDEN_CONTROLLERS:
                assert (scenario, controller) in declared, (
                    f"{scenario} lacks percentile coverage under {controller}"
                )

    def test_slo_verdicts_visible_in_goldens(self):
        """Somewhere in the catalog an SLO actually accrues violation-minutes
        (and is still inside its declared budget) -- the verdicts carry
        signal, not just vacuous passes."""
        nonzero = 0
        for scenario, controller in COMBOS:
            golden = _load_golden(scenario, controller)
            for entry in golden["slo"]:
                assert entry["samples"] > 0 or entry["satisfied"]
                if entry["violation_minutes"] > 0:
                    nonzero += 1
        assert nonzero >= 1

    def test_controllers_act_somewhere_in_the_catalog(self):
        """The catalog is stressful enough that every controller takes actions."""
        met_plans = 0
        tiramola_adds = 0
        for scenario in CANNED_SCENARIOS:
            met = _load_golden(scenario, "met")
            tiramola = _load_golden(scenario, "tiramola")
            met_plans += sum(1 for d in met["decisions"] if d["kind"] == "plan")
            tiramola_adds += sum(
                1 for d in tiramola["decisions"] if d["kind"] == "add_node"
            )
        assert met_plans >= 3
        assert tiramola_adds >= 3
        # The planner subset must show both directions of model-driven
        # scaling: buying capacity against a predicted breach and giving
        # back paid-for-but-unused headroom.
        planner_adds = 0
        planner_removes = 0
        for scenario in PLANNER_GOLDEN_SCENARIOS:
            planner = _load_golden(scenario, "planner")
            planner_adds += sum(
                1 for d in planner["decisions"] if d["kind"] == "add_node"
            )
            planner_removes += sum(
                1 for d in planner["decisions"] if d["kind"] == "remove_node"
            )
        assert planner_adds >= 1
        assert planner_removes >= 2

    def test_tpcc_scenarios_carry_native_units(self):
        """The TPC-C catalog entries declare tpmC floors and unit metadata."""
        for scenario in ("tpcc_steady", "tpcc_order_rush", "mixed_tenancy"):
            for controller in GOLDEN_CONTROLLERS:
                golden = _load_golden(scenario, controller)
                assert golden["tenant_units"]["tpcc"] == "tpmC"
                tpmc_floors = [
                    entry for entry in golden["slo"]
                    if entry["tenant"] == "tpcc" and entry["unit"] == "tpmC"
                ]
                assert tpmc_floors, f"{scenario} declares no tpmC SLO"
                assert all("tpmC" in entry["slo"] for entry in tpmc_floors)


class TestGoldenSuiteBudget:
    """Defined last in the module so its test runs after the whole suite."""

    def test_suite_stays_inside_wall_clock_budget(self):
        """Catalog growth must not silently erode the tier-1 time budget."""
        elapsed = wall_perf_counter() - _suite_clock["start"]
        assert elapsed <= SUITE_BUDGET_SECONDS, (
            f"golden suite took {elapsed:.1f}s, budget {SUITE_BUDGET_SECONDS:.1f}s "
            "(see ROADMAP; trim the catalog/kernel matrix or raise the budget "
            "deliberately via GOLDEN_SUITE_BUDGET_SECONDS)"
        )
