"""Golden-trace regression suite: the controller stack, locked down.

Every canned scenario runs at reduced scale under both MeT and tiramola;
the resulting decision/throughput trace is diffed against the committed
golden under ``tests/golden/``.  Any change to the simulator kernel, the
monitor, the decision maker, the actuator, the IaaS model or the scenario
engine that shifts end-to-end behaviour fails here -- if the shift is
intentional, regenerate with ``PYTHONPATH=src python scripts/regen_goldens.py``
and commit the diff.

Also enforced here:

* two identical-seed runs serialise to byte-identical traces;
* the fast and reference kernels agree on every golden scenario within the
  1e-6 relative tolerance the kernel-equivalence suite established;
* the catalog demonstrates every scenario event family.
"""

import copy
import json
from functools import lru_cache
from pathlib import Path

import pytest

from repro.scenarios import (
    CANNED_SCENARIOS,
    diff_traces,
    scenario_trace,
    trace_to_json,
)
from repro.scenarios.trace import GOLDEN_CONTROLLERS, golden_name

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Committed-golden comparison: tight, tolerating only float formatting
#: noise, since goldens are regenerated on the same code path.
GOLDEN_REL_TOL = 1e-9
#: Fast-vs-reference kernel comparison (matches tests/test_kernel_equivalence).
KERNEL_REL_TOL = 1e-6

COMBOS = [
    (scenario, controller)
    for scenario in sorted(CANNED_SCENARIOS)
    for controller in GOLDEN_CONTROLLERS
]

#: Scenarios double-run under the reference kernel for the agreement check.
#: ``long_horizon`` is excluded: two simulated hours under the ~7x-slower
#: reference kernel would dominate the golden suite's time budget, and the
#: kernel-equivalence property it would re-check is already covered by the
#: nine other scenarios plus tests/test_kernel_equivalence.py.
KERNEL_COMBOS = [
    (scenario, controller)
    for scenario, controller in COMBOS
    if scenario != "long_horizon"
]


@lru_cache(maxsize=None)
def _fast_trace(scenario: str, controller: str) -> dict:
    """One fast-kernel run per combo, shared by the golden and kernel tests
    (runs are deterministic, so caching cannot hide a divergence)."""
    return scenario_trace(CANNED_SCENARIOS[scenario], controller, kernel="fast")


def _load_golden(scenario: str, controller: str) -> dict:
    path = GOLDEN_DIR / golden_name(scenario, controller)
    assert path.exists(), (
        f"missing golden {path.name}; generate it with "
        "`PYTHONPATH=src python scripts/regen_goldens.py`"
    )
    return json.loads(path.read_text())


class TestGoldenTraces:
    @pytest.mark.parametrize("scenario,controller", COMBOS)
    def test_trace_matches_committed_golden(self, scenario, controller):
        golden = _load_golden(scenario, controller)
        observed = _fast_trace(scenario, controller)
        differences = diff_traces(
            golden, observed, rel_tol=GOLDEN_REL_TOL, abs_tol=GOLDEN_REL_TOL
        )
        assert not differences, (
            f"{scenario} under {controller} diverged from its golden trace "
            f"({len(differences)} differences):\n  " + "\n  ".join(differences[:20])
            + "\nIf the change is intentional, regenerate with "
            "`PYTHONPATH=src python scripts/regen_goldens.py` and commit the diff."
        )

    @pytest.mark.parametrize("scenario,controller", KERNEL_COMBOS)
    def test_kernels_agree(self, scenario, controller):
        """kernel="fast" and kernel="reference" tell the same story."""
        spec = CANNED_SCENARIOS[scenario]
        fast = copy.deepcopy(_fast_trace(scenario, controller))
        reference = scenario_trace(spec, controller, kernel="reference")
        # The kernel tag itself legitimately differs.
        fast.pop("kernel")
        reference.pop("kernel")
        # Assertion details embed throughput values as rounded strings; a
        # 1e-6 kernel divergence can flip the last printed digit, so compare
        # the verdicts (name + passed) and drop the prose.
        for trace in (fast, reference):
            for verdict in trace["assertions"]:
                verdict.pop("detail")
        differences = diff_traces(
            fast, reference, rel_tol=KERNEL_REL_TOL, abs_tol=KERNEL_REL_TOL
        )
        assert not differences, (
            f"kernels diverged on {scenario} under {controller}:\n  "
            + "\n  ".join(differences[:20])
        )

    def test_identical_seed_runs_are_byte_identical(self):
        spec = CANNED_SCENARIOS["flash_crowd"]
        first = trace_to_json(scenario_trace(spec, "tiramola", kernel="fast"))
        second = trace_to_json(scenario_trace(spec, "tiramola", kernel="fast"))
        assert first == second

    def test_goldens_are_canonically_serialised(self):
        """Committed files are exactly what trace_to_json would write."""
        for scenario, controller in COMBOS:
            path = GOLDEN_DIR / golden_name(scenario, controller)
            golden = json.loads(path.read_text())
            assert path.read_text() == trace_to_json(golden), (
                f"{path.name} is not canonically serialised; regenerate it"
            )


class TestCatalogCoverage:
    def test_every_event_family_is_demonstrated(self):
        """The catalog exercises all scenario event types at least once."""
        families = {
            type(event).__name__
            for spec in CANNED_SCENARIOS.values()
            for event in spec.events
        }
        assert {
            "DiurnalLoad",
            "FlashCrowd",
            "TenantArrival",
            "TenantDeparture",
            "MixShift",
            "NodeCrash",
            "NodeRecovery",
            "NodeSlowdown",
            "DataGrowthBurst",
        } <= families

    def test_goldens_show_scenario_effects(self):
        """Each golden actually recorded its scenario's events firing."""
        for scenario, controller in COMBOS:
            golden = _load_golden(scenario, controller)
            assert golden["annotations"], f"{scenario} golden has no annotations"
            assert golden["series"], f"{scenario} golden has no series"

    def test_catalog_assertions_hold_in_goldens(self):
        """Declared controller expectations pass in every committed golden."""
        scenarios_with_assertions = set()
        for scenario, controller in COMBOS:
            golden = _load_golden(scenario, controller)
            for verdict in golden["assertions"]:
                scenarios_with_assertions.add(scenario)
                assert verdict["passed"], (
                    f"{scenario} under {controller} violates its declared "
                    f"expectation {verdict['assertion']}: {verdict['detail']}"
                )
        assert len(scenarios_with_assertions) >= 2, (
            "the catalog should declare expectations on at least two scenarios"
        )

    def test_controllers_act_somewhere_in_the_catalog(self):
        """The catalog is stressful enough that both controllers take actions."""
        met_plans = 0
        tiramola_adds = 0
        for scenario in CANNED_SCENARIOS:
            met = _load_golden(scenario, "met")
            tiramola = _load_golden(scenario, "tiramola")
            met_plans += sum(1 for d in met["decisions"] if d["kind"] == "plan")
            tiramola_adds += sum(
                1 for d in tiramola["decisions"] if d["kind"] == "add_node"
            )
        assert met_plans >= 3
        assert tiramola_adds >= 3
