"""Perf-oriented regression tests for the YCSB key distributions.

Covers the two distribution satellites of the kernel-perf PR: the
incremental ``ZipfianChooser.extend`` (no O(n) recompute per key-space
growth) and the closed-form ``partition_request_shares`` for the uniform
and hotspot distributions.
"""

import pytest

from repro.workloads.ycsb.distributions import (
    HotspotChooser,
    LatestChooser,
    UniformChooser,
    ZipfianChooser,
    partition_request_shares,
)


class TestZipfianIncrementalExtend:
    def test_extend_matches_fresh_recompute(self):
        grown = ZipfianChooser(1000, seed=3)
        grown.extend(1500)
        fresh = ZipfianChooser(1500, seed=3)
        assert grown._zetan == pytest.approx(fresh._zetan, rel=1e-12)
        assert grown._eta == pytest.approx(fresh._eta, rel=1e-12)

    def test_repeated_single_extends_match_one_big_extend(self):
        stepwise = ZipfianChooser(100, seed=1)
        for count in range(101, 201):
            stepwise.extend(count)
        bulk = ZipfianChooser(100, seed=1)
        bulk.extend(200)
        assert stepwise._zetan == bulk._zetan
        assert stepwise._eta == bulk._eta

    def test_extend_cost_is_incremental(self):
        chooser = ZipfianChooser(1000, seed=1)
        baseline = chooser._zeta_terms_computed
        assert baseline == 1000
        for count in range(1001, 1501):
            chooser.extend(count)
        # 500 single-key extends must cost ~500 terms, not ~500 * n.
        assert chooser._zeta_terms_computed - baseline == 500

    def test_noop_extend_costs_nothing(self):
        chooser = ZipfianChooser(1000, seed=1)
        baseline = chooser._zeta_terms_computed
        chooser.extend(500)
        chooser.extend(1000)
        assert chooser._zeta_terms_computed == baseline

    def test_latest_chooser_heavy_insert_not_quadratic(self):
        chooser = LatestChooser(1000, seed=5)
        inserts = 2000
        for count in range(1001, 1001 + inserts):
            chooser.extend(count)
            chooser.next_index()
        # Initial build costs n terms; each insert adds exactly one more.
        assert chooser._zipf._zeta_terms_computed == 1000 + inserts
        assert chooser.record_count == 1000 + inserts
        assert all(0 <= chooser.next_index() < chooser.record_count for _ in range(200))


class TestAnalyticPartitionShares:
    def test_uniform_shares_are_exact(self):
        shares = partition_request_shares(
            lambda n, seed: UniformChooser(n, seed=seed), 1000, 4
        )
        assert shares == [0.25, 0.25, 0.25, 0.25]

    def test_uniform_shares_with_uneven_tail(self):
        shares = partition_request_shares(
            lambda n, seed: UniformChooser(n, seed=seed), 10, 3
        )
        # boundary = ceil(10/3) = 4 -> partitions cover 4/4/2 keys.
        assert shares == [0.4, 0.4, 0.2]
        assert sum(shares) == pytest.approx(1.0)

    def test_hotspot_shares_closed_form(self):
        shares = partition_request_shares(
            lambda n, seed: HotspotChooser(n, seed=seed), 1000, 4
        )
        # hot set = first 400 keys, 50% of requests; partition 0 is fully
        # hot, partition 1 is 150 hot + 100 cold, partitions 2-3 all cold.
        assert shares[0] == pytest.approx(0.5 * 250 / 400)
        assert shares[1] == pytest.approx(0.5 * 150 / 400 + 0.5 * 100 / 600)
        assert shares[2] == pytest.approx(0.5 * 250 / 600)
        assert shares[3] == pytest.approx(0.5 * 250 / 600)
        assert sum(shares) == pytest.approx(1.0)

    def test_hotspot_shares_match_empirical_sampling(self):
        analytic = partition_request_shares(
            lambda n, seed: HotspotChooser(n, seed=seed), 1000, 4
        )
        chooser = HotspotChooser(1000, seed=11)
        counts = [0] * 4
        samples = 40000
        for _ in range(samples):
            counts[min(chooser.next_index() // 250, 3)] += 1
        for share, count in zip(analytic, counts):
            assert share == pytest.approx(count / samples, abs=0.02)

    def test_hot_set_covering_everything_degenerates_to_uniform(self):
        shares = partition_request_shares(
            lambda n, seed: HotspotChooser(n, hot_set_fraction=1.0, seed=seed),
            1000,
            4,
        )
        assert shares == pytest.approx([0.25, 0.25, 0.25, 0.25])

    def test_zipfian_still_sampled_and_skewed(self):
        shares = partition_request_shares(
            lambda n, seed: ZipfianChooser(n, seed=seed), 1000, 4
        )
        assert shares[0] > shares[1] > 0
        assert sum(shares) == pytest.approx(1.0)

    def test_latest_still_sampled_and_skewed_to_tail(self):
        shares = partition_request_shares(
            lambda n, seed: LatestChooser(n, seed=seed), 1000, 4
        )
        assert shares[-1] > shares[0]
        assert sum(shares) == pytest.approx(1.0)
