"""Unit tests for the SLA subsystem: SLOs, pricing, assertions, back-compat.

The golden-trace suite locks the end-to-end behaviour down; these tests pin
the pieces in isolation -- the SLO evaluator's violation accounting, the
pricing model's ledger arithmetic, the new assertion types, the per-tenant
series plumbing, and the trace-format back-compat story (a format-2 golden
must fail with a clear "regenerate" message, not a wall of value diffs).
"""

import importlib.util
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.experiments.harness import (
    ExperimentHarness,
    StrategyRun,
    TenantSeriesPoint,
)
from repro.experiments.reporting import format_matchup
from repro.scenarios import (
    CANNED_SCENARIOS,
    CostCeiling,
    LatencyPercentileWithin,
    LatencyWithin,
    SLOViolationsBelow,
    TraceFormatError,
    load_trace,
    run_scenario,
)
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.metrics import MetricSeries
from repro.sla import (
    DEFAULT_PRICING,
    PricingModel,
    SLODefinition,
    evaluate_slo,
    machine_minute_ledger,
    pricing_model,
)
from repro.sla.scorecard import ScorecardRow, render_scorecard, scorecard_row
from repro.workloads.ycsb.scenario import build_paper_scenario

FIXTURES = Path(__file__).parent / "fixtures"


def make_run(tenant="workload-A", points=()):
    run = StrategyRun(name="t")
    run.tenant_series[tenant] = [TenantSeriesPoint(*p) for p in points]
    return run


class TestSLODefinition:
    def test_requires_some_bound(self):
        with pytest.raises(ValueError, match="ceiling and/or"):
            SLODefinition(tenant="A")

    def test_rejects_nonpositive_ceiling(self):
        with pytest.raises(ValueError, match="positive"):
            SLODefinition(tenant="A", latency_ceiling_ms=0.0)

    def test_rejects_nonpositive_percentile_ceiling(self):
        with pytest.raises(ValueError, match="p99 ceiling must be positive"):
            SLODefinition(tenant="A", p99_ceiling_ms=-1.0)

    def test_percentile_ceiling_alone_is_a_valid_bound(self):
        assert SLODefinition(tenant="A", p95_ceiling_ms=5.0).p95_ceiling_ms == 5.0

    def test_describe_lists_bounds(self):
        slo = SLODefinition(tenant="A", latency_ceiling_ms=40.0, throughput_floor=100.0)
        assert slo.describe() == "A: latency<=40ms throughput>=100ops/s"

    def test_describe_lists_percentile_bounds(self):
        slo = SLODefinition(
            tenant="A", latency_ceiling_ms=40.0, p95_ceiling_ms=60.0, p99_ceiling_ms=80.0
        )
        assert slo.describe() == "A: latency<=40ms p95<=60ms p99<=80ms"


class TestEvaluateSLO:
    def test_latency_violations_accrue_minutes(self):
        run = make_run(
            points=[
                (1.0, 900.0, 10.0),
                (2.0, 900.0, 55.0),
                (3.0, 900.0, 60.0),
                (4.0, 900.0, 10.0),
            ]
        )
        report = evaluate_slo(SLODefinition(tenant="A", latency_ceiling_ms=50.0), run)
        assert report.samples == 3  # the 1.0m sample's window overlaps warmup
        assert [v.minute for v in report.violations] == [2.0, 3.0]
        assert report.violation_minutes == 2.0
        assert not report.satisfied
        assert report.compliance == pytest.approx(1.0 / 3.0)

    def test_warmup_exempts_windows_overlapping_the_warmup(self):
        # The 1.5m sample *ends* past the warmup but its window starts at
        # 0.1m -- it is mostly warmup-period ticks and must not be judged.
        run = make_run(points=[(0.1, 10.0, 999.0), (1.5, 900.0, 999.0), (2.5, 900.0, 10.0)])
        report = evaluate_slo(SLODefinition(tenant="A", latency_ceiling_ms=50.0), run)
        assert report.samples == 1
        assert report.satisfied

    def test_zero_warmup_judges_everything(self):
        run = make_run(points=[(1.0, 900.0, 99.0)])
        slo = SLODefinition(tenant="A", latency_ceiling_ms=50.0, warmup_minutes=0.0)
        assert evaluate_slo(slo, run).violation_minutes == 1.0

    def test_dual_bound_sample_counts_once_latency_first(self):
        # A sample breaching both bounds is one violation-minute (time out
        # of SLO, not bounds broken), reported under the latency kind.
        run = make_run(points=[(1.0, 900.0, 1.0), (2.0, 400.0, 99.0)])
        slo = SLODefinition(tenant="A", latency_ceiling_ms=50.0, throughput_floor=800.0)
        report = evaluate_slo(slo, run)
        assert [v.kind for v in report.violations] == ["latency"]
        assert report.violation_minutes == 1.0

    def test_throughput_floor(self):
        run = make_run(points=[(1.0, 900.0, 1.0), (2.0, 900.0, 1.0), (3.0, 400.0, 1.0)])
        slo = SLODefinition(tenant="A", throughput_floor=800.0)
        report = evaluate_slo(slo, run)
        assert [v.kind for v in report.violations] == ["throughput"]
        assert report.violations[0].observed == 400.0

    def test_percentile_ceiling_judges_recorded_quantiles(self):
        run = make_run(
            points=[
                (1.0, 900.0, 10.0, 12.0, 15.0),
                (2.0, 900.0, 10.0, 12.0, 15.0),
                (3.0, 900.0, 10.0, 70.0, 90.0),
            ]
        )
        report = evaluate_slo(SLODefinition(tenant="A", p95_ceiling_ms=50.0), run)
        assert [(v.minute, v.kind, v.observed) for v in report.violations] == [
            (3.0, "p95", 70.0)
        ]
        report = evaluate_slo(SLODefinition(tenant="A", p99_ceiling_ms=50.0), run)
        assert [v.kind for v in report.violations] == ["p99"]
        assert report.violations[0].observed == 90.0

    def test_percentile_precedence_mean_then_p95_then_p99(self):
        # One sample breaching every bound counts once, under the most
        # tenant-visible kind that broke: mean latency, then p95, then p99.
        run = make_run(points=[(1.0, 900.0, 1.0, 1.0, 1.0), (2.0, 900.0, 99.0, 99.0, 99.0)])
        slo = SLODefinition(
            tenant="A", latency_ceiling_ms=50.0, p95_ceiling_ms=50.0, p99_ceiling_ms=50.0
        )
        report = evaluate_slo(slo, run)
        assert [v.kind for v in report.violations] == ["latency"]
        tail_only = SLODefinition(tenant="A", p95_ceiling_ms=50.0, p99_ceiling_ms=50.0)
        assert [v.kind for v in evaluate_slo(tail_only, run).violations] == ["p95"]

    def test_percentile_ceiling_without_distributions_raises(self):
        # 3-tuple points carry no recorded quantiles -- judging a tail
        # promise against them must fail loudly, not pass vacuously.
        run = make_run(points=[(1.0, 900.0, 10.0), (2.0, 900.0, 10.0)])
        slo = SLODefinition(tenant="A", p95_ceiling_ms=50.0)
        with pytest.raises(ValueError, match="recorded no latency distributions"):
            evaluate_slo(slo, run)

    def test_sample_minutes_scale_violation_minutes(self):
        run = make_run(points=[(1.0, 900.0, 10.0), (2.0, 900.0, 99.0)])
        slo = SLODefinition(tenant="A", latency_ceiling_ms=50.0)
        assert evaluate_slo(slo, run, sample_minutes=0.5).violation_minutes == 0.5

    def test_scenario_tenant_names_resolve_to_binding_series(self):
        run = make_run(tenant="workload-A", points=[(1.0, 900.0, 10.0), (2.0, 900.0, 10.0)])
        report = evaluate_slo(SLODefinition(tenant="A", latency_ceiling_ms=50.0), run)
        assert report.samples == 1

    def test_absent_tenant_is_vacuously_satisfied(self):
        report = evaluate_slo(
            SLODefinition(tenant="ghost", latency_ceiling_ms=1.0), make_run()
        )
        assert report.samples == 0 and report.satisfied


class TestWarmupFromFirstWindow:
    """The warmup exemption is measured from the *tenant's* first window.

    Regression for the warmup asymmetry: a tenant arriving at minute 30
    with ``warmup_minutes=2`` used to have only its first sample exempted
    (warmup was measured from the run start, long since elapsed) while a
    run-start tenant got the full two-minute window.
    """

    def test_late_tenant_gets_the_full_warmup_window(self):
        points = [(m, 900.0, 99.0) for m in (31.0, 32.0, 33.0, 34.0, 35.0)]
        run = make_run(points=points)
        slo = SLODefinition(tenant="A", latency_ceiling_ms=50.0, warmup_minutes=2.0)
        report = evaluate_slo(slo, run)
        # First window starts at 30m, so the deadline is 32m: the ramp-up
        # samples at 31m and 32m are exempt.  Pre-fix only 31m was.
        assert report.samples == 3
        assert [v.minute for v in report.violations] == [33.0, 34.0, 35.0]

    def test_run_start_tenant_semantics_unchanged(self):
        points = [(m, 900.0, 99.0) for m in (1.0, 2.0, 3.0, 4.0)]
        slo = SLODefinition(tenant="A", latency_ceiling_ms=50.0, warmup_minutes=2.0)
        report = evaluate_slo(slo, make_run(points=points))
        assert [v.minute for v in report.violations] == [3.0, 4.0]

    def test_single_sample_series_stays_exempt_under_positive_warmup(self):
        run = make_run(points=[(31.0, 900.0, 99.0)])
        slo = SLODefinition(tenant="A", latency_ceiling_ms=50.0, warmup_minutes=1.0)
        assert evaluate_slo(slo, run).samples == 0

    def test_tenant_arrival_scenario_exempts_ramp_samples(self):
        """End-to-end: a TenantArrival tenant's ramp-up is warmup-exempt."""
        from repro.scenarios import ScenarioSpec, TenantArrival, TenantSpec
        from repro.scenarios.catalog import SMALL_A, SMALL_E

        spec = ScenarioSpec(
            name="late-arrival-warmup",
            tenants=(TenantSpec(SMALL_A, target_ops=1500.0),),
            events=(TenantArrival(minute=3.0, workload=SMALL_E, target_ops=300.0),),
            slos=(
                SLODefinition(tenant="E", latency_ceiling_ms=50.0, warmup_minutes=2.0),
            ),
            duration_minutes=8.0,
        )
        result = run_scenario(spec, controller="none", keep_simulator=False)
        report = result.slo_reports[0]
        # E samples at 3.08m..7.08m (five samples); its first window starts
        # at 2.08m, so the 2-minute warmup exempts the samples at 3.08m and
        # 4.08m.  Pre-fix, the run-start warmup deadline (2m) exempted only
        # the first.
        assert report.samples == 3
        assert report.satisfied


class TestNativeRateUnits:
    def test_tpmc_floor_converts_observations(self):
        from repro.workloads.tpcc.driver import tpmc_from_ops_rate

        run = make_run(
            tenant="tpcc",
            points=[(1.0, 2000.0, 1.0), (2.0, 2000.0, 1.0), (3.0, 1000.0, 1.0)],
        )
        floor = tpmc_from_ops_rate(1500.0)  # between the two observed rates
        slo = SLODefinition(tenant="tpcc", throughput_floor=floor, unit="tpmC")
        report = evaluate_slo(slo, run)
        assert [v.minute for v in report.violations] == [3.0]
        observed = report.violations[0].observed
        assert observed == pytest.approx(tpmc_from_ops_rate(1000.0))
        assert observed < floor

    def test_describe_carries_the_unit(self):
        slo = SLODefinition(tenant="tpcc", throughput_floor=1800.0, unit="tpmC")
        assert slo.describe() == "tpcc: throughput>=1800tpmC"

    def test_unknown_unit_rejected_at_declaration(self):
        with pytest.raises(ValueError, match="unknown throughput unit"):
            SLODefinition(tenant="tpcc", throughput_floor=1.0, unit="furlongs")


class TestPricing:
    def test_cost_of_prices_per_flavor(self):
        pricing = PricingModel(
            name="test", rates=(("small", 0.001), ("large", 0.004)), default_rate=0.002
        )
        envelope = pricing.cost_of({"small": 10.0, "large": 5.0, "exotic": 1.0})
        assert envelope.total == pytest.approx(10 * 0.001 + 5 * 0.004 + 1 * 0.002)
        assert envelope.machine_minutes == pytest.approx(16.0)
        assert [c.flavor for c in envelope.charges] == ["exotic", "large", "small"]

    def test_zero_minute_flavors_are_dropped(self):
        envelope = DEFAULT_PRICING.cost_of({"m1.small": 0.0})
        assert envelope.charges == ()
        assert envelope.total == 0.0

    def test_ledger_attributes_remainder_to_default_flavor(self):
        ledger = machine_minute_ledger(30.0, {"m1.large": 12.0})
        assert ledger["m1.large"] == 12.0
        assert ledger["met.regionserver"] == pytest.approx(18.0)

    def test_ledger_clamps_provider_overage(self):
        # VM uptime can exceed node-online time (restarts); the base share
        # clamps at zero instead of going negative.
        ledger = machine_minute_ledger(10.0, {"m1.large": 12.0})
        assert ledger == {"m1.large": 12.0}

    def test_pricing_model_lookup(self):
        assert pricing_model(DEFAULT_PRICING.name) is DEFAULT_PRICING
        with pytest.raises(KeyError, match="unknown pricing model"):
            pricing_model("free-tier")


class TestPricingTiers:
    def test_default_path_is_on_demand_home_region(self):
        # Pre-tier call sites pass no tier/region: identical rate and label.
        rate = DEFAULT_PRICING.rate_for("m1.small")
        assert rate == DEFAULT_PRICING.rate_for("m1.small", tier=None, region=None)
        envelope = DEFAULT_PRICING.cost_of({"m1.small": 10.0})
        assert envelope.pricing == DEFAULT_PRICING.name

    def test_tier_and_region_multipliers_compose(self):
        base = DEFAULT_PRICING.rate_for("m1.large")
        spot = DEFAULT_PRICING.rate_for("m1.large", tier="spot")
        assert spot == pytest.approx(base * 0.35)
        both = DEFAULT_PRICING.rate_for("m1.large", tier="reserved", region="eu-west")
        assert both == pytest.approx(base * 0.62 * 1.12)

    def test_cost_of_splits_ledger_under_a_tier(self):
        ledger = {"m1.small": 10.0, "m1.large": 5.0}
        on_demand = DEFAULT_PRICING.cost_of(ledger)
        spot = DEFAULT_PRICING.cost_of(ledger, tier="spot")
        # Every per-flavor charge scales by the same multiplier, so the
        # flavor split is preserved.
        assert spot.total == pytest.approx(on_demand.total * 0.35)
        for od_charge, spot_charge in zip(on_demand.charges, spot.charges):
            assert spot_charge.flavor == od_charge.flavor
            assert spot_charge.machine_minutes == od_charge.machine_minutes
            assert spot_charge.cost == pytest.approx(od_charge.cost * 0.35)
        assert spot.pricing == f"{DEFAULT_PRICING.name}:spot"

    def test_billing_label_encodes_tier_and_region(self):
        assert DEFAULT_PRICING.billing_label() == DEFAULT_PRICING.name
        assert (
            DEFAULT_PRICING.billing_label(tier="spot", region="us-east")
            == f"{DEFAULT_PRICING.name}:spot@us-east"
        )

    def test_unknown_tier_and_region_are_rejected(self):
        with pytest.raises(KeyError, match="unknown pricing tier"):
            DEFAULT_PRICING.rate_for("m1.small", tier="preemptible")
        with pytest.raises(KeyError, match="unknown region"):
            DEFAULT_PRICING.rate_for("m1.small", region="mars-central1")


class TestSLAAssertions:
    def test_latency_within_passes_and_fails(self):
        run = make_run(points=[(1.0, 900.0, 10.0), (2.0, 900.0, 30.0)])
        result = SimpleNamespace(run=run)
        assert LatencyWithin(tenant="A", ceiling_ms=35.0).evaluate(result).passed
        verdict = LatencyWithin(tenant="A", ceiling_ms=20.0).evaluate(result)
        assert not verdict.passed
        assert "peak 30.00ms" in verdict.detail

    def test_latency_within_fails_on_silent_series(self):
        verdict = LatencyWithin(tenant="A", ceiling_ms=35.0).evaluate(
            SimpleNamespace(run=make_run(tenant="other"))
        )
        assert not verdict.passed
        assert "no latency samples" in verdict.detail

    def test_latency_percentile_within_passes_and_fails(self):
        run = make_run(
            points=[(1.0, 900.0, 10.0, 12.0, 15.0), (2.0, 900.0, 10.0, 30.0, 45.0)]
        )
        result = SimpleNamespace(run=run)
        assert LatencyPercentileWithin(tenant="A", ceiling_ms=35.0).evaluate(result).passed
        verdict = LatencyPercentileWithin(tenant="A", ceiling_ms=20.0).evaluate(result)
        assert not verdict.passed
        assert "peak p95 30.00ms" in verdict.detail
        verdict = LatencyPercentileWithin(
            tenant="A", percentile=99, ceiling_ms=40.0
        ).evaluate(result)
        assert not verdict.passed
        assert "peak p99 45.00ms" in verdict.detail

    def test_latency_percentile_within_rejects_unrecorded_percentiles(self):
        with pytest.raises(ValueError, match="percentile must be 95 or 99"):
            LatencyPercentileWithin(tenant="A", percentile=50)

    def test_latency_percentile_within_fails_without_distributions(self):
        # Samples exist but carry no quantiles (distributions disabled):
        # a tail promise must not pass vacuously.
        run = make_run(points=[(1.0, 900.0, 10.0), (2.0, 900.0, 10.0)])
        verdict = LatencyPercentileWithin(tenant="A", ceiling_ms=35.0).evaluate(
            SimpleNamespace(run=run)
        )
        assert not verdict.passed
        assert "no p95 samples" in verdict.detail

    def test_slo_violations_below_reads_spec_reports(self):
        run = make_run(points=[(1.0, 900.0, 10.0), (2.0, 900.0, 60.0), (3.0, 900.0, 10.0)])
        report = evaluate_slo(SLODefinition(tenant="A", latency_ceiling_ms=50.0), run)
        result = SimpleNamespace(slo_reports=[report])
        assert SLOViolationsBelow(tenant="A", max_violation_minutes=1.0).evaluate(result).passed
        assert not SLOViolationsBelow(tenant="A", max_violation_minutes=0.0).evaluate(result).passed

    def test_slo_violations_below_fails_without_declared_slo(self):
        verdict = SLOViolationsBelow(tenant="A").evaluate(SimpleNamespace(slo_reports=[]))
        assert not verdict.passed
        assert "declares no SLO" in verdict.detail

    def test_slo_violations_below_fails_when_nothing_was_judged(self):
        # A tenant that never produced a series (disabled recording, typo'd
        # name) must not pass vacuously.
        report = evaluate_slo(
            SLODefinition(tenant="A", latency_ceiling_ms=50.0), make_run(tenant="other")
        )
        verdict = SLOViolationsBelow(tenant="A").evaluate(
            SimpleNamespace(slo_reports=[report])
        )
        assert not verdict.passed
        assert "judged no samples" in verdict.detail

    def test_cost_ceiling_prices_the_ledger(self):
        result = SimpleNamespace(machine_minute_ledger={"met.regionserver": 60.0})
        assert CostCeiling(max_cost=0.06).evaluate(result).passed  # 60min @ 0.05/h
        assert not CostCeiling(max_cost=0.04).evaluate(result).passed


class TestTenantSeriesPlumbing:
    def test_simulator_exposes_binding_latency(self):
        sim = ClusterSimulator()
        nodes = [sim.add_node() for _ in range(3)]
        scenario = build_paper_scenario(sim)
        for index, spec in enumerate(scenario.partitions):
            region = sim.regions[spec.partition_id]
            region.node = nodes[index % 3]
            region.block_homes = {nodes[index % 3]}
        sim.tick()
        for name in sim.bindings:
            assert sim.binding_latency_ms(name) > 0.0
            assert sim.metrics.latest(f"workload:{name}", "latency_ms") > 0.0
        assert sim.binding_latency_ms("nope") == 0.0

    def test_harness_records_window_means(self):
        sim = ClusterSimulator()
        nodes = [sim.add_node() for _ in range(3)]
        scenario = build_paper_scenario(sim)
        for index, spec in enumerate(scenario.partitions):
            region = sim.regions[spec.partition_id]
            region.node = nodes[index % 3]
            region.block_homes = {nodes[index % 3]}
        harness = ExperimentHarness(sim, sample_every_seconds=30.0)
        run = harness.run_for(120.0)
        assert set(run.tenant_series) == set(sim.bindings)
        for name, points in run.tenant_series.items():
            assert len(points) == len(run.series)
            entity = f"workload:{name}"
            # Each sample is the mean of the tick series over its window.
            first = points[1]
            expected = sim.metrics.series(entity, "latency_ms").mean_between(
                points[0].minute * 60.0, first.minute * 60.0
            )
            assert first.latency_ms == pytest.approx(expected)
            assert run.tenant_peak_latency(name) >= run.tenant_mean_latency(name) > 0.0

    def test_tenant_series_can_be_disabled(self):
        sim = ClusterSimulator()
        sim.add_node()
        harness = ExperimentHarness(sim, record_tenant_series=False)
        run = harness.run_for(60.0)
        assert run.tenant_series == {}

    def test_mean_between_is_half_open(self):
        series = MetricSeries(name="x")
        for t, v in [(5.0, 10.0), (10.0, 20.0), (15.0, 30.0)]:
            series.record(t, v)
        assert series.mean_between(5.0, 15.0) == pytest.approx(25.0)
        assert series.mean_between(0.0, 5.0) == pytest.approx(10.0)
        assert series.mean_between(20.0, 30.0, default=-1.0) == -1.0


class TestScorecard:
    def test_scorecard_row_reduces_a_run(self):
        result = run_scenario(
            CANNED_SCENARIOS["flash_crowd"], controller="met", keep_simulator=False
        )
        row = scorecard_row(result)
        assert row.scenario == "flash_crowd" and row.controller == "met"
        assert row.mean_throughput > 0.0
        assert row.cost == pytest.approx(result.cost.total)
        assert row.assertions_passed

    def test_render_scorecard_pairs_controllers(self):
        rows = [
            ScorecardRow("s1", "met", 1000.0, 0.0, 0.02, 30.0, True),
            ScorecardRow("s1", "tiramola", 900.0, 2.0, 0.03, 45.0, False),
        ]
        text = render_scorecard(rows)
        lines = text.splitlines()
        assert "met:viol-min" in lines[0] and "tiramola:viol-min" in lines[0]
        assert lines[2].startswith("s1")
        assert "NO" in lines[2]

    def test_format_matchup_blanks_missing_groups(self):
        text = format_matchup(
            [("a", "g1", 1)],
            key=lambda r: r[0],
            group=lambda r: r[1],
            columns=[("v", lambda r: str(r[2]))],
        )
        assert "g1:v" in text


class TestTraceBackCompat:
    def test_format2_fixture_fails_with_regenerate_hint(self):
        fixture = FIXTURES / "flash_crowd__met.format2.json"
        with pytest.raises(TraceFormatError, match="regenerate goldens"):
            load_trace(fixture)

    def test_format4_fixture_fails_with_regenerate_hint(self):
        # A pre-percentile golden (scalar-mean tenant series, no
        # latency_distributions section) is stale, not subtly drifted.
        fixture = FIXTURES / "flash_crowd__met.format4.json"
        with pytest.raises(TraceFormatError, match="format 4.*regenerate goldens"):
            load_trace(fixture)

    def test_current_goldens_load(self):
        golden = load_trace(Path(__file__).parent / "golden" / "flash_crowd__met.json")
        assert golden["tenant_series"]

    def test_regen_check_reports_format_staleness_distinctly(self, tmp_path, monkeypatch):
        spec = importlib.util.spec_from_file_location(
            "regen_goldens", Path(__file__).parent.parent / "scripts" / "regen_goldens.py"
        )
        regen = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(regen)

        stale = tmp_path / "some__met.json"
        stale.write_text((FIXTURES / "flash_crowd__met.format2.json").read_text())
        fresh_payload = (
            Path(__file__).parent / "golden" / "flash_crowd__met.json"
        ).read_text()
        drifted = tmp_path / "other__met.json"
        drifted.write_text(fresh_payload.replace("2400", "9999", 1))
        corrupt = tmp_path / "broken__met.json"
        corrupt.write_text(fresh_payload[: len(fresh_payload) // 2])

        monkeypatch.setattr(regen, "GOLDEN_DIR", tmp_path)
        monkeypatch.setattr(
            regen,
            "expected_payloads",
            lambda: {stale: fresh_payload, drifted: fresh_payload, corrupt: fresh_payload},
        )
        report = tmp_path / "drift.txt"
        printed = []
        monkeypatch.setattr("builtins.print", lambda *a, **k: printed.append(" ".join(map(str, a))))
        status = regen.check(diff_report=report)
        assert status == 1
        out = "\n".join(printed)
        assert "stale-format" in out and "format 2" in out
        assert "drifted" in out
        # The stale file is labelled stale-format, never drifted; damaged
        # JSON is labelled unparseable, not misdiagnosed as a format bump.
        assert not any("drifted" in line and "some__met" in line for line in printed)
        assert any("unparseable" in line and "broken__met" in line for line in printed)
        assert "format None" not in out
        diff_text = report.read_text()
        assert "9999" in diff_text
        # A stale-format golden contributes a one-line marker, not a wall of
        # cross-schema value diffs that would bury real same-format drift.
        assert "stale trace format" in diff_text
        assert diff_text.count(stale.name) == 1
