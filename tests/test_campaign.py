"""Campaign subsystem: grid expansion, store hygiene, determinism, resume.

The load-bearing guarantees:

* a grid expands to cells in a canonical order with PYTHONHASHSEED-immune
  per-cell seeds (shared across the controller axis, so a matchup's two
  controllers face the same reseeded scenario);
* the results store is crash-tolerant (a torn final line costs one cell,
  corruption in the middle refuses to aggregate);
* the store's bytes are a pure function of grid + master seed: identical
  across repeat runs, across pool sizes, and across resume passes.
"""

import json

import pytest

from repro.campaign import (
    BASELINE_SCALE,
    CampaignError,
    CampaignGrid,
    ResultsStore,
    ScaleSpec,
    aggregate_records,
    apply_scale,
    derive_seed,
    render_campaign_table,
    run_campaign,
    write_campaign_bench,
)
from repro.campaign.store import StoreCorruption
from repro.scenarios import CANNED_SCENARIOS, ScenarioSpec, TenantSpec
from repro.scenarios.catalog import SMALL_A, SMALL_C


@pytest.fixture(autouse=True)
def _guarded(determinism_guard):
    """The whole campaign suite runs under the runtime determinism
    sanitizer: store bytes must be a pure function of grid + master seed,
    so any wall-clock or global-RNG dependence in the path raises instead
    of flaking.  (Pool workers fork with the guard installed; the profile
    sidecar times itself through repro.util.wallclock, which stays open.)
    """
    yield


def tiny_spec(name: str = "tiny", **overrides) -> ScenarioSpec:
    defaults = dict(
        name=name,
        tenants=(TenantSpec(SMALL_A, target_ops=2000.0),),
        duration_minutes=1.0,
        initial_nodes=2,
        max_nodes=3,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def tiny_grid(seeds: int = 1, master_seed: int = 7) -> CampaignGrid:
    return CampaignGrid(
        scenarios=(tiny_spec("alpha"), tiny_spec("beta", seed=3)),
        controllers=("met", "tiramola"),
        seeds=seeds,
        master_seed=master_seed,
    )


class TestGrid:
    def test_cells_enumerate_in_canonical_order(self):
        grid = tiny_grid(seeds=2)
        ids = [cell.cell_id for cell in grid.cells()]
        assert ids == [
            "alpha|met|1x|s0",
            "alpha|met|1x|s1",
            "alpha|tiramola|1x|s0",
            "alpha|tiramola|1x|s1",
            "beta|met|1x|s0",
            "beta|met|1x|s1",
            "beta|tiramola|1x|s0",
            "beta|tiramola|1x|s1",
        ]
        assert grid.size == len(ids)

    def test_seed_is_shared_across_controllers(self):
        cells = {cell.cell_id: cell for cell in tiny_grid().cells()}
        assert (
            cells["alpha|met|1x|s0"].seed == cells["alpha|tiramola|1x|s0"].seed
        ), "a matchup's controllers must face the same reseeded scenario"
        assert cells["alpha|met|1x|s0"].seed != cells["beta|met|1x|s0"].seed

    def test_derive_seed_is_stable_and_hash_based(self):
        # A fixed value: derive_seed must never depend on PYTHONHASHSEED or
        # the process; a changed constant here means every committed store
        # and golden campaign number silently stops being reproducible.
        assert derive_seed(0, "alpha", "1x", "s0") == derive_seed(0, "alpha", "1x", "s0")
        assert derive_seed(0, "alpha", "1x", "s0") != derive_seed(1, "alpha", "1x", "s0")
        assert derive_seed(0, "a", "b") >= 0

    def test_adding_a_scenario_keeps_existing_seeds(self):
        before = {c.cell_id: c.seed for c in tiny_grid().cells()}
        extended = CampaignGrid(
            scenarios=(tiny_spec("alpha"), tiny_spec("beta", seed=3), tiny_spec("gamma")),
            controllers=("met", "tiramola"),
            seeds=1,
            master_seed=7,
        )
        after = {c.cell_id: c.seed for c in extended.cells()}
        for cell_id, seed in before.items():
            assert after[cell_id] == seed

    def test_spec_for_reseeds(self):
        grid = tiny_grid(seeds=2)
        cells = grid.cells()
        specs = [grid.spec_for(cell) for cell in cells[:2]]
        assert specs[0].seed == cells[0].seed
        assert specs[0].seed != specs[1].seed

    def test_rejects_degenerate_grids(self):
        with pytest.raises(ValueError):
            CampaignGrid(scenarios=())
        with pytest.raises(ValueError):
            CampaignGrid(scenarios=(tiny_spec(), tiny_spec()))
        with pytest.raises(ValueError):
            CampaignGrid(scenarios=(tiny_spec(),), seeds=0)
        with pytest.raises(ValueError):
            CampaignGrid(
                scenarios=(tiny_spec(),),
                scales=(BASELINE_SCALE, ScaleSpec(name="1x", load=2.0)),
            )


class TestScales:
    def test_baseline_is_identity(self):
        spec = CANNED_SCENARIOS["diurnal"]
        assert apply_scale(spec, BASELINE_SCALE) is spec

    def test_load_multiplies_capped_targets(self):
        spec = tiny_spec()
        scaled = apply_scale(spec, ScaleSpec(name="2x", load=2.0))
        assert scaled.tenants[0].target_ops == pytest.approx(4000.0)

    def test_uncapped_tenants_stay_uncapped(self):
        spec = tiny_spec(tenants=(TenantSpec(SMALL_A),))
        scaled = apply_scale(spec, ScaleSpec(name="2x", load=2.0))
        assert scaled.tenants[0].target_ops is None

    def test_tenant_copies_clone_with_unique_names(self):
        spec = tiny_spec(
            tenants=(TenantSpec(SMALL_A, target_ops=1000.0), TenantSpec(SMALL_C, target_ops=500.0))
        )
        scaled = apply_scale(spec, ScaleSpec(name="x3", tenant_copies=3))
        names = [tenant.name for tenant in scaled.tenants]
        assert len(names) == 6
        assert len(set(names)) == 6, f"clones must not collide: {names}"
        # Copy 0 keeps the original name so scenario events still resolve.
        originals = {tenant.name for tenant in spec.tenants}
        assert originals <= set(names)
        binding_names = [tenant.workload.binding_name for tenant in scaled.tenants]
        assert len(set(binding_names)) == 6

    def test_tpcc_tenants_clone_too(self):
        spec = CANNED_SCENARIOS["tpcc_steady"]
        scaled = apply_scale(spec, ScaleSpec(name="x2", tenant_copies=2))
        names = [tenant.name for tenant in scaled.tenants]
        assert len(set(names)) == len(names) == 2 * len(spec.tenants)

    def test_node_overrides(self):
        scaled = apply_scale(
            tiny_spec(), ScaleSpec(name="big", initial_nodes=4, max_nodes=9)
        )
        assert (scaled.initial_nodes, scaled.max_nodes) == (4, 9)

    def test_scaled_scenario_runs(self):
        """A scaled spec is a real, runnable scenario -- not just data."""
        from repro.scenarios import run_scenario

        scaled = apply_scale(
            tiny_spec(), ScaleSpec(name="2x*2", load=2.0, tenant_copies=2)
        )
        result = run_scenario(scaled, controller="met", keep_simulator=False)
        assert result.run.mean_throughput > 0


class TestStore:
    def test_roundtrip_and_completed_ids(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        assert store.load() == []
        store.append({"cell": "a", "cost": 1.0})
        store.append({"cell": "b", "cost": 2.0})
        assert [r["cell"] for r in store.load()] == ["a", "b"]
        assert store.completed_ids() == {"a", "b"}
        assert len(store) == 2

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        store.append({"cell": "a"})
        with store.path.open("a") as handle:
            handle.write('{"cell": "b", "cost": 1.')  # killed mid-write
        assert store.completed_ids() == {"a"}, "torn cell must simply re-run"

    def test_append_heals_a_torn_tail(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        store.append({"cell": "a"})
        with store.path.open("a") as handle:
            handle.write('{"cell": "b", "co')  # crash mid-write
        store.append({"cell": "c"})
        assert [r["cell"] for r in store.load()] == ["a", "c"], (
            "appending after a crash must truncate the torn remnant, not "
            "fuse the new record onto it"
        )

    def test_corruption_before_end_raises(self, tmp_path):
        store = ResultsStore(tmp_path / "r.jsonl")
        store.path.write_text('{"cell": "a"}\nGARBAGE\n{"cell": "c"}\n')
        with pytest.raises(StoreCorruption):
            store.load()


def _store_bytes(store: ResultsStore) -> bytes:
    return store.path.read_bytes()


class TestCampaignDeterminism:
    def test_same_grid_twice_is_byte_identical(self, tmp_path):
        grid = tiny_grid()
        first = ResultsStore(tmp_path / "first.jsonl")
        second = ResultsStore(tmp_path / "second.jsonl")
        run_campaign(grid, first, workers=1)
        run_campaign(grid, second, workers=1)
        assert _store_bytes(first) == _store_bytes(second)

    def test_pool_matches_serial_byte_for_byte(self, tmp_path):
        grid = tiny_grid()
        serial = ResultsStore(tmp_path / "serial.jsonl")
        pooled = ResultsStore(tmp_path / "pooled.jsonl")
        run_campaign(grid, serial, workers=1)
        run_campaign(grid, pooled, workers=2)
        assert _store_bytes(serial) == _store_bytes(pooled)

    def test_master_seed_changes_records(self, tmp_path):
        one = ResultsStore(tmp_path / "one.jsonl")
        two = ResultsStore(tmp_path / "two.jsonl")
        run_campaign(tiny_grid(master_seed=7), one, workers=1)
        run_campaign(tiny_grid(master_seed=8), two, workers=1)
        seeds_one = [r["seed"] for r in one.load()]
        seeds_two = [r["seed"] for r in two.load()]
        assert seeds_one != seeds_two


class TestResume:
    def test_resume_skips_completed_cells_without_recomputation(
        self, tmp_path, monkeypatch
    ):
        grid = tiny_grid()
        # Uninterrupted reference run.
        reference = ResultsStore(tmp_path / "reference.jsonl")
        run_campaign(grid, reference, workers=1)

        # "Killed" run: only the first two cells made it to the store.
        partial = ResultsStore(tmp_path / "partial.jsonl")
        for record in reference.load()[:2]:
            partial.append(record)

        import repro.campaign.runner as runner_module

        executed = []
        real = runner_module._cell_record

        def counting(cell, spec, kernel):
            executed.append(cell.cell_id)
            return real(cell, spec, kernel)

        monkeypatch.setattr(runner_module, "_cell_record", counting)
        report = run_campaign(grid, partial, workers=1)
        assert report.skipped == 2
        assert len(report.executed) == 2
        assert executed == ["beta|met|1x|s0", "beta|tiramola|1x|s0"]
        assert _store_bytes(partial) == _store_bytes(reference), (
            "a resumed store must end up byte-identical to an uninterrupted run"
        )

    def test_resume_after_torn_final_line(self, tmp_path):
        grid = tiny_grid()
        reference = ResultsStore(tmp_path / "reference.jsonl")
        run_campaign(grid, reference, workers=1)

        torn = ResultsStore(tmp_path / "torn.jsonl")
        lines = reference.path.read_text().splitlines(keepends=True)
        torn.path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])
        report = run_campaign(grid, torn, workers=1)
        # The torn cell re-ran; the healthy one resumed...
        assert report.skipped == 1
        assert len(report.executed) == 3
        # ...and the store holds every record exactly once (the torn
        # remnant replaced, order by completion: survivor first).
        records = {record["cell"] for record in torn.load()}
        assert records == {record["cell"] for record in reference.load()}


class TestRequireSkip:
    def test_fast_kernel_defaults_to_no_requirement(self, tmp_path):
        store = ResultsStore(tmp_path / "fast.jsonl")
        report = run_campaign(tiny_grid(), store, workers=1, kernel="fast")
        assert all(not record["skip_active"] for record in report.executed)

    def test_explicit_requirement_fails_on_fast_kernel(self, tmp_path):
        store = ResultsStore(tmp_path / "fast.jsonl")
        with pytest.raises(CampaignError, match="skipping was not active"):
            run_campaign(
                tiny_grid(), store, workers=1, kernel="fast", require_skip=True
            )

    def test_event_kernel_records_skip_active(self, tmp_path):
        store = ResultsStore(tmp_path / "event.jsonl")
        report = run_campaign(tiny_grid(), store, workers=1, kernel="event")
        assert all(record["skip_active"] for record in report.executed)


class TestAnalysis:
    RECORDS = [
        {
            "scenario": "alpha", "scale": "1x", "controller": "met",
            "mean_throughput": 100.0, "violation_minutes": 2.0, "cost": 1.0,
            "machine_minutes": 10.0, "assertions_passed": True,
        },
        {
            "scenario": "alpha", "scale": "1x", "controller": "met",
            "mean_throughput": 200.0, "violation_minutes": 0.0, "cost": 3.0,
            "machine_minutes": 30.0, "assertions_passed": False,
        },
        {
            "scenario": "alpha", "scale": "1x", "controller": "tiramola",
            "mean_throughput": 150.0, "violation_minutes": 1.0, "cost": 2.0,
            "machine_minutes": 20.0, "assertions_passed": True,
        },
    ]

    def test_aggregate_means_over_seeds(self):
        rows = aggregate_records(self.RECORDS)
        met = next(row for row in rows if row.controller == "met")
        assert met.runs == 2
        assert met.mean_throughput == pytest.approx(150.0)
        assert met.violation_minutes == pytest.approx(1.0)
        assert met.cost == pytest.approx(2.0)
        assert met.assertions_passed is False, "one failed seed fails the cell"

    def test_table_renders_side_by_side(self):
        table = render_campaign_table(self.RECORDS)
        assert "met:viol-min" in table
        assert "tiramola:cost" in table
        assert "alpha" in table

    def test_scale_suffix_only_off_baseline(self):
        records = [dict(self.RECORDS[0]), dict(self.RECORDS[0], scale="2x")]
        rows = aggregate_records(records)
        assert [row.label for row in rows] == ["alpha", "alpha@2x"]

    def test_bench_report_schema(self, tmp_path):
        path = tmp_path / "BENCH_campaign.json"
        report = write_campaign_bench(
            path, grid_size=84, workers=4, serial_seconds=4.0, pool_seconds=2.0
        )
        assert report["pool_speedup"] == pytest.approx(2.0)
        assert report["serial_runs_per_second"] == pytest.approx(21.0)
        on_disk = json.loads(path.read_text())
        assert on_disk == report
        assert {"benchmark", "cpu_count", "grid_size", "python"} <= set(on_disk)
