"""Tests for the per-operation cost model: the trade-offs MeT exploits."""

import pytest

from repro.core.profiles import NODE_PROFILES
from repro.hbase.config import DEFAULT_HOMOGENEOUS, RegionServerConfig
from repro.simulation.hardware import HardwareSpec
from repro.simulation.perfmodel import (
    PerformanceModel,
    RegionLoadProfile,
    ServiceDemand,
)


def region(**overrides) -> RegionLoadProfile:
    kwargs = dict(region_id="r", size_bytes=250e6, read_rate=1000.0)
    kwargs.update(overrides)
    return RegionLoadProfile(**kwargs)


@pytest.fixture
def model() -> PerformanceModel:
    return PerformanceModel(HardwareSpec())


class TestServiceDemand:
    def test_add_accumulates(self):
        a = ServiceDemand(cpu_millis=1.0, disk_iops=2.0)
        a.add(ServiceDemand(cpu_millis=3.0, disk_bytes=5.0))
        assert a.cpu_millis == 4.0
        assert a.disk_iops == 2.0
        assert a.disk_bytes == 5.0

    def test_scaled_returns_copy(self):
        demand = ServiceDemand(cpu_millis=2.0, network_bytes=10.0)
        scaled = demand.scaled(0.5)
        assert scaled.cpu_millis == 1.0
        assert demand.cpu_millis == 2.0


class TestCacheModel:
    def test_bigger_cache_gives_higher_hit_ratio(self, model):
        read_profile = NODE_PROFILES["read"].config
        write_profile = NODE_PROFILES["write"].config
        regions = [region(size_bytes=2e9)]
        assert model.hit_ratio(read_profile, regions) > model.hit_ratio(
            write_profile, regions
        )

    def test_hit_ratio_is_one_without_read_traffic(self, model):
        regions = [region(read_rate=0.0, update_rate=100.0)]
        assert model.hit_ratio(DEFAULT_HOMOGENEOUS, regions) == 1.0

    def test_hit_ratio_decreases_with_more_hosted_data(self, model):
        few = [region(size_bytes=1e9)]
        many = [region(region_id=f"r{i}", size_bytes=1e9) for i in range(4)]
        assert model.hit_ratio(DEFAULT_HOMOGENEOUS, few) >= model.hit_ratio(
            DEFAULT_HOMOGENEOUS, many
        )

    def test_hit_ratio_bounded(self, model):
        for size in (1e6, 1e9, 1e11):
            ratio = model.hit_ratio(DEFAULT_HOMOGENEOUS, [region(size_bytes=size)])
            assert 0.0 <= ratio <= 1.0

    def test_small_working_set_yields_high_hit_ratio(self, model):
        tight = [region(size_bytes=5e9, hot_data_fraction=0.02, hot_request_fraction=0.95)]
        loose = [region(size_bytes=5e9)]
        assert model.hit_ratio(DEFAULT_HOMOGENEOUS, tight) > model.hit_ratio(
            DEFAULT_HOMOGENEOUS, loose
        )


class TestWriteModel:
    def test_small_memstore_amplifies_writes(self, model):
        small = RegionServerConfig(block_cache_fraction=0.5, memstore_fraction=0.10)
        large = RegionServerConfig(block_cache_fraction=0.10, memstore_fraction=0.55)
        assert model.write_amplification(small) > model.write_amplification(large)

    def test_write_demand_scales_with_rate(self, model):
        slow = model.write_demand(DEFAULT_HOMOGENEOUS, region(), 100.0)
        fast = model.write_demand(DEFAULT_HOMOGENEOUS, region(), 1000.0)
        assert fast.cpu_millis == pytest.approx(10 * slow.cpu_millis)
        assert fast.disk_bytes == pytest.approx(10 * slow.disk_bytes)

    def test_write_profile_cheaper_for_writes_than_read_profile(self, model):
        write_cfg = NODE_PROFILES["write"].config
        read_cfg = NODE_PROFILES["read"].config
        w = model.write_demand(write_cfg, region(), 1000.0)
        r = model.write_demand(read_cfg, region(), 1000.0)
        assert w.cpu_millis < r.cpu_millis
        assert w.disk_bytes < r.disk_bytes


class TestReadModel:
    def test_misses_cost_disk_iops(self, model):
        demand = model.read_demand(DEFAULT_HOMOGENEOUS, region(), hit_ratio=0.5, rate=100.0)
        assert demand.disk_iops == pytest.approx(50.0)

    def test_full_hit_costs_no_disk(self, model):
        demand = model.read_demand(DEFAULT_HOMOGENEOUS, region(), hit_ratio=1.0, rate=100.0)
        assert demand.disk_iops == 0.0
        assert demand.disk_bytes == 0.0

    def test_remote_misses_cost_network_and_extra_iops(self, model):
        local = model.read_demand(
            DEFAULT_HOMOGENEOUS, region(locality=1.0), hit_ratio=0.5, rate=100.0
        )
        remote = model.read_demand(
            DEFAULT_HOMOGENEOUS, region(locality=0.0), hit_ratio=0.5, rate=100.0
        )
        assert remote.network_bytes > local.network_bytes
        assert remote.disk_iops > local.disk_iops

    def test_smaller_blocks_read_fewer_bytes_per_miss(self, model):
        small = DEFAULT_HOMOGENEOUS.with_overrides(block_size_bytes=32 * 1024)
        large = DEFAULT_HOMOGENEOUS.with_overrides(block_size_bytes=128 * 1024)
        small_demand = model.read_demand(small, region(), hit_ratio=0.5, rate=100.0)
        large_demand = model.read_demand(large, region(), hit_ratio=0.5, rate=100.0)
        assert small_demand.disk_bytes < large_demand.disk_bytes


class TestScanModel:
    def test_larger_blocks_make_scans_cheaper(self, model):
        small = DEFAULT_HOMOGENEOUS.with_overrides(block_size_bytes=32 * 1024)
        large = DEFAULT_HOMOGENEOUS.with_overrides(block_size_bytes=128 * 1024)
        scan_region = region(read_rate=0.0, scan_rate=100.0, scan_length=100)
        small_demand = model.scan_demand(small, scan_region, hit_ratio=0.5, rate=100.0)
        large_demand = model.scan_demand(large, scan_region, hit_ratio=0.5, rate=100.0)
        assert large_demand.cpu_millis < small_demand.cpu_millis
        assert large_demand.disk_iops < small_demand.disk_iops

    def test_scan_more_expensive_than_read(self, model):
        read = model.read_demand(DEFAULT_HOMOGENEOUS, region(), hit_ratio=0.9, rate=100.0)
        scan = model.scan_demand(DEFAULT_HOMOGENEOUS, region(), hit_ratio=0.9, rate=100.0)
        assert scan.cpu_millis > read.cpu_millis

    def test_rmw_costs_read_plus_write(self, model):
        r = region()
        rmw = model.rmw_demand(DEFAULT_HOMOGENEOUS, r, hit_ratio=0.8, rate=100.0)
        read = model.read_demand(DEFAULT_HOMOGENEOUS, r, hit_ratio=0.8, rate=100.0)
        write = model.write_demand(DEFAULT_HOMOGENEOUS, r, rate=100.0)
        assert rmw.cpu_millis == pytest.approx(read.cpu_millis + write.cpu_millis)


class TestNodeEvaluation:
    def test_idle_node_has_zero_utilization(self, model):
        result = model.evaluate_node(DEFAULT_HOMOGENEOUS, [])
        assert result.utilization == 0.0
        assert result.hit_ratio == 1.0

    def test_utilization_grows_with_load(self, model):
        light = model.evaluate_node(DEFAULT_HOMOGENEOUS, [region(read_rate=100.0)])
        heavy = model.evaluate_node(DEFAULT_HOMOGENEOUS, [region(read_rate=10000.0)])
        assert heavy.utilization > light.utilization

    def test_latencies_inflate_under_load(self, model):
        light = model.evaluate_node(DEFAULT_HOMOGENEOUS, [region(read_rate=100.0)])
        heavy = model.evaluate_node(DEFAULT_HOMOGENEOUS, [region(read_rate=50000.0)])
        assert heavy.per_op_latency_ms["read"] > light.per_op_latency_ms["read"]

    def test_all_op_latencies_present(self, model):
        result = model.evaluate_node(DEFAULT_HOMOGENEOUS, [region()])
        assert set(result.per_op_latency_ms) == {
            "read",
            "update",
            "insert",
            "scan",
            "read_modify_write",
        }

    def test_background_compaction_raises_io_wait(self, model):
        quiet = model.evaluate_node(DEFAULT_HOMOGENEOUS, [region()])
        busy = model.evaluate_node(
            DEFAULT_HOMOGENEOUS, [region()], background_disk_bytes_per_s=50e6
        )
        assert busy.io_wait > quiet.io_wait

    def test_read_profile_beats_write_profile_for_read_heavy_node(self, model):
        regions = [region(size_bytes=1.5e9, read_rate=5000.0)]
        read_result = model.evaluate_node(NODE_PROFILES["read"].config, regions)
        write_result = model.evaluate_node(NODE_PROFILES["write"].config, regions)
        assert read_result.utilization < write_result.utilization

    def test_write_profile_beats_read_profile_for_write_heavy_node(self, model):
        regions = [region(read_rate=0.0, update_rate=5000.0)]
        write_result = model.evaluate_node(NODE_PROFILES["write"].config, regions)
        read_result = model.evaluate_node(NODE_PROFILES["read"].config, regions)
        assert write_result.utilization < read_result.utilization

    def test_scan_profile_beats_default_for_scan_heavy_node(self, model):
        regions = [region(read_rate=0.0, scan_rate=800.0, scan_length=100)]
        scan_result = model.evaluate_node(NODE_PROFILES["scan"].config, regions)
        default_result = model.evaluate_node(DEFAULT_HOMOGENEOUS, regions)
        assert scan_result.utilization < default_result.utilization
