"""Tests for the monitoring substrate and the OpenStack-like IaaS provider."""

import pytest

from repro.core.backends import SimulatorBackend
from repro.iaas.flavors import FLAVORS, REGIONSERVER_FLAVOR
from repro.iaas.provider import IaaSError, OpenStackProvider, QuotaExceededError
from repro.iaas.vm import VMState
from repro.monitoring.collector import MetricsCollector
from repro.monitoring.ganglia import GangliaCollector
from repro.monitoring.jmx import JMXCollector
from repro.monitoring.smoothing import ExponentialSmoother, smooth_series
from repro.simulation.clock import SimulationClock
from repro.simulation.workload import WorkloadBinding


class TestExponentialSmoother:
    def test_empty_returns_default(self):
        assert ExponentialSmoother().value(default=0.3) == 0.3

    def test_recent_observations_weigh_more(self):
        smoother = ExponentialSmoother(alpha=0.5, window=6)
        for value in [0.1, 0.1, 0.1, 0.9]:
            smoother.observe(value)
        assert smoother.value() > 0.4

    def test_window_bounds_history(self):
        smoother = ExponentialSmoother(window=3)
        for value in range(10):
            smoother.observe(float(value))
        assert smoother.count == 3
        assert smoother.raw() == [7.0, 8.0, 9.0]

    def test_reset(self):
        smoother = ExponentialSmoother()
        smoother.observe(1.0)
        smoother.reset()
        assert smoother.count == 0

    def test_is_warm(self):
        smoother = ExponentialSmoother(window=2)
        assert not smoother.is_warm
        smoother.observe(1.0)
        smoother.observe(1.0)
        assert smoother.is_warm

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExponentialSmoother(alpha=0.0)
        with pytest.raises(ValueError):
            ExponentialSmoother(window=0)

    def test_smooth_series_helper(self):
        assert smooth_series([1.0, 1.0, 1.0]) == pytest.approx(1.0)
        assert smooth_series([]) == 0.0

    def test_constant_series_is_fixed_point(self):
        smoother = ExponentialSmoother()
        for _ in range(6):
            smoother.observe(0.42)
        assert smoother.value() == pytest.approx(0.42)


@pytest.fixture
def loaded_backend(simulator):
    node = next(iter(simulator.nodes))
    simulator.add_region("r1", "w", 1e8, node=node)
    simulator.attach_workload(
        WorkloadBinding(
            name="t",
            threads=20,
            op_mix={"read": 0.5, "update": 0.5},
            region_weights={"r1": 1.0},
        )
    )
    simulator.run(60.0)
    return SimulatorBackend(simulator)


class TestCollectors:
    def test_ganglia_polls_system_metrics(self, loaded_backend):
        ganglia = GangliaCollector(loaded_backend, period_seconds=30.0)
        assert ganglia.due(0.0)
        sample = ganglia.poll(0.0)
        assert not ganglia.due(10.0)
        assert ganglia.due(30.0)
        for node_metrics in sample.values():
            assert set(node_metrics) == {"cpu", "io_wait", "memory"}
        node = next(iter(sample))
        assert ganglia.latest(node, "cpu") == sample[node]["cpu"]
        assert len(ganglia.history(node, "cpu")) == 1

    def test_jmx_reports_partitions_and_rates(self, loaded_backend):
        jmx = JMXCollector(loaded_backend)
        stats = jmx.poll(0.0)
        assert "r1" in stats
        loaded_backend.simulator.run(30.0)
        jmx.poll(30.0)
        node = loaded_backend.simulator.regions["r1"].node
        assert jmx.requests_per_second(node) > 0
        assert 0.0 <= jmx.locality_index(node) <= 1.0
        breakdown = jmx.region_request_breakdown()
        assert breakdown["r1"]["reads"] > 0

    def test_metrics_collector_snapshot(self, loaded_backend):
        collector = MetricsCollector(loaded_backend, period_seconds=30.0, decision_samples=2)
        collector.sample(0.0)
        assert not collector.decision_due()
        collector.sample(30.0)
        assert collector.decision_due()
        snapshot = collector.snapshot(30.0)
        assert snapshot.node_count == 3
        assert "r1" in snapshot.partitions
        assert snapshot.partitions["r1"].total_requests > 0
        node = loaded_backend.simulator.regions["r1"].node
        assert snapshot.partitions_on(node)

    def test_reset_after_action_rebaselines_counters(self, loaded_backend):
        collector = MetricsCollector(loaded_backend, period_seconds=30.0, decision_samples=1)
        collector.sample(0.0)
        collector.snapshot(0.0)
        collector.reset_after_action()
        collector.sample(30.0)
        snapshot = collector.snapshot(30.0)
        # Counters are deltas relative to the post-action baseline, so they
        # are far smaller than the cumulative totals.
        cumulative = loaded_backend.partition_stats()["r1"]["reads"]
        assert snapshot.partitions["r1"].reads < cumulative

    def test_collector_rejects_bad_parameters(self, loaded_backend):
        with pytest.raises(ValueError):
            MetricsCollector(loaded_backend, period_seconds=0)
        with pytest.raises(ValueError):
            MetricsCollector(loaded_backend, decision_samples=0)


class TestOpenStackProvider:
    def test_launch_becomes_active_after_boot(self):
        clock = SimulationClock()
        provider = OpenStackProvider(clock, boot_seconds=60.0)
        vm = provider.launch("rs-1", "m1.medium")
        assert vm.state is VMState.BUILDING
        clock.advance(61.0)
        assert provider.describe(vm.instance_id).state is VMState.ACTIVE
        assert provider.active()

    def test_unknown_flavor_rejected(self):
        provider = OpenStackProvider(SimulationClock())
        with pytest.raises(IaaSError):
            provider.launch("x", "no-such-flavor")

    def test_quota_enforced(self):
        provider = OpenStackProvider(SimulationClock(), quota=1)
        provider.launch("a", REGIONSERVER_FLAVOR)
        with pytest.raises(QuotaExceededError):
            provider.launch("b", REGIONSERVER_FLAVOR)

    def test_terminate_frees_quota(self):
        clock = SimulationClock()
        provider = OpenStackProvider(clock, quota=1)
        vm = provider.launch("a", REGIONSERVER_FLAVOR)
        provider.terminate(vm.instance_id)
        provider.launch("b", REGIONSERVER_FLAVOR)

    def test_machine_hours_accumulate(self):
        clock = SimulationClock()
        provider = OpenStackProvider(clock, boot_seconds=0.0)
        provider.launch("a", "m1.small")
        clock.advance(3600.0)
        assert provider.machine_hours() == pytest.approx(1.0, rel=0.05)

    def test_by_name_finds_live_instance(self):
        provider = OpenStackProvider(SimulationClock())
        vm = provider.launch("rs-9", "m1.small")
        assert provider.by_name("rs-9").instance_id == vm.instance_id
        assert provider.by_name("missing") is None

    def test_flavor_hardware_mapping(self):
        flavor = FLAVORS["m1.large"]
        hardware = flavor.hardware()
        assert hardware.cpu_millis_per_second == 8000.0
        assert hardware.heap_bytes <= hardware.memory_bytes

    def test_unknown_instance_raises(self):
        provider = OpenStackProvider(SimulationClock())
        with pytest.raises(IaaSError):
            provider.terminate("vm-404")
