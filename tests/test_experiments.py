"""Smoke tests for the experiment harness and reporting (short durations)."""

import pytest

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure1 import report as report_figure1
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure4 import report as report_figure4
from repro.experiments.harness import ExperimentHarness, apply_placement
from repro.experiments.reporting import Comparison, format_series, format_table, percentiles
from repro.elasticity.strategies import manual_heterogeneous
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.ycsb.scenario import build_paper_scenario


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        text = format_series("title", [(1.0, 2.0), (2.0, 3.0)])
        assert "title" in text and "t=" in text

    def test_percentiles(self):
        values = list(range(1, 101))
        p = percentiles([float(v) for v in values])
        assert p[50] == pytest.approx(50.5)
        assert p[5] < p[25] < p[75] < p[90]
        assert percentiles([])[50] == 0.0

    def test_comparison_row(self):
        row = Comparison("metric", "1.0", "1.1", True).row()
        assert row[-1] == "yes"


class TestHarness:
    def test_harness_records_series_and_totals(self):
        simulator = ClusterSimulator()
        nodes = [simulator.add_node() for _ in range(3)]
        scenario = build_paper_scenario(simulator)
        plan = manual_heterogeneous(scenario.expected_partition_workloads(), nodes)
        apply_placement(simulator, plan)
        harness = ExperimentHarness(simulator, name="test", sample_every_seconds=30.0)
        run = harness.run_for(120.0)
        assert run.total_operations > 0
        assert run.final_nodes == 3
        assert len(run.series) >= 4
        assert run.mean_throughput > 0
        assert run.peak_throughput >= run.mean_throughput
        assert run.operations_until(2.0) <= run.total_operations
        assert run.machine_minutes == pytest.approx(3 * 2.0, rel=0.1)

    def test_apply_placement_sets_configs_and_locality(self):
        simulator = ClusterSimulator()
        nodes = [simulator.add_node() for _ in range(5)]
        scenario = build_paper_scenario(simulator)
        plan = manual_heterogeneous(scenario.expected_partition_workloads(), nodes)
        apply_placement(simulator, plan)
        assert all(region.locality == 1.0 for region in simulator.regions.values())
        assert {node.profile_name for node in simulator.nodes.values()} >= {"read", "write"}


class TestExperimentSmoke:
    def test_figure1_short_run_orders_strategies(self):
        result = run_figure1(runs=1, minutes=2.0)
        heterogeneous = result.outcomes["manual-heterogeneous"].mean_total
        random_mean = result.outcomes["random-homogeneous"].mean_total
        assert heterogeneous > 0 and random_mean > 0
        assert heterogeneous >= random_mean * 0.9
        assert "manual-heterogeneous" in report_figure1(result)

    def test_figure4_short_run_reports_series(self):
        result = run_figure4(minutes=6.0, met_start_minute=1.0)
        assert result.met.series
        assert result.reconfiguration_floor >= 0
        assert "reconfiguration floor" in report_figure4(result)
