"""Tests for the HDFS-like substrate: placement, replication, locality."""

import pytest

from repro.hdfs.block import Block, BlockFile
from repro.hdfs.datanode import DataNode, DataNodeFullError
from repro.hdfs.namenode import HDFSError, NameNode


class TestBlocks:
    def test_block_replica_membership(self):
        block = Block(block_id="b1", size_bytes=10, replicas=["dn1"])
        assert block.is_replica("dn1")
        assert not block.is_replica("dn2")

    def test_file_size_and_local_bytes(self):
        file = BlockFile(
            path="/f",
            blocks=[
                Block("b1", 10, replicas=["dn1"]),
                Block("b2", 20, replicas=["dn2"]),
            ],
        )
        assert file.size_bytes == 30
        assert file.local_bytes("dn1") == 10


class TestDataNode:
    def test_store_and_evict(self):
        node = DataNode(name="dn1", capacity_bytes=100)
        node.store("b1", 60)
        assert node.used_bytes == 60
        node.evict("b1", 60)
        assert node.used_bytes == 0

    def test_store_idempotent(self):
        node = DataNode(name="dn1", capacity_bytes=100)
        node.store("b1", 60)
        node.store("b1", 60)
        assert node.used_bytes == 60

    def test_store_rejects_when_full(self):
        node = DataNode(name="dn1", capacity_bytes=100)
        node.store("b1", 80)
        with pytest.raises(DataNodeFullError):
            node.store("b2", 40)


class TestNameNode:
    def test_create_file_places_replicas(self):
        namenode = NameNode(replication=2, seed=0)
        for name in ("dn1", "dn2", "dn3"):
            namenode.register_datanode(name)
        file = namenode.create_file("/f", 100, preferred_datanode="dn1")
        assert namenode.exists("/f")
        for block in file.blocks:
            assert len(block.replicas) == 2
            assert "dn1" in block.replicas

    def test_create_file_requires_datanodes(self):
        with pytest.raises(HDFSError):
            NameNode().create_file("/f", 10)

    def test_duplicate_file_rejected(self):
        namenode = NameNode(seed=0)
        namenode.register_datanode("dn1")
        namenode.create_file("/f", 10)
        with pytest.raises(HDFSError):
            namenode.create_file("/f", 10)

    def test_large_file_split_into_blocks(self):
        namenode = NameNode(replication=1, block_size=10, seed=0)
        namenode.register_datanode("dn1")
        file = namenode.create_file("/f", 35)
        assert len(file.blocks) == 4
        assert file.size_bytes == 35

    def test_delete_file_frees_space(self):
        namenode = NameNode(replication=1, seed=0)
        datanode = namenode.register_datanode("dn1")
        namenode.create_file("/f", 50)
        used = datanode.used_bytes
        assert used > 0
        namenode.delete_file("/f")
        assert datanode.used_bytes == 0
        assert not namenode.exists("/f")

    def test_locality_index_full_when_preferred(self):
        namenode = NameNode(replication=2, seed=0)
        for name in ("dn1", "dn2", "dn3"):
            namenode.register_datanode(name)
        namenode.create_file("/f", 100, preferred_datanode="dn1")
        assert namenode.locality_index(["/f"], "dn1") == 1.0

    def test_locality_index_partial_for_other_nodes(self):
        namenode = NameNode(replication=1, seed=1)
        for name in ("dn1", "dn2"):
            namenode.register_datanode(name)
        namenode.create_file("/f", 100, preferred_datanode="dn1")
        assert namenode.locality_index(["/f"], "dn2") == 0.0

    def test_locality_index_empty_paths_is_one(self):
        namenode = NameNode(seed=0)
        namenode.register_datanode("dn1")
        assert namenode.locality_index([], "dn1") == 1.0

    def test_is_local(self):
        namenode = NameNode(replication=1, seed=0)
        namenode.register_datanode("dn1")
        namenode.create_file("/f", 10, preferred_datanode="dn1")
        assert namenode.is_local("/f", "dn1")

    def test_missing_file_raises(self):
        namenode = NameNode(seed=0)
        with pytest.raises(HDFSError):
            namenode.get_file("/missing")

    def test_decommission_rereplicates(self):
        namenode = NameNode(replication=2, seed=0)
        for name in ("dn1", "dn2", "dn3"):
            namenode.register_datanode(name)
        namenode.create_file("/f", 100, preferred_datanode="dn1")
        namenode.decommission_datanode("dn1")
        file = namenode.get_file("/f")
        for block in file.blocks:
            assert "dn1" not in block.replicas
            assert len(block.replicas) == 2

    def test_rejects_zero_replication(self):
        with pytest.raises(ValueError):
            NameNode(replication=0)
