"""Regression tests: the fast kernel matches the seed (reference) kernel.

Runs a mixed multi-tenant YCSB scenario -- region moves, node
reconfiguration, major compactions, node add/remove and tenant shutdown
mid-run -- on both kernels and asserts the per-binding throughput series
agree within 1e-6 relative tolerance.
"""

import math

import pytest

from repro.core.profiles import NODE_PROFILES
from repro.hbase.config import DEFAULT_HOMOGENEOUS
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.hardware import HardwareSpec, LARGE_NODE
from repro.simulation.perfmodel import NodeEvaluator, PerformanceModel, RegionLoadProfile
from repro.workloads.ycsb.scenario import build_paper_scenario

#: Acceptance bound: optimized and seed kernels must agree to this relative
#: tolerance on every sample of every per-binding throughput series.
REL_TOL = 1e-6
#: Absolute floor for samples damping towards zero after tenant shutdown.
ABS_TOL = 1e-6


def build_scenario(kernel: str) -> tuple[ClusterSimulator, list[str]]:
    sim = ClusterSimulator(kernel=kernel, tick_seconds=5.0)
    nodes = [sim.add_node() for _ in range(6)]
    scenario = build_paper_scenario(sim)
    for index, spec in enumerate(scenario.partitions):
        node = nodes[index % len(nodes)]
        region = sim.regions[spec.partition_id]
        region.node = node
        region.block_homes = {node}
    return sim, nodes


def drive(sim: ClusterSimulator, nodes: list[str]) -> dict[str, list[float]]:
    """60 ticks with topology churn at fixed points; returns throughput series."""
    first_region = next(iter(sim.regions))
    events = {
        4: lambda: sim.move_region(first_region, nodes[1]),
        7: lambda: sim.major_compact(nodes[1]),
        10: lambda: sim.reconfigure_node(
            nodes[2], NODE_PROFILES["read"].config, profile_name="read"
        ),
        14: lambda: sim.add_node(name="rs-extra", online=False),
        20: lambda: sim.set_workload_active("workload-E", False),
        26: lambda: sim.remove_node(nodes[3]),
        32: lambda: sim.reconfigure_node(
            nodes[4], NODE_PROFILES["write"].config, drain=False
        ),
        40: lambda: sim.move_region(first_region, nodes[0]),
    }
    series: dict[str, list[float]] = {name: [] for name in sim.bindings}
    for tick in range(60):
        action = events.get(tick)
        if action is not None:
            action()
        sim.tick()
        for name in sim.bindings:
            series[name].append(sim.binding_throughput(name))
    return series


class TestKernelEquivalence:
    def test_mixed_scenario_throughput_series_match(self):
        fast_sim, fast_nodes = build_scenario("fast")
        reference_sim, reference_nodes = build_scenario("reference")
        assert fast_nodes == reference_nodes

        fast = drive(fast_sim, fast_nodes)
        reference = drive(reference_sim, reference_nodes)

        assert set(fast) == set(reference)
        for name in reference:
            for tick, (optimized, seed) in enumerate(zip(fast[name], reference[name])):
                assert math.isclose(
                    optimized, seed, rel_tol=REL_TOL, abs_tol=ABS_TOL
                ), f"{name} diverged at tick {tick}: {optimized} vs {seed}"

    def test_assignments_and_counters_match(self):
        fast_sim, fast_nodes = build_scenario("fast")
        reference_sim, reference_nodes = build_scenario("reference")
        drive(fast_sim, fast_nodes)
        drive(reference_sim, reference_nodes)

        assert fast_sim.assignment() == reference_sim.assignment()
        for region_id, reference_region in reference_sim.regions.items():
            fast_region = fast_sim.regions[region_id]
            assert fast_region.reads == pytest.approx(reference_region.reads, rel=REL_TOL)
            assert fast_region.writes == pytest.approx(
                reference_region.writes, rel=REL_TOL
            )
            assert fast_region.block_homes == reference_region.block_homes
        assert fast_sim.total_ops == pytest.approx(reference_sim.total_ops, rel=REL_TOL)

    def test_node_metrics_match(self):
        fast_sim, fast_nodes = build_scenario("fast")
        reference_sim, _ = build_scenario("reference")
        drive(fast_sim, fast_nodes)
        drive(reference_sim, fast_nodes)
        for name, reference_node in reference_sim.nodes.items():
            fast_node = fast_sim.nodes[name]
            assert fast_node.cpu_utilization == pytest.approx(
                reference_node.cpu_utilization, rel=1e-9, abs=1e-9
            )
            assert fast_node.io_wait == pytest.approx(
                reference_node.io_wait, rel=1e-9, abs=1e-9
            )
            assert fast_node.served_ops == pytest.approx(
                reference_node.served_ops, rel=REL_TOL, abs=ABS_TOL
            )


class TestNodeEvaluatorEquivalence:
    """NodeEvaluator.evaluate must match PerformanceModel.evaluate_node."""

    @pytest.mark.parametrize("hardware", [HardwareSpec(), LARGE_NODE])
    @pytest.mark.parametrize(
        "config",
        [DEFAULT_HOMOGENEOUS, NODE_PROFILES["read"].config, NODE_PROFILES["scan"].config],
    )
    def test_matches_evaluate_node(self, hardware, config):
        model = PerformanceModel(hardware)
        profiles = [
            RegionLoadProfile(
                region_id="r1",
                size_bytes=1.5e9,
                read_rate=1200.0,
                update_rate=300.0,
                scan_rate=10.0,
            ),
            RegionLoadProfile(
                region_id="r2",
                size_bytes=4e8,
                locality=0.05,
                insert_rate=250.0,
                rmw_rate=40.0,
            ),
            RegionLoadProfile(region_id="r3", size_bytes=9e8, scan_length=120),
        ]
        expected = model.evaluate_node(config, profiles, 2e6)
        actual = NodeEvaluator(model, config, profiles).evaluate(profiles, 2e6)
        assert actual.utilization == pytest.approx(expected.utilization, rel=1e-12)
        assert actual.cpu_utilization == pytest.approx(expected.cpu_utilization, rel=1e-12)
        assert actual.io_wait == pytest.approx(expected.io_wait, rel=1e-12)
        assert actual.memory_utilization == pytest.approx(
            expected.memory_utilization, rel=1e-12
        )
        assert actual.hit_ratio == pytest.approx(expected.hit_ratio, rel=1e-12)
        for op, latency in expected.per_op_latency_ms.items():
            assert actual.per_op_latency_ms[op] == pytest.approx(latency, rel=1e-12)

    def test_refresh_tracks_size_and_locality_drift(self):
        model = PerformanceModel(HardwareSpec())
        profile = RegionLoadProfile(region_id="r", size_bytes=1e9, read_rate=500.0)
        evaluator = NodeEvaluator(model, DEFAULT_HOMOGENEOUS, [profile])
        profile.size_bytes = 2.5e9
        profile.locality = 0.05
        evaluator.refresh([profile])
        expected = model.evaluate_node(DEFAULT_HOMOGENEOUS, [profile])
        actual = evaluator.evaluate([profile])
        assert actual.utilization == pytest.approx(expected.utilization, rel=1e-12)
        assert actual.hit_ratio == pytest.approx(expected.hit_ratio, rel=1e-12)
        assert actual.memory_utilization == pytest.approx(
            expected.memory_utilization, rel=1e-12
        )


class TestEventKernelEquivalence:
    """The event kernel matches the fast kernel on the churn scenario.

    Driven tick by tick (the churn scenario's insert-bearing tenants never
    allow reuse anyway), this pins the event kernel's solver -- dispatch,
    dirty-flag handling, caching -- to the golden-trace kernel's numbers
    under region moves, compactions, reconfigurations and node churn.
    """

    def test_mixed_scenario_throughput_series_match(self):
        fast_sim, fast_nodes = build_scenario("fast")
        event_sim, event_nodes = build_scenario("event")
        assert fast_nodes == event_nodes

        fast = drive(fast_sim, fast_nodes)
        event = drive(event_sim, event_nodes)

        assert set(fast) == set(event)
        for name in fast:
            for tick, (optimized, twin) in enumerate(zip(fast[name], event[name])):
                assert math.isclose(
                    optimized, twin, rel_tol=REL_TOL, abs_tol=ABS_TOL
                ), f"{name} diverged at tick {tick}: {optimized} vs {twin}"
        assert event_sim.assignment() == fast_sim.assignment()


def _build_quiet_pair():
    """Insert-free steady twins (event + fast): quiescent once settled."""
    from repro.simulation.workload import WorkloadBinding

    sims = []
    for kernel in ("event", "fast"):
        sim = ClusterSimulator(kernel=kernel, tick_seconds=5.0)
        nodes = [sim.add_node() for _ in range(4)]
        for index in range(12):
            sim.add_region(f"r{index}", "tenant", 5e8, node=nodes[index % 4])
        weight = 1.0 / 12
        weights = {f"r{index}": weight for index in range(12)}
        weights["r11"] = 1.0 - weight * 11
        sim.attach_workload(
            WorkloadBinding(
                name="tenant",
                threads=40,
                op_mix={"read": 0.7, "update": 0.3},
                region_weights=weights,
            )
        )
        sims.append(sim)
    return sims[0], sims[1]


def _assert_series_match(event_sim, fast_sim):
    """Every recorded metric series agrees within the acceptance tolerance."""
    event_keys = {key for key, _ in event_sim.metrics.items()}
    fast_keys = {key for key, _ in fast_sim.metrics.items()}
    assert event_keys == fast_keys
    for key, series in fast_sim.metrics.items():
        twin = event_sim.metrics.series(*key)
        assert twin.timestamps == series.timestamps, f"timestamps differ for {key}"
        assert len(twin.values) == len(series.values)
        for tick, (a, b) in enumerate(zip(twin.values, series.values)):
            assert math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL), (
                f"{key} diverged at sample {tick}: {a} vs {b}"
            )


class TestQuiescenceAdversarial:
    """Fast-forwarding must stop for anything that changes the solution.

    Each case runs the event kernel through :meth:`ClusterSimulator.run`
    (macro-ticks engaged) against a fast-kernel twin ticked one by one, and
    requires every metric series to agree -- so an event swallowed by a
    skipped stretch, or a skip overshooting a state transition, fails the
    test rather than silently warping the trace.
    """

    def test_node_boot_completes_mid_skip(self):
        event_sim, fast_sim = _build_quiet_pair()
        event_sim.run(300.0)
        for _ in range(60):
            fast_sim.tick()
        # Boot completion (90 s = 18 ticks in) lands inside the quiet
        # stretch; the NODE_ONLINE event must bound the macro-tick.
        event_sim.add_node(name="late", online=False)
        fast_sim.add_node(name="late", online=False)
        event_sim.run(600.0)
        for _ in range(120):
            fast_sim.tick()
        assert event_sim.stats.skipped_ticks > 0, "fast-forward never engaged"
        assert event_sim.nodes["late"].state == fast_sim.nodes["late"].state
        _assert_series_match(event_sim, fast_sim)

    def test_back_to_back_boots_one_tick_apart(self):
        event_sim, fast_sim = _build_quiet_pair()
        event_sim.run(300.0)
        for _ in range(60):
            fast_sim.tick()
        for sim in (event_sim, fast_sim):
            sim.add_node(name="late-a", online=False)
        event_sim.run(5.0)
        fast_sim.tick()
        # Second boot starts one tick later: completions land on adjacent
        # ticks, leaving no room to skip between them.
        for sim in (event_sim, fast_sim):
            sim.add_node(name="late-b", online=False)
        event_sim.run(595.0)
        for _ in range(119):
            fast_sim.tick()
        assert event_sim.stats.skipped_ticks > 0
        _assert_series_match(event_sim, fast_sim)

    def test_compaction_drains_during_quiet_stretch(self):
        event_sim, fast_sim = _build_quiet_pair()
        event_sim.run(300.0)
        for _ in range(60):
            fast_sim.tick()
        # Make r0 remote on rs-2, then compact: the drain runs as constant
        # background I/O (reusable) until the completion flips r0 local --
        # a structure change the skip must not jump over.
        for sim in (event_sim, fast_sim):
            sim.move_region("r0", "rs-2")
            assert sim.major_compact("rs-2") > 0
        event_sim.run(900.0)
        for _ in range(180):
            fast_sim.tick()
        assert event_sim.stats.skipped_ticks > 0
        assert event_sim.regions["r0"].locality == fast_sim.regions["r0"].locality == 1.0
        assert event_sim.nodes["rs-2"].pending_compaction_bytes == 0.0
        _assert_series_match(event_sim, fast_sim)

    def test_restart_boundary_misaligned_with_run_window(self):
        """A reconfiguration restart whose completion is not a multiple of
        the run() window: the skip must stop at the restart boundary even
        when the caller's run windows straddle it."""
        event_sim, fast_sim = _build_quiet_pair()
        event_sim.run(300.0)
        for _ in range(60):
            fast_sim.tick()
        for sim in (event_sim, fast_sim):
            sim.reconfigure_node("rs-3", NODE_PROFILES["read"].config, profile_name="read")
        # Uneven windows (175 s = 35 ticks) interleave with the restart
        # completion; chunked and monolithic advancement must agree.
        for _ in range(4):
            event_sim.run(175.0)
        for _ in range(140):
            fast_sim.tick()
        assert event_sim.stats.skipped_ticks > 0
        _assert_series_match(event_sim, fast_sim)
