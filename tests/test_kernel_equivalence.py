"""Regression tests: the fast kernel matches the seed (reference) kernel.

Runs a mixed multi-tenant YCSB scenario -- region moves, node
reconfiguration, major compactions, node add/remove and tenant shutdown
mid-run -- on both kernels and asserts the per-binding throughput series
agree within 1e-6 relative tolerance.
"""

import math

import pytest

from repro.core.profiles import NODE_PROFILES
from repro.hbase.config import DEFAULT_HOMOGENEOUS
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.hardware import HardwareSpec, LARGE_NODE
from repro.simulation.perfmodel import NodeEvaluator, PerformanceModel, RegionLoadProfile
from repro.workloads.ycsb.scenario import build_paper_scenario

#: Acceptance bound: optimized and seed kernels must agree to this relative
#: tolerance on every sample of every per-binding throughput series.
REL_TOL = 1e-6
#: Absolute floor for samples damping towards zero after tenant shutdown.
ABS_TOL = 1e-6


def build_scenario(kernel: str) -> tuple[ClusterSimulator, list[str]]:
    sim = ClusterSimulator(kernel=kernel, tick_seconds=5.0)
    nodes = [sim.add_node() for _ in range(6)]
    scenario = build_paper_scenario(sim)
    for index, spec in enumerate(scenario.partitions):
        node = nodes[index % len(nodes)]
        region = sim.regions[spec.partition_id]
        region.node = node
        region.block_homes = {node}
    return sim, nodes


def drive(sim: ClusterSimulator, nodes: list[str]) -> dict[str, list[float]]:
    """60 ticks with topology churn at fixed points; returns throughput series."""
    first_region = next(iter(sim.regions))
    events = {
        4: lambda: sim.move_region(first_region, nodes[1]),
        7: lambda: sim.major_compact(nodes[1]),
        10: lambda: sim.reconfigure_node(
            nodes[2], NODE_PROFILES["read"].config, profile_name="read"
        ),
        14: lambda: sim.add_node(name="rs-extra", online=False),
        20: lambda: sim.set_workload_active("workload-E", False),
        26: lambda: sim.remove_node(nodes[3]),
        32: lambda: sim.reconfigure_node(
            nodes[4], NODE_PROFILES["write"].config, drain=False
        ),
        40: lambda: sim.move_region(first_region, nodes[0]),
    }
    series: dict[str, list[float]] = {name: [] for name in sim.bindings}
    for tick in range(60):
        action = events.get(tick)
        if action is not None:
            action()
        sim.tick()
        for name in sim.bindings:
            series[name].append(sim.binding_throughput(name))
    return series


class TestKernelEquivalence:
    def test_mixed_scenario_throughput_series_match(self):
        fast_sim, fast_nodes = build_scenario("fast")
        reference_sim, reference_nodes = build_scenario("reference")
        assert fast_nodes == reference_nodes

        fast = drive(fast_sim, fast_nodes)
        reference = drive(reference_sim, reference_nodes)

        assert set(fast) == set(reference)
        for name in reference:
            for tick, (optimized, seed) in enumerate(zip(fast[name], reference[name])):
                assert math.isclose(
                    optimized, seed, rel_tol=REL_TOL, abs_tol=ABS_TOL
                ), f"{name} diverged at tick {tick}: {optimized} vs {seed}"

    def test_assignments_and_counters_match(self):
        fast_sim, fast_nodes = build_scenario("fast")
        reference_sim, reference_nodes = build_scenario("reference")
        drive(fast_sim, fast_nodes)
        drive(reference_sim, reference_nodes)

        assert fast_sim.assignment() == reference_sim.assignment()
        for region_id, reference_region in reference_sim.regions.items():
            fast_region = fast_sim.regions[region_id]
            assert fast_region.reads == pytest.approx(reference_region.reads, rel=REL_TOL)
            assert fast_region.writes == pytest.approx(
                reference_region.writes, rel=REL_TOL
            )
            assert fast_region.block_homes == reference_region.block_homes
        assert fast_sim.total_ops == pytest.approx(reference_sim.total_ops, rel=REL_TOL)

    def test_node_metrics_match(self):
        fast_sim, fast_nodes = build_scenario("fast")
        reference_sim, _ = build_scenario("reference")
        drive(fast_sim, fast_nodes)
        drive(reference_sim, fast_nodes)
        for name, reference_node in reference_sim.nodes.items():
            fast_node = fast_sim.nodes[name]
            assert fast_node.cpu_utilization == pytest.approx(
                reference_node.cpu_utilization, rel=1e-9, abs=1e-9
            )
            assert fast_node.io_wait == pytest.approx(
                reference_node.io_wait, rel=1e-9, abs=1e-9
            )
            assert fast_node.served_ops == pytest.approx(
                reference_node.served_ops, rel=REL_TOL, abs=ABS_TOL
            )


class TestNodeEvaluatorEquivalence:
    """NodeEvaluator.evaluate must match PerformanceModel.evaluate_node."""

    @pytest.mark.parametrize("hardware", [HardwareSpec(), LARGE_NODE])
    @pytest.mark.parametrize(
        "config",
        [DEFAULT_HOMOGENEOUS, NODE_PROFILES["read"].config, NODE_PROFILES["scan"].config],
    )
    def test_matches_evaluate_node(self, hardware, config):
        model = PerformanceModel(hardware)
        profiles = [
            RegionLoadProfile(
                region_id="r1",
                size_bytes=1.5e9,
                read_rate=1200.0,
                update_rate=300.0,
                scan_rate=10.0,
            ),
            RegionLoadProfile(
                region_id="r2",
                size_bytes=4e8,
                locality=0.05,
                insert_rate=250.0,
                rmw_rate=40.0,
            ),
            RegionLoadProfile(region_id="r3", size_bytes=9e8, scan_length=120),
        ]
        expected = model.evaluate_node(config, profiles, 2e6)
        actual = NodeEvaluator(model, config, profiles).evaluate(profiles, 2e6)
        assert actual.utilization == pytest.approx(expected.utilization, rel=1e-12)
        assert actual.cpu_utilization == pytest.approx(expected.cpu_utilization, rel=1e-12)
        assert actual.io_wait == pytest.approx(expected.io_wait, rel=1e-12)
        assert actual.memory_utilization == pytest.approx(
            expected.memory_utilization, rel=1e-12
        )
        assert actual.hit_ratio == pytest.approx(expected.hit_ratio, rel=1e-12)
        for op, latency in expected.per_op_latency_ms.items():
            assert actual.per_op_latency_ms[op] == pytest.approx(latency, rel=1e-12)

    def test_refresh_tracks_size_and_locality_drift(self):
        model = PerformanceModel(HardwareSpec())
        profile = RegionLoadProfile(region_id="r", size_bytes=1e9, read_rate=500.0)
        evaluator = NodeEvaluator(model, DEFAULT_HOMOGENEOUS, [profile])
        profile.size_bytes = 2.5e9
        profile.locality = 0.05
        evaluator.refresh([profile])
        expected = model.evaluate_node(DEFAULT_HOMOGENEOUS, [profile])
        actual = evaluator.evaluate([profile])
        assert actual.utilization == pytest.approx(expected.utilization, rel=1e-12)
        assert actual.hit_ratio == pytest.approx(expected.hit_ratio, rel=1e-12)
        assert actual.memory_utilization == pytest.approx(
            expected.memory_utilization, rel=1e-12
        )
