"""Planner subsystem: calibration fitting, capacity plans, the controller.

Three layers under test, mirroring the package:

* calibration -- curve validation, interpolation, fitting from campaign
  records, and the byte-determinism contract (same store -> same model
  fingerprint, pinned against a committed fixture store);
* planning -- sizing/pricing queries, option ordering, unit conversion,
  and the plan-level determinism pin;
* control -- the model-predictive controller against a fake backend
  (scale-up on predicted breach, budget clamp, headroom scale-down,
  cooldown, ``next_wakeup``).

The hypothesis properties pin the planner's core guarantee -- spreading a
fixed demand over more nodes never predicts a *worse* tail -- for every
fitted model, not just the baked one, and check that any plan the planner
emits is feasible by its own model's judgement.
"""

import hashlib
import json
import math
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import ResultsStore
from repro.elasticity.autoscaler import AutoscalerAction
from repro.planner import (
    DEFAULT_CALIBRATION,
    MINUTES_PER_MONTH,
    CalibrationModel,
    CalibrationPoint,
    PlannerController,
    PlannerPolicy,
    fit_calibration,
    plan_capacity,
    probe_records,
)
from repro.planner.controller import planner_policy_for_spec
from repro.scenarios import CANNED_SCENARIOS
from repro.sla import TPMC, from_native_rate
from repro.sla.scorecard import ScorecardRow, render_scorecard

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden"

#: Pinned handles of the committed fixture store (tests/fixtures/
#: planner_store.jsonl): fitting it, and planning 9000 ops/s under a 2 ms
#: p99 against the fit, must reproduce these bytes on every platform.
FIXTURE_MODEL_FINGERPRINT = (
    "e0e0624579d0e856730298e4944786be7c5de144ce68b790521cdb0065ea827f"
)
FIXTURE_PLAN_SHA256 = (
    "00682ae46060cefe885ee22a639c63173ebd98877277182bae910cb8bc3ed14a"
)

#: Small hand-written model used by the unit tests: 4-vCPU base nodes that
#: saturate at 3000 ops/s each, with a visible latency knee.
TEST_MODEL = CalibrationModel(
    name="test",
    base_flavor="met.regionserver",
    base_vcpus=4,
    curve=(
        CalibrationPoint(per_node_rate=1000.0, p95_ms=0.8, p99_ms=0.9),
        CalibrationPoint(per_node_rate=2000.0, p95_ms=1.1, p99_ms=1.4),
        CalibrationPoint(per_node_rate=3000.0, p95_ms=1.5, p99_ms=2.2),
    ),
)


def fixture_records() -> list[dict]:
    return ResultsStore(FIXTURES / "planner_store.jsonl").load()


class TestCalibrationModel:
    def test_rejects_empty_curve(self):
        with pytest.raises(ValueError, match="at least one point"):
            CalibrationModel(name="x", base_flavor="f", base_vcpus=4, curve=())

    def test_rejects_non_increasing_rates(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            CalibrationModel(
                name="x",
                base_flavor="f",
                base_vcpus=4,
                curve=(
                    CalibrationPoint(2000.0, 1.0, 1.0),
                    CalibrationPoint(1000.0, 2.0, 2.0),
                ),
            )

    def test_rejects_non_monotone_latency(self):
        with pytest.raises(ValueError, match="monotone in p99_ms"):
            CalibrationModel(
                name="x",
                base_flavor="f",
                base_vcpus=4,
                curve=(
                    CalibrationPoint(1000.0, 1.0, 2.0),
                    CalibrationPoint(2000.0, 1.0, 1.5),
                ),
            )

    def test_interpolation_shape(self):
        # Below the first point: flat.  Between points: linear.  Beyond the
        # calibrated envelope: infinite (infeasible, not extrapolated).
        assert TEST_MODEL.predict_p99(500.0, 1) == 0.9
        assert TEST_MODEL.predict_p99(1500.0, 1) == pytest.approx(1.15)
        assert TEST_MODEL.predict_p99(3000.0, 1) == pytest.approx(2.2)
        assert TEST_MODEL.predict_p99(3000.1, 1) == math.inf
        assert TEST_MODEL.predict_p99(1000.0, 0) == math.inf

    def test_flavor_capacity_scales_with_vcpus(self):
        # m1.large has 8 vCPUs against the 4-vCPU base: twice the capacity,
        # so the same demand halves the per-node load.
        assert TEST_MODEL.flavor_capacity("m1.large") == pytest.approx(6000.0)
        assert TEST_MODEL.predict_p99(2000.0, 1, "m1.large") == pytest.approx(
            TEST_MODEL.predict_p99(1000.0, 1)
        )
        with pytest.raises(KeyError, match="unknown flavor"):
            TEST_MODEL.flavor_capacity("m9.imaginary")

    def test_nodes_for_respects_capacity_and_ceiling(self):
        assert TEST_MODEL.nodes_for(0.0) == 1
        # Pure capacity: 7000 ops/s needs ceil(7000/3000) = 3 nodes.
        assert TEST_MODEL.nodes_for(7000.0) == 3
        # A tail ceiling pushes above the capacity floor: a 1.0ms p99
        # needs <=1200 ops/s per node, so 6 nodes instead of 3.
        assert TEST_MODEL.nodes_for(7000.0, p99_ceiling_ms=1.0) == 6
        # Nothing under an impossible ceiling.
        assert TEST_MODEL.nodes_for(7000.0, p99_ceiling_ms=0.5) is None

    def test_json_roundtrip_preserves_fingerprint(self):
        clone = CalibrationModel.from_json(TEST_MODEL.to_json())
        assert clone == TEST_MODEL
        assert clone.fingerprint() == TEST_MODEL.fingerprint()


class TestFitCalibration:
    def test_fixture_store_fit(self):
        # The fixture encodes the fitting rules: per-node rates recovered
        # from machine-minutes, equal rates merged by max latency, a
        # latency dip at 2500 flattened by the running max, and records
        # with null percentiles or zero machine-minutes skipped.
        model = fit_calibration(fixture_records(), name="fixture")
        assert [p.per_node_rate for p in model.curve] == [1000.0, 2000.0, 2500.0, 3000.0]
        assert [p.p99_ms for p in model.curve] == [0.9, 1.4, 1.4, 2.2]

    def test_no_usable_records_raises(self):
        with pytest.raises(ValueError, match="no usable records"):
            fit_calibration([{"scenario": "x", "p95_ms": None, "p99_ms": None}])

    def test_duration_falls_back_to_the_catalog(self):
        spec = CANNED_SCENARIOS["tpcc_steady"]
        record = {
            "scenario": "tpcc_steady",
            "mean_throughput": 6000.0,
            # Two nodes for the whole catalog duration.
            "machine_minutes": 2.0 * spec.duration_seconds / 60.0,
            "p95_ms": 1.0,
            "p99_ms": 1.2,
        }
        model = fit_calibration([record])
        assert model.curve[0].per_node_rate == pytest.approx(3000.0)

    def test_unknown_scenario_without_duration_raises(self):
        record = {
            "scenario": "not-in-catalog",
            "mean_throughput": 1.0,
            "machine_minutes": 1.0,
            "p95_ms": 1.0,
            "p99_ms": 1.0,
        }
        with pytest.raises(ValueError, match="not-in-catalog"):
            fit_calibration([record])
        fit_calibration([record], durations={"not-in-catalog": 1.0})

    def test_fit_is_byte_deterministic(self):
        # The acceptance contract: the same store and config produce an
        # identical model, pinned by fingerprint against the committed
        # fixture bytes.
        first = fit_calibration(fixture_records(), name="fixture")
        second = fit_calibration(fixture_records(), name="fixture")
        assert first.to_json() == second.to_json()
        assert first.fingerprint() == FIXTURE_MODEL_FINGERPRINT

    def test_default_calibration_matches_the_probe_sweep(self):
        # DEFAULT_CALIBRATION is documented as the fit of the seeded probe
        # sweep at master seed 0; this equality is what --recalibrate
        # regenerates.  If a kernel or catalog change moves the sweep, this
        # fails and the baked model needs a regen commit.
        fitted = fit_calibration(probe_records(), name="catalog-probe-v1")
        assert fitted == DEFAULT_CALIBRATION


class TestCapacityPlan:
    def test_plan_options_sorted_cheapest_feasible_first(self):
        plan = plan_capacity(TEST_MODEL, target_rate=5000.0, p99_ceiling_ms=2.0)
        assert plan.best() is plan.options[0]
        feasible = [o for o in plan.options if o.feasible]
        costs = [o.monthly_cost for o in feasible]
        assert costs == sorted(costs)
        # Infeasible options (if any) sort strictly after every feasible one.
        flags = [o.feasible for o in plan.options]
        assert flags == sorted(flags, reverse=True)

    def test_monthly_cost_is_a_30_day_month(self):
        plan = plan_capacity(TEST_MODEL, target_rate=5000.0, p99_ceiling_ms=2.0)
        best = plan.best()
        assert best.monthly_cost == pytest.approx(
            best.hourly_cost * MINUTES_PER_MONTH / 60.0
        )

    def test_native_unit_targets_convert(self):
        plan = plan_capacity(
            TEST_MODEL, target_rate=5000.0, unit=TPMC, p99_ceiling_ms=2.0
        )
        assert plan.unit == TPMC and plan.native_target == 5000.0
        ops = from_native_rate(TPMC, 5000.0)
        equivalent = plan_capacity(TEST_MODEL, target_rate=ops, p99_ceiling_ms=2.0)
        assert plan.best().nodes == equivalent.best().nodes

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="positive"):
            plan_capacity(TEST_MODEL, target_rate=0.0, p99_ceiling_ms=2.0)
        with pytest.raises(ValueError, match="headroom"):
            plan_capacity(TEST_MODEL, target_rate=1.0, p99_ceiling_ms=2.0, headroom=1.0)

    def test_infeasible_targets_render_as_misses(self):
        # 10 nodes cannot serve 60k ops/s on 3000-ops nodes: every option
        # is infeasible, best() is None, and the table says so.
        plan = plan_capacity(
            TEST_MODEL, target_rate=60000.0, p99_ceiling_ms=2.0, max_nodes=10
        )
        assert plan.best() is None
        text = plan.render()
        assert "NO" in text and "yes" not in text
        payload = json.loads(plan.to_json())
        assert all(o["predicted_p99_ms"] is None for o in payload["options"])

    def test_render_toggles_the_monthly_column(self):
        plan = plan_capacity(TEST_MODEL, target_rate=5000.0, p99_ceiling_ms=2.0)
        with_monthly = plan.render(monthly=True, limit=2)
        without = plan.render(monthly=False, limit=2)
        assert "cost/month" in with_monthly and "cost/month" not in without
        assert len(without.splitlines()) == 4  # header, rule, two options

    def test_same_store_and_query_yield_identical_plan_bytes(self):
        # End-to-end determinism: load the committed store, fit, plan --
        # twice -- and require byte-identical plans, pinned by hash.
        plans = []
        for _ in range(2):
            model = fit_calibration(fixture_records(), name="fixture")
            plans.append(plan_capacity(model, target_rate=9000.0, p99_ceiling_ms=2.0))
        assert plans[0].to_json() == plans[1].to_json()
        digest = hashlib.sha256(plans[0].to_json().encode("utf-8")).hexdigest()
        assert digest == FIXTURE_PLAN_SHA256


class TestPlannerProperties:
    @settings(max_examples=100, deadline=None)
    @given(rate=st.floats(0.0, 60000.0), nodes=st.integers(1, 64))
    def test_more_nodes_never_predicts_worse_p99(self, rate, nodes):
        assert DEFAULT_CALIBRATION.predict_p99(
            rate, nodes + 1
        ) <= DEFAULT_CALIBRATION.predict_p99(rate, nodes)

    @settings(max_examples=50, deadline=None)
    @given(
        records=st.lists(
            st.fixed_dictionaries(
                {
                    "scenario": st.just("probe"),
                    "duration_minutes": st.just(10.0),
                    "mean_throughput": st.floats(1.0, 1e6),
                    "machine_minutes": st.floats(1.0, 1e4),
                    "p95_ms": st.floats(0.1, 100.0),
                    "p99_ms": st.floats(0.1, 100.0),
                }
            ),
            min_size=1,
            max_size=12,
        ),
        rate=st.floats(0.0, 1e6),
        nodes=st.integers(1, 32),
    )
    def test_every_fitted_model_keeps_the_monotonicity_guarantee(
        self, records, rate, nodes
    ):
        # Monotone-by-construction: however adversarial the store, the
        # fitted curve validates and more nodes never predict a worse tail.
        model = fit_calibration(records)
        assert model.predict_p99(rate, nodes + 1) <= model.predict_p99(rate, nodes)

    @settings(max_examples=50, deadline=None)
    @given(
        target=st.floats(100.0, 150000.0),
        ceiling=st.floats(0.9, 5.0),
        headroom=st.floats(0.0, 0.5),
    )
    def test_plans_are_feasible_by_their_own_model(self, target, ceiling, headroom):
        plan = plan_capacity(
            DEFAULT_CALIBRATION,
            target_rate=target,
            p99_ceiling_ms=ceiling,
            headroom=headroom,
        )
        demand = target * (1.0 + headroom)
        for option in plan.options:
            if option.feasible:
                predicted = DEFAULT_CALIBRATION.predict_p99(
                    demand, option.nodes, option.flavor
                )
                assert predicted <= ceiling
                assert option.utilization <= 1.0 + 1e-9


class FakeBackend:
    """Minimal ClusterBackend for the controller: counters under test control."""

    def __init__(self, nodes=("rs1",), metrics=None):
        self.nodes = list(nodes)
        self.total_ops = 0.0
        self.added: list[str] = []
        self.removed: list[str] = []
        self.metrics = metrics or {}

    def online_node_names(self):
        return list(self.nodes)

    def partition_stats(self):
        return {"p0": {"reads": self.total_ops}}

    def add_node(self, config, profile="default"):
        name = f"rs-auto-{len(self.added) + 1}"
        self.nodes.append(name)
        self.added.append(name)
        return name

    def remove_node(self, name):
        self.nodes.remove(name)
        self.removed.append(name)

    def node_system_metrics(self, name):
        return self.metrics.get(name, {"cpu": 0.5, "io_wait": 0.1})


def pump(controller, backend, rates, period=30.0, start=0.0):
    """Feed one served-rate observation per entry via the cumulative counter."""
    now = start
    controller.step(now)  # baseline sample establishes the counter
    for rate in rates:
        now += period
        backend.total_ops += rate * period
        controller.step(now)
    return now


def make_policy(**overrides) -> PlannerPolicy:
    base = dict(
        p99_ceiling_ms=1.0,
        hourly_budget=None,
        monitor_period_seconds=30.0,
        decision_samples=2,
        cooldown_seconds=0.0,
        min_nodes=1,
        max_nodes=8,
    )
    base.update(overrides)
    return PlannerPolicy(**base)


class TestPlannerController:
    def test_scales_up_on_predicted_tail_breach(self):
        backend = FakeBackend()
        controller = PlannerController(backend, model=TEST_MODEL, policy=make_policy())
        # 5000 ops/s on one 3000-ops node: the model predicts an infinite
        # p99, so the planner starts converging toward its target.
        pump(controller, backend, [5000.0, 5000.0])
        assert backend.added == ["rs-auto-1"]
        event = controller.log.events[-1]
        assert event.action == AutoscalerAction.ADD_NODE
        assert "ceiling 1ms" in event.detail

    def test_budget_clamp_logs_the_refusal_once_per_ask(self):
        # One node costs 0.05/h and the budget is 0.05/h: the model wants
        # more, the budget refuses, and the refusal is logged once per
        # distinct ask rather than every decision window.
        backend = FakeBackend()
        policy = make_policy(hourly_budget=0.05, node_hourly_rate=0.05)
        assert policy.affordable_nodes() == 1
        controller = PlannerController(backend, model=TEST_MODEL, policy=policy)
        pump(controller, backend, [5000.0] * 4)
        assert backend.added == []
        blocks = [
            e for e in controller.log.events if e.action == AutoscalerAction.NONE
        ]
        assert len(blocks) == 1
        assert "budget 0.05/h caps cluster at 1 nodes" in blocks[0].detail
        # A bigger ask is a different trade-off: logged again, still once.
        pump(
            controller,
            backend,
            [9000.0] * 4,
            start=controller._last_sample_time,
        )
        blocks = [
            e for e in controller.log.events if e.action == AutoscalerAction.NONE
        ]
        assert len(blocks) == 2 and blocks[0].detail != blocks[1].detail

    def test_scales_down_and_removes_the_least_loaded_node(self):
        metrics = {
            "rs1": {"cpu": 0.9, "io_wait": 0.2},
            "rs2": {"cpu": 0.1, "io_wait": 0.05},
            "rs3": {"cpu": 0.6, "io_wait": 0.7},
        }
        backend = FakeBackend(nodes=("rs1", "rs2", "rs3"), metrics=metrics)
        controller = PlannerController(
            backend, model=TEST_MODEL, policy=make_policy(p99_ceiling_ms=2.0)
        )
        # 1000 ops/s across three nodes is paid-for-but-unused headroom:
        # even demand * (1 + headroom + margin) fits on two nodes.
        pump(controller, backend, [1000.0, 1000.0])
        assert backend.removed == ["rs2"]
        event = controller.log.events[-1]
        assert event.action == AutoscalerAction.REMOVE_NODE
        assert "unused headroom" in event.detail

    def test_cooldown_spaces_actions(self):
        backend = FakeBackend()
        controller = PlannerController(
            backend, model=TEST_MODEL, policy=make_policy(cooldown_seconds=3600.0)
        )
        pump(controller, backend, [5000.0] * 6)
        assert len(backend.added) == 1  # later windows land inside the cooldown

    def test_next_wakeup_tracks_the_sampling_cadence(self):
        backend = FakeBackend()
        controller = PlannerController(backend, model=TEST_MODEL, policy=make_policy())
        assert controller.next_wakeup(0.0) == 0.0
        controller.step(0.0)
        assert controller.next_wakeup(0.0) == pytest.approx(30.0 - 1e-9)

    def test_policy_derives_ceiling_from_spec_slos(self):
        spec = CANNED_SCENARIOS["tpcc_steady"]
        policy = planner_policy_for_spec(spec)
        declared = [
            s.p99_ceiling_ms or s.latency_ceiling_ms
            for s in spec.slos
            if s.p99_ceiling_ms or s.latency_ceiling_ms
        ]
        assert policy.p99_ceiling_ms == min(declared)
        assert policy.max_nodes == spec.max_nodes
        assert policy.monitor_period_seconds == spec.monitor_period_seconds


class TestPlannerInTheMatchup:
    @pytest.mark.parametrize("scenario", ["tpcc_steady", "data_growth"])
    def test_planner_beats_both_incumbents_on_cost(self, scenario):
        # The declared win, pinned on golden bytes: equal-or-better
        # violation-minutes at strictly lower cost than MeT *and* Tiramola.
        traces = {
            c: json.loads((GOLDEN / f"{scenario}__{c}.json").read_text())
            for c in ("met", "tiramola", "planner")
        }
        viol = {
            c: sum(r["violation_minutes"] for r in t["slo"]) for c, t in traces.items()
        }
        cost = {c: t["cost"]["total"] for c, t in traces.items()}
        assert viol["planner"] <= min(viol["met"], viol["tiramola"])
        assert cost["planner"] < min(cost["met"], cost["tiramola"])

    def test_planner_undercuts_tiramola_on_flash_crowd(self):
        traces = {
            c: json.loads((GOLDEN / f"flash_crowd__{c}.json").read_text())
            for c in ("tiramola", "planner")
        }
        viol = {
            c: sum(r["violation_minutes"] for r in t["slo"]) for c, t in traces.items()
        }
        cost = {c: t["cost"]["total"] for c, t in traces.items()}
        assert viol["planner"] <= viol["tiramola"]
        assert cost["planner"] < cost["tiramola"]

    def test_scorecard_renders_three_controllers_side_by_side(self):
        rows = [
            ScorecardRow(f"s{i}", c, 1000.0, 0.0, 0.02, 30.0, True)
            for i in (1, 2)
            for c in ("met", "tiramola", "planner")
        ]
        header = render_scorecard(rows).splitlines()[0]
        for controller in ("met", "tiramola", "planner"):
            assert f"{controller}:viol-min" in header
